//! netmeter-sentinel — net-metering-aware smart home pricing cyberattack
//! detection.
//!
//! A from-scratch Rust reproduction of *"Impact Assessment of Net Metering
//! on Smart Home Cyberattack Detection"* (DAC 2015): a smart home
//! scheduling substrate (appliances, batteries, PV, quadratic pricing with
//! net metering), the cross-entropy / dynamic-programming game solver of
//! §3, SVR price prediction, pricing-attack models, a POMDP substrate, the
//! detection framework of §4, and a simulation harness reproducing every
//! figure and table of §5.
//!
//! This crate is a façade: it re-exports the workspace's crates under one
//! name so applications can depend on a single package.
//!
//! # Quickstart
//!
//! ```
//! use netmeter_sentinel::sim::{experiments, PaperScenario};
//!
//! # fn main() -> Result<(), netmeter_sentinel::sim::SimError> {
//! // A scaled-down community (use `PaperScenario::paper(seed)` for the
//! // full 500-customer evaluation).
//! let scenario = PaperScenario::small(12, 7);
//! let fig5 = experiments::run_fig5(&scenario)?;
//! assert!(fig5.attacked_par > fig5.clean_par);
//! # Ok(())
//! # }
//! ```
//!
//! # Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`types`] | `Kwh`/`Kw`/`Dollars` quantities, ids, horizons, series |
//! | [`smarthome`] | appliances, batteries, PV, customers, communities |
//! | [`pricing`] | quadratic cost model, net-metering tariff, utility |
//! | [`solver`] | DP scheduler, cross-entropy optimizer, game engine |
//! | [`forecast`] | from-scratch ε-SVR, kernels, feature maps |
//! | [`attack`] | price manipulations and attacker scenarios |
//! | [`pomdp`] | beliefs, QMDP/PBVI solvers, model estimation |
//! | [`core`] | the paper's detection framework |
//! | [`sim`] | scenario generation and the paper's experiments |
//! | [`fleet`] | supervised multi-community shard runner with a failure ladder |
//! | [`obs`] | recorder trait, metrics registry, JSONL trace sink, span profiler |
//! | [`serve`] | live telemetry plane: `/metrics`, `/health`, `/trace/tail` HTTP exposition |
//! | [`vfs`] | injectable storage layer with deterministic fault injection |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nms_attack as attack;
pub use nms_core as core;
pub use nms_fleet as fleet;
pub use nms_forecast as forecast;
pub use nms_obs as obs;
pub use nms_pomdp as pomdp;
pub use nms_pricing as pricing;
pub use nms_serve as serve;
pub use nms_sim as sim;
pub use nms_smarthome as smarthome;
pub use nms_solver as solver;
pub use nms_types as types;
pub use nms_vfs as vfs;

/// The canonical daily horizon used throughout the paper (24 hourly slots).
pub fn paper_horizon() -> nms_types::Horizon {
    nms_types::Horizon::hourly_day()
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        let horizon = crate::paper_horizon();
        assert_eq!(horizon.slots(), 24);
        let _ = crate::types::Kwh::new(1.0);
        let _ = crate::pricing::NetMeteringTariff::default();
        let _ = crate::sim::PaperScenario::small(2, 0);
    }
}
