//! Speculative day-pipeline acceptance (DESIGN.md §15): a supervised run
//! driven through [`SupervisedRun::run_speculative`] must be bit-identical
//! to the sequential [`SupervisedRun::run`] — whether its speculations
//! commit or get discarded — and the cross-day [`PersistentCache`]s the
//! pipeline leans on must never change a single bit of any run artifact.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use netmeter_sentinel::attack::{AttackTimeline, PriceAttack};
use netmeter_sentinel::core::{DetectorMode, FrameworkConfig, QuarantineConfig};
use netmeter_sentinel::sim::{
    DayCacheConfig, FaultPlan, LongTermRunConfig, LongTermRunResult, PaperScenario,
    SpeculationReport, SupervisedOptions, SupervisedRun,
};

/// Unique scratch path for a journal file.
fn journal_path(name: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!(
        "nms-pipeline-{}-{name}-{n}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn scenario(customers: usize, seed: u64) -> PaperScenario {
    let mut scenario = PaperScenario::small(customers, seed);
    scenario.training_days = 4;
    scenario
}

fn config(
    detector: Option<FrameworkConfig>,
    days: usize,
    timeline: AttackTimeline,
) -> LongTermRunConfig {
    LongTermRunConfig {
        detection_days: days,
        detector,
        timeline,
        buckets: 4,
        bucket_fraction_step: 0.15,
        labor_per_fix: 10.0,
        labor_per_meter: 1.0,
        faults: None,
        sanitize: Default::default(),
        retry: Default::default(),
        budget: Default::default(),
        quarantine: QuarantineConfig::default(),
        parallelism: Default::default(),
        clearing_iterations: 2,
    }
}

fn timeline(fleet: usize) -> AttackTimeline {
    let wave = (fleet / 2).max(1);
    AttackTimeline::new(
        vec![(4, wave), (28, wave)],
        PriceAttack::zero_window(16.0, 18.0).unwrap(),
    )
    .unwrap()
}

fn build(
    scenario: &PaperScenario,
    config: &LongTermRunConfig,
    seed: u64,
    cache: DayCacheConfig,
    tag: &str,
) -> SupervisedRun {
    SupervisedRun::with_options(
        scenario,
        config,
        seed,
        &journal_path(tag),
        SupervisedOptions {
            cache,
            ..SupervisedOptions::default()
        },
    )
    .unwrap()
}

fn run_sequential(
    scenario: &PaperScenario,
    config: &LongTermRunConfig,
    seed: u64,
    cache: DayCacheConfig,
    tag: &str,
) -> LongTermRunResult {
    build(scenario, config, seed, cache, tag).run().unwrap()
}

fn run_speculative(
    scenario: &PaperScenario,
    config: &LongTermRunConfig,
    seed: u64,
    cache: DayCacheConfig,
    tag: &str,
) -> (LongTermRunResult, SpeculationReport) {
    build(scenario, config, seed, cache, tag)
        .run_speculative()
        .unwrap()
}

/// Bit-identity on every float the run produces; `to_bits` keeps any
/// tolerance from sneaking in through `==`.
fn assert_identical(a: &LongTermRunResult, b: &LongTermRunResult) {
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&a.realized_demand), bits(&b.realized_demand));
    assert_eq!(a.par.to_bits(), b.par.to_bits());
    assert_eq!(a.true_buckets, b.true_buckets);
    assert_eq!(a.observed_buckets, b.observed_buckets);
    assert_eq!(a.fixes_at, b.fixes_at);
    assert_eq!(a.final_belief, b.final_belief);
    assert_eq!(a.health, b.health);
    assert_eq!(a.day_health, b.day_health);
    assert_eq!(a.quarantine_events, b.quarantine_events);
}

#[test]
fn speculative_run_is_bit_identical_to_sequential() {
    let scenario = scenario(8, 77);
    let detector = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
    let config = config(Some(detector), 2, timeline(scenario.customers));
    let seed = 5;

    let sequential = run_sequential(&scenario, &config, seed, DayCacheConfig::default(), "seq");
    let (speculative, report) =
        run_speculative(&scenario, &config, seed, DayCacheConfig::on(), "spec");

    assert_identical(&sequential, &speculative);
    // Day 0 never speculates (nothing precedes it); every later day does.
    assert_eq!(report.launched, (config.detection_days - 1) as u64);
    assert_eq!(report.committed + report.discarded, report.launched);
}

#[test]
fn forced_divergence_discards_and_stays_bit_identical() {
    // A mid-day fix is the one event the speculation cannot foresee: the
    // projection assumes no repairs, so the day after a fix must arrive
    // with a wrong assumed compromise set and be discarded. A half-fleet
    // wave against the net-metering-aware detector reliably triggers the
    // POMDP's check-&-fix dispatch.
    let scenario = scenario(8, 77);
    let detector = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
    let config = config(Some(detector), 3, timeline(scenario.customers));
    let seed = 5;

    let sequential = run_sequential(&scenario, &config, seed, DayCacheConfig::default(), "div-seq");
    assert!(
        sequential
            .fixes_at
            .iter()
            .any(|&slot| slot % 24 != 23 && slot < 2 * 24),
        "precondition: a fix must fire mid-day before the last day to force \
         a divergent speculation (got fixes at {:?})",
        sequential.fixes_at
    );

    let (speculative, report) =
        run_speculative(&scenario, &config, seed, DayCacheConfig::on(), "div-spec");
    assert_identical(&sequential, &speculative);
    assert!(
        report.discarded >= 1,
        "a mid-day fix must discard at least one speculation: {report:?}"
    );
    assert_eq!(report.committed + report.discarded, report.launched);
}

#[test]
fn quarantined_meter_days_do_not_poison_the_cache() {
    // Fault injection + quarantine excludes meters from the telemetry
    // aggregate; the caches sit under the clearing and prediction solves,
    // which see the *scheduling* world, not the telemetry view — so a
    // cached run through quarantine days must stay bit-identical to the
    // cold run, entry reuse and all.
    let scenario = scenario(8, 41);
    let mut faults = FaultPlan::none(17);
    faults.drop_rate = 0.05;
    faults.nan_rate = 0.01;
    let detector = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
    let mut config = config(Some(detector), 2, timeline(scenario.customers));
    config.faults = Some(faults);
    let seed = 11;

    let cold = run_sequential(&scenario, &config, seed, DayCacheConfig::default(), "q-cold");
    let cached = run_sequential(&scenario, &config, seed, DayCacheConfig::on(), "q-cached");
    assert_identical(&cold, &cached);
    assert!(
        !cold.quarantine_events.is_empty() || cold.health.faults_injected.total() > 0,
        "precondition: the faulted run must actually exercise telemetry faults"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Satellite (c): across day boundaries, persistent-cache hits are
    /// bit-identical to cold recomputation for arbitrary seeds and quanta —
    /// the exact-verification scheme means a hit can never substitute a
    /// merely-nearby response.
    #[test]
    fn cached_runs_are_bit_identical_across_days(
        seed in 0u64..1000,
        quantum_exp in 0usize..4,
    ) {
        let quantum = [1e-12, 1e-9, 1e-3, 1.0][quantum_exp];
        let scenario = scenario(6, 19);
        let config = config(None, 2, timeline(scenario.customers));
        let cold = run_sequential(&scenario, &config, seed, DayCacheConfig::default(), "p-cold");
        let cached = run_sequential(
            &scenario,
            &config,
            seed,
            DayCacheConfig { enabled: true, quantum },
            "p-cached",
        );
        assert_identical(&cold, &cached);
    }
}
