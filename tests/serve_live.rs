//! Live telemetry plane integration: a supervised fleet runs behind a
//! resident `TelemetryServer` and is scraped *mid-run* from the day-close
//! observer. The contract under test:
//!
//! - mid-run `/metrics` scrapes are monotone (counters never go backwards
//!   between scrapes) and converge byte-for-byte to the end-of-run
//!   exposition;
//! - `/health` tracks the fleet day and per-shard ledgers while running;
//! - the whole telemetry plane — striped registry, span profiler, HTTP
//!   server, mid-run scrapes — leaves the fleet's results bit-identical
//!   to a run with no telemetry at all;
//! - `Tee`d registries tally commutatively: totals agree across thread
//!   counts and across the tee's sinks.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};

use netmeter_sentinel::attack::{AttackTimeline, PriceAttack};
use netmeter_sentinel::fleet::{
    run_fleet, DayCloseObserver, FleetConfig, FleetOptions, ShardSpec,
};
use netmeter_sentinel::obs::names::fleet as fleet_names;
use netmeter_sentinel::obs::{parse_collapsed, MetricsRegistry, Recorder, SpanRecorder, Tee};
use netmeter_sentinel::serve::{SharedRegistry, TelemetryServer};
use netmeter_sentinel::sim::{
    LongTermRunConfig, LongTermRunResult, PaperScenario, Parallelism, SupervisedOptions,
};
use netmeter_sentinel::types::SolveBudget;
use netmeter_sentinel::vfs::{FaultVfs, IoFaultPlan};

const JOURNAL: &str = "fleet/shard.jsonl";
const FLEET_SEED: u64 = 23;
const SHARDS: usize = 3;
const DAYS: usize = 2;

fn community_scenario(index: usize) -> PaperScenario {
    let mut scenario = PaperScenario::small(6, 60 + index as u64);
    scenario.training_days = 3;
    scenario
}

fn run_config() -> LongTermRunConfig {
    LongTermRunConfig {
        detection_days: DAYS,
        detector: None,
        timeline: AttackTimeline::new(
            vec![(4, 1)],
            PriceAttack::zero_window(16.0, 18.0).unwrap(),
        )
        .unwrap(),
        buckets: 4,
        bucket_fraction_step: 0.15,
        labor_per_fix: 10.0,
        labor_per_meter: 1.0,
        faults: None,
        sanitize: Default::default(),
        retry: Default::default(),
        budget: SolveBudget::unlimited(),
        quarantine: Default::default(),
        parallelism: Default::default(),
        clearing_iterations: 2,
    }
}

fn specs() -> Vec<ShardSpec> {
    (0..SHARDS)
        .map(|index| {
            ShardSpec::derived(
                format!("community-{index}"),
                community_scenario(index),
                run_config(),
                FLEET_SEED,
                index,
                JOURNAL,
            )
        })
        .collect()
}

fn shard_options() -> Vec<SupervisedOptions> {
    (0..SHARDS)
        .map(|_| SupervisedOptions {
            vfs: Arc::new(FaultVfs::new(IoFaultPlan::none())),
            ..SupervisedOptions::default()
        })
        .collect()
}

/// Canonical comparison form with the process-local storage tally zeroed
/// (observability only — excluded from bit-identity by design).
fn normalized(mut result: LongTermRunResult) -> String {
    result.health.storage = Default::default();
    format!("{result:?}")
}

fn scrape(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {target} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .expect("status code");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default();
    (status, body)
}

/// The value of plain counter line `nms_<name> <value>` in an exposition.
fn counter_in(exposition: &str, name: &str) -> u64 {
    let prefix = format!("nms_{name} ");
    exposition
        .lines()
        .find_map(|line| line.strip_prefix(&prefix))
        .map(|value| value.parse().expect("counter value"))
        .unwrap_or(0)
}

#[test]
fn mid_run_scrapes_are_monotone_and_converge_to_the_final_exposition() {
    let server = TelemetryServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let publisher = server.publisher();

    let shared = SharedRegistry::new();
    let spans = Arc::new(SpanRecorder::new());
    let recorder: Arc<dyn Recorder> = Arc::new(Tee::new(vec![
        Arc::new(shared.clone()) as Arc<dyn Recorder>,
        Arc::clone(&spans) as Arc<dyn Recorder>,
    ]));

    // The observer publishes the snapshots, then scrapes its own server —
    // a live mid-run reader, exercised at every day boundary.
    let mid_run: Arc<Mutex<Vec<(usize, String, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let observer: DayCloseObserver = {
        let publisher = publisher.clone();
        let shared = shared.clone();
        let mid_run = Arc::clone(&mid_run);
        Arc::new(move |day, health| {
            publisher.publish_shared(&shared);
            publisher.publish_health(Some(day), health, Default::default());
            let (status, metrics_body) = scrape(addr, "/metrics");
            assert_eq!(status, 200);
            let (status, health_body) = scrape(addr, "/health");
            assert_eq!(status, 200);
            mid_run.lock().unwrap().push((day, metrics_body, health_body));
        })
    };

    let options = FleetOptions {
        shard_options: shard_options(),
        recorder,
        on_day_close: Some(observer),
        ..FleetOptions::default()
    };
    let config = FleetConfig {
        parallelism: Parallelism::new(SHARDS),
        ..FleetConfig::default()
    };
    let report = run_fleet(specs(), &config, options).expect("fleet runs");
    assert_eq!(report.health.healthy(), SHARDS);

    let mid_run = mid_run.lock().unwrap();
    assert_eq!(mid_run.len(), DAYS, "one scrape per closed day");

    // Counters are monotone across scrapes and land exactly on the final
    // tallies.
    let mut last_closed = 0;
    for (day, metrics_body, health_body) in mid_run.iter() {
        let closed = counter_in(metrics_body, fleet_names::DAYS_CLOSED);
        assert!(
            closed > last_closed,
            "day {day}: days_closed went {last_closed} -> {closed}"
        );
        last_closed = closed;
        assert!(
            health_body.contains(&format!("\"day\":{day}")),
            "{health_body}"
        );
        assert!(health_body.contains("\"worst_stage\":\"healthy\""), "{health_body}");
    }
    assert_eq!(last_closed as usize, SHARDS * DAYS);

    // The final scrape is byte-identical to the end-of-run exposition:
    // nothing records between the last day close and harvest reporting.
    let (status, final_metrics) = scrape(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(final_metrics, shared.render_prometheus());
    assert_eq!(
        &final_metrics,
        &mid_run.last().expect("scraped").1,
        "last mid-run scrape already converged"
    );

    // /trace/tail answers even with no event sink teed in.
    let (status, tail) = scrape(addr, "/trace/tail?n=5");
    assert_eq!(status, 200);
    assert!(tail.is_empty());

    // The span profiler saw the supervisor's sequential sections, and its
    // collapsed export round-trips.
    let profile = spans.profile();
    let collapsed = profile.collapsed();
    let stacks = parse_collapsed(&collapsed).expect("collapsed round-trip");
    assert!(
        stacks
            .iter()
            .any(|(path, _)| path.first().map(String::as_str) == Some("fleet_day")),
        "{collapsed}"
    );
    assert!(
        stacks
            .iter()
            .any(|(path, _)| path.first().map(String::as_str) == Some("harvest")),
        "{collapsed}"
    );
    server.shutdown();
}

#[test]
fn telemetry_plane_leaves_fleet_results_bit_identical() {
    // Plain run: no recorder, no server, no observer.
    let baseline = run_fleet(
        specs(),
        &FleetConfig::default(),
        FleetOptions {
            shard_options: shard_options(),
            ..FleetOptions::default()
        },
    )
    .expect("baseline fleet");

    // Fully instrumented run: striped registry + span profiler recording,
    // server being scraped at every day close.
    let server = TelemetryServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let publisher = server.publisher();
    let shared = SharedRegistry::new();
    let spans = Arc::new(SpanRecorder::new());
    let recorder: Arc<dyn Recorder> = Arc::new(Tee::new(vec![
        Arc::new(shared.clone()) as Arc<dyn Recorder>,
        Arc::clone(&spans) as Arc<dyn Recorder>,
    ]));
    let observer: DayCloseObserver = {
        let shared = shared.clone();
        Arc::new(move |day, health| {
            publisher.publish_shared(&shared);
            publisher.publish_health(Some(day), health, Default::default());
            let (status, _) = scrape(addr, "/metrics");
            assert_eq!(status, 200);
        })
    };
    let instrumented = run_fleet(
        specs(),
        &FleetConfig {
            parallelism: Parallelism::new(2),
            ..FleetConfig::default()
        },
        FleetOptions {
            shard_options: shard_options(),
            recorder,
            on_day_close: Some(observer),
            ..FleetOptions::default()
        },
    )
    .expect("instrumented fleet");

    for (plain, live) in baseline.shards.into_iter().zip(instrumented.shards) {
        let plain = plain.result.expect("baseline result");
        let live = live.result.expect("instrumented result");
        assert_eq!(
            normalized(plain),
            normalized(live),
            "telemetry must not perturb results"
        );
    }
    server.shutdown();
}

#[test]
fn teed_tallies_commute_across_thread_counts_and_sinks() {
    let run_at = |threads: usize| {
        let shared = SharedRegistry::new();
        let flat = MetricsRegistry::new();
        let recorder: Arc<dyn Recorder> = Arc::new(Tee::new(vec![
            Arc::new(shared.clone()) as Arc<dyn Recorder>,
            Arc::new(flat.clone()) as Arc<dyn Recorder>,
        ]));
        let report = run_fleet(
            specs(),
            &FleetConfig {
                parallelism: Parallelism::new(threads),
                ..FleetConfig::default()
            },
            FleetOptions {
                shard_options: shard_options(),
                recorder,
                ..FleetOptions::default()
            },
        )
        .expect("fleet runs");
        assert_eq!(report.health.healthy(), SHARDS);
        (shared, flat)
    };

    let (serial_shared, serial_flat) = run_at(1);
    let (parallel_shared, parallel_flat) = run_at(4);

    // Wall-time *sums* are not comparable across thread counts, but every
    // discrete tally must commute: same counters, same histogram counts.
    for name in [
        fleet_names::DAYS_CLOSED,
        fleet_names::DAY_RETRIES,
        fleet_names::SHARD_RESTARTS,
        fleet_names::QUARANTINES,
        fleet_names::DEADLINE_BREACHES,
        fleet_names::PANICS_CONTAINED,
    ] {
        assert_eq!(
            serial_shared.counter(name),
            parallel_shared.counter(name),
            "{name} must not depend on thread count"
        );
        // Both tee sinks observed the identical stream.
        assert_eq!(serial_shared.counter(name), serial_flat.counter(name), "{name}");
        assert_eq!(parallel_shared.counter(name), parallel_flat.counter(name), "{name}");
    }
    assert_eq!(serial_shared.counter(fleet_names::DAYS_CLOSED) as usize, SHARDS * DAYS);

    let count_of = |histogram: Option<netmeter_sentinel::obs::Histogram>| {
        histogram.map(|h| h.count()).unwrap_or(0)
    };
    assert_eq!(
        count_of(serial_shared.histogram(fleet_names::DAY_CLOSE_SECONDS)),
        count_of(parallel_shared.histogram(fleet_names::DAY_CLOSE_SECONDS)),
        "one day-close observation per shard-day at any thread count"
    );
    assert_eq!(
        count_of(serial_flat.histogram(fleet_names::DAY_CLOSE_SECONDS)),
        count_of(serial_shared.histogram(fleet_names::DAY_CLOSE_SECONDS)),
    );
    assert_eq!(
        count_of(parallel_flat.histogram(fleet_names::DAY_CLOSE_SECONDS)),
        count_of(parallel_shared.histogram(fleet_names::DAY_CLOSE_SECONDS)),
    );
}

#[test]
fn stopwatch_observations_through_a_shared_tee_commute() {
    use netmeter_sentinel::obs::Stopwatch;

    // The shard-worker shape: N threads share one Tee and each books
    // stopwatch-timed work into it. Wall times are nondeterministic;
    // the discrete tallies must not be.
    let tally_with = |threads: usize| {
        let shared = SharedRegistry::new();
        let flat = MetricsRegistry::new();
        let tee = Arc::new(Tee::new(vec![
            Arc::new(shared.clone()) as Arc<dyn Recorder>,
            Arc::new(flat.clone()) as Arc<dyn Recorder>,
        ]));
        let per_thread = 50usize;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let tee = Arc::clone(&tee);
                std::thread::spawn(move || {
                    for item in 0..per_thread {
                        let watch = Stopwatch::start();
                        tee.add("work_items", 1);
                        tee.observe("work_value", item as f64 % 5.0);
                        tee.observe("work_seconds", watch.secs());
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("worker");
        }
        (shared, flat, (threads * per_thread) as u64)
    };

    let (serial_shared, serial_flat, serial_total) = tally_with(1);
    let (parallel_shared, parallel_flat, parallel_total) = tally_with(4);

    assert_eq!(serial_shared.counter("work_items"), serial_total);
    assert_eq!(parallel_shared.counter("work_items"), parallel_total);
    // Both tee sinks agree exactly, under contention and without.
    for (shared, flat) in [
        (&serial_shared, &serial_flat),
        (&parallel_shared, &parallel_flat),
    ] {
        assert_eq!(shared.counter("work_items"), flat.counter("work_items"));
        for name in ["work_value", "work_seconds"] {
            let striped = shared.histogram(name).expect("striped histogram");
            let teed = flat.histogram(name).expect("flat histogram");
            assert_eq!(striped.count(), teed.count(), "{name}");
            assert_eq!(striped.sum(), teed.sum(), "{name}");
        }
    }
    // And the value histogram (deterministic samples) commutes across
    // thread counts per item.
    let serial = serial_shared.histogram("work_value").expect("histogram");
    let parallel = parallel_shared.histogram("work_value").expect("histogram");
    assert_eq!(serial.count() * 4, parallel.count());
    assert!((serial.sum() * 4.0 - parallel.sum()).abs() < 1e-9);
}
