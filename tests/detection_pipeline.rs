//! End-to-end tests of the detection framework: single-event detection,
//! unilateral attack realizations, and the long-term POMDP loop.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use netmeter_sentinel::attack::{AttackTimeline, PriceAttack};
use netmeter_sentinel::core::{DetectorMode, FrameworkConfig, SingleEventDetector};
use netmeter_sentinel::sim::{run_long_term_detection, LongTermRunConfig, Market, PaperScenario};
use netmeter_sentinel::types::MeterId;

fn scenario() -> PaperScenario {
    PaperScenario::small(12, 1234)
}

fn attack() -> PriceAttack {
    PriceAttack::zero_window(16.0, 17.0).unwrap()
}

#[test]
fn single_event_detector_flags_real_attack_not_clean_day() {
    let s = scenario();
    let market = Market::new(&s).unwrap();
    let generator = s.generator();
    let weather = s.weather_factors(1);
    let community = generator.community_for_day(0, weather[0]);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let clean = market.clear_day(&community, 2, &mut rng).unwrap();
    let manipulated = attack().apply(&clean.price);

    let framework = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
    let detector = SingleEventDetector::new(framework.load, 0.05).unwrap();

    // Clean: price matches → no alarm.
    let outcome = detector
        .detect(&community, &clean.price, &clean.price, &mut rng)
        .unwrap();
    assert!(!outcome.attack_detected);
    assert_eq!(outcome.par_excess, 0.0);

    // Attacked: the zero window drags load in → alarm.
    let outcome = detector
        .detect(&community, &clean.price, &manipulated, &mut rng)
        .unwrap();
    assert!(
        outcome.attack_detected,
        "PAR excess {} under attack",
        outcome.par_excess
    );
}

#[test]
fn unilateral_deviation_scales_with_hacked_count() {
    let s = scenario();
    let market = Market::new(&s).unwrap();
    let generator = s.generator();
    let weather = s.weather_factors(1);
    let community = generator.community_for_day(0, weather[0]);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let clean = market.clear_day(&community, 2, &mut rng).unwrap();
    let manipulated = attack().apply(&clean.price);

    let mut last_excess = 0.0;
    for k in [0usize, 4, 12] {
        let meters: Vec<MeterId> = (0..k).map(MeterId::new).collect();
        let mut child = ChaCha8Rng::seed_from_u64(3);
        let mixed = market
            .truth_model()
            .respond_unilaterally(
                &community,
                &clean.response,
                &manipulated,
                &meters,
                &mut child,
            )
            .unwrap();
        let excess: f64 = (0..24)
            .map(|h| mixed.grid_demand[h] - clean.response.grid_demand[h])
            .fold(f64::NEG_INFINITY, f64::max);
        if k == 0 {
            assert!(excess.abs() < 1e-9, "no hacked homes, excess {excess}");
        } else {
            assert!(
                excess >= last_excess - 0.5,
                "k={k}: excess {excess} below previous {last_excess}"
            );
        }
        last_excess = excess;
    }
    assert!(last_excess > 1.0, "full compromise should move real load");
}

#[test]
fn honest_homes_keep_their_plans_under_unilateral_deviation() {
    let s = scenario();
    let market = Market::new(&s).unwrap();
    let generator = s.generator();
    let weather = s.weather_factors(1);
    let community = generator.community_for_day(0, weather[0]);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let clean = market.clear_day(&community, 2, &mut rng).unwrap();
    let manipulated = attack().apply(&clean.price);

    let meters = vec![MeterId::new(0), MeterId::new(1)];
    let mut child = ChaCha8Rng::seed_from_u64(5);
    let mixed = market
        .truth_model()
        .respond_unilaterally(
            &community,
            &clean.response,
            &manipulated,
            &meters,
            &mut child,
        )
        .unwrap();
    for index in 2..community.len() {
        let before = &clean.response.schedule.customer_schedules()[index];
        let after = &mixed.schedule.customer_schedules()[index];
        assert_eq!(before, after, "honest customer {index} was rescheduled");
    }
}

#[test]
fn long_term_run_is_deterministic_under_seed() {
    let mut s = PaperScenario::small(8, 7);
    s.training_days = 4;
    let config = LongTermRunConfig {
        detection_days: 1,
        detector: Some(FrameworkConfig::new(DetectorMode::NetMeteringAware, 24)),
        timeline: AttackTimeline::new(vec![(4, 2)], attack()).unwrap(),
        buckets: 4,
        bucket_fraction_step: 0.15,
        labor_per_fix: 10.0,
        labor_per_meter: 1.0,
        faults: None,
        sanitize: Default::default(),
        retry: Default::default(),
        budget: Default::default(),
        quarantine: Default::default(),
        parallelism: Default::default(),
        clearing_iterations: 2,
    };
    let run = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        run_long_term_detection(&s, &config, &mut rng).unwrap()
    };
    let a = run(11);
    let b = run(11);
    assert_eq!(a.observed_buckets, b.observed_buckets);
    assert_eq!(a.true_buckets, b.true_buckets);
    assert_eq!(a.fixes_at, b.fixes_at);
    assert!((a.par - b.par).abs() < 1e-12);
}

#[test]
fn no_detection_run_never_repairs() {
    let mut s = PaperScenario::small(8, 8);
    s.training_days = 3;
    let config = LongTermRunConfig {
        detection_days: 1,
        detector: None,
        timeline: AttackTimeline::new(vec![(2, 3)], attack()).unwrap(),
        buckets: 4,
        bucket_fraction_step: 0.15,
        labor_per_fix: 10.0,
        labor_per_meter: 1.0,
        faults: None,
        sanitize: Default::default(),
        retry: Default::default(),
        budget: Default::default(),
        quarantine: Default::default(),
        parallelism: Default::default(),
        clearing_iterations: 2,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let result = run_long_term_detection(&s, &config, &mut rng).unwrap();
    assert_eq!(result.labor.fixes(), 0);
    assert!(result.fixes_at.is_empty());
    // Compromise persists to the end of the run.
    assert!(*result.true_buckets.last().unwrap() > 0);
}

#[test]
fn detector_with_long_lag_requires_enough_training_days() {
    let mut s = PaperScenario::small(8, 9);
    s.training_days = 3; // aware features need 48-slot lags + backtest day
    let config = LongTermRunConfig {
        detection_days: 1,
        detector: Some(FrameworkConfig::new(DetectorMode::NetMeteringAware, 24)),
        timeline: AttackTimeline::new(vec![(2, 2)], attack()).unwrap(),
        buckets: 4,
        bucket_fraction_step: 0.15,
        labor_per_fix: 10.0,
        labor_per_meter: 1.0,
        faults: None,
        sanitize: Default::default(),
        retry: Default::default(),
        budget: Default::default(),
        quarantine: Default::default(),
        parallelism: Default::default(),
        clearing_iterations: 2,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let err = run_long_term_detection(&s, &config, &mut rng).unwrap_err();
    assert!(err.to_string().contains("training days"));
}
