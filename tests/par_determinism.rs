//! Parallel-equals-sequential guarantees (DESIGN.md §9): every stage that
//! fans out over `nms-par` must produce bit-identical results at any
//! thread count, because per-item randomness is derived from `(seed,
//! index)` pairs before the fan-out.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use netmeter_sentinel::core::{DetectorMode, FrameworkConfig};
use netmeter_sentinel::sim::sweeps::{sweep_attack_window, sweep_pv_ownership, sweep_tariff};
use netmeter_sentinel::sim::{
    run_long_term_detection, LongTermRunConfig, PaperScenario, Parallelism,
};

fn scenario() -> PaperScenario {
    let mut scenario = PaperScenario::small(10, 77);
    scenario.training_days = 4;
    scenario
}

#[test]
fn sweeps_are_bit_identical_across_thread_counts() {
    let scenario = scenario();
    let w = [1.0, 1.5, 2.0, 3.0];
    let seq = sweep_tariff(&scenario, &w, &Parallelism::SEQUENTIAL).unwrap();
    let par = sweep_tariff(&scenario, &w, &Parallelism::new(4)).unwrap();
    assert_eq!(seq, par);

    let ownership = [0.0, 0.5, 1.0];
    let seq = sweep_pv_ownership(&scenario, &ownership, &Parallelism::SEQUENTIAL).unwrap();
    let par = sweep_pv_ownership(&scenario, &ownership, &Parallelism::new(4)).unwrap();
    assert_eq!(seq, par);

    let windows = [3.0, 9.0, 16.0, 21.0];
    let seq = sweep_attack_window(&scenario, &windows, &Parallelism::SEQUENTIAL).unwrap();
    let par = sweep_attack_window(&scenario, &windows, &Parallelism::new(4)).unwrap();
    assert_eq!(seq, par);
}

#[test]
fn long_term_detection_is_bit_identical_across_thread_counts() {
    // `parallelism` fans out the calibration backtest; the detection run
    // that follows must not notice.
    let scenario = scenario();
    let run = |threads: usize| {
        let config = LongTermRunConfig {
            detection_days: 2,
            detector: Some(FrameworkConfig::new(DetectorMode::NetMeteringAware, 24)),
            timeline: netmeter_sentinel::sim::experiments::paper_timeline(scenario.customers),
            buckets: 4,
            bucket_fraction_step: 0.15,
            labor_per_fix: 10.0,
            labor_per_meter: 1.0,
            faults: None,
            sanitize: Default::default(),
            retry: Default::default(),
            budget: netmeter_sentinel::types::SolveBudget::unlimited(),
            quarantine: Default::default(),
            parallelism: Parallelism::new(threads),
            clearing_iterations: 2,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        run_long_term_detection(&scenario, &config, &mut rng).unwrap()
    };
    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(sequential.realized_demand, parallel.realized_demand);
    assert_eq!(sequential.true_buckets, parallel.true_buckets);
    assert_eq!(sequential.observed_buckets, parallel.observed_buckets);
    assert_eq!(sequential.fixes_at, parallel.fixes_at);
    assert_eq!(sequential.par, parallel.par);
    assert_eq!(sequential.final_belief, parallel.final_belief);
    assert_eq!(
        sequential.health.retries_consumed,
        parallel.health.retries_consumed
    );
}
