//! The observability determinism contract (DESIGN.md §10): an active
//! recorder may watch everything but change nothing. A run instrumented
//! with JSONL tracing and a metrics registry must be bit-identical to the
//! same run with the no-op recorder — telemetry flows out, never back in.

use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use netmeter_sentinel::core::{DetectorMode, FrameworkConfig, QuarantineConfig};
use netmeter_sentinel::obs::{
    read_trace, JsonlTrace, MetricsRegistry, Recorder, Tee, TraceEvent,
};
use netmeter_sentinel::sim::export::export_long_term;
use netmeter_sentinel::sim::{
    run_long_term_detection, run_long_term_detection_recorded, FaultPlan, LongTermRunConfig,
    LongTermRunResult, MeterOutage, PaperScenario, SupervisedRun,
};

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("nms-obs-{tag}-{}.jsonl", std::process::id()))
}

fn assert_identical(noop: &LongTermRunResult, recorded: &LongTermRunResult) {
    // Bit-identity on every float the run produces; `to_bits` avoids any
    // tolerance sneaking in through `==` on NaN-free data.
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&noop.realized_demand), bits(&recorded.realized_demand));
    assert_eq!(noop.par.to_bits(), recorded.par.to_bits());
    assert_eq!(noop.true_buckets, recorded.true_buckets);
    assert_eq!(noop.observed_buckets, recorded.observed_buckets);
    assert_eq!(noop.fixes_at, recorded.fixes_at);
    assert_eq!(noop.final_belief, recorded.final_belief);
    assert_eq!(noop.health, recorded.health);
    assert_eq!(noop.quarantine_events, recorded.quarantine_events);

    // The exported CSV — the artifact downstream plots consume — is
    // byte-identical, not merely numerically close.
    let csv = |result: &LongTermRunResult| {
        let mut buffer = Vec::new();
        export_long_term(&mut buffer, result).unwrap();
        buffer
    };
    assert_eq!(csv(noop), csv(recorded));
}

fn detection_config(customers: usize) -> LongTermRunConfig {
    LongTermRunConfig {
        detection_days: 2,
        detector: Some(FrameworkConfig::new(DetectorMode::NetMeteringAware, 24)),
        timeline: netmeter_sentinel::sim::experiments::paper_timeline(customers),
        buckets: 4,
        bucket_fraction_step: 0.15,
        labor_per_fix: 10.0,
        labor_per_meter: 1.0,
        faults: None,
        sanitize: Default::default(),
        retry: Default::default(),
        budget: netmeter_sentinel::types::SolveBudget::unlimited(),
        quarantine: Default::default(),
        parallelism: Default::default(),
        clearing_iterations: 2,
    }
}

/// The legacy single-RNG driver at the paper-shapes pin seed: tracing +
/// metrics attached vs the no-op recorder, bit-identical results.
#[test]
fn recorded_legacy_run_matches_noop() {
    let mut scenario = PaperScenario::small(10, 23);
    scenario.training_days = 4;
    let config = detection_config(scenario.customers);

    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let noop = run_long_term_detection(&scenario, &config, &mut rng).unwrap();

    let trace_path = temp_path("legacy");
    let _ = std::fs::remove_file(&trace_path);
    let metrics = MetricsRegistry::new();
    let tee = Tee::new(vec![
        Arc::new(JsonlTrace::create(&trace_path).unwrap()) as Arc<dyn Recorder>,
        Arc::new(metrics.clone()),
    ]);
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let recorded = run_long_term_detection_recorded(&scenario, &config, &mut rng, &tee).unwrap();

    assert_identical(&noop, &recorded);

    // The active run actually recorded: solver effort, per-day phases,
    // and a sealed trace that round-trips through the reader.
    assert!(metrics.counter("solver_games") > 0);
    assert!(metrics.counter("solver_ce_solves") > 0);
    let clearing = metrics.histogram("detect_clearing_seconds").unwrap();
    assert_eq!(clearing.count(), config.detection_days as u64);

    let events = read_trace(&trace_path).unwrap();
    let kinds = |kind: &str| events.iter().filter(|e| e.kind == kind).count();
    assert_eq!(kinds("day_phases"), config.detection_days);
    assert_eq!(kinds("training"), 1);
    assert!(kinds("game_solved") > 0, "solver convergence events missing");
    assert_eq!(kinds("slot"), config.detection_days * 24);
    let day_phases: Vec<&TraceEvent> =
        events.iter().filter(|e| e.kind == "day_phases").collect();
    for event in day_phases {
        for field in [
            "clearing_seconds",
            "prediction_seconds",
            "par_seconds",
            "pomdp_seconds",
        ] {
            let value = event.field_value(field).unwrap();
            assert!(value >= 0.0, "{field} must be a non-negative duration");
        }
    }
    let _ = std::fs::remove_file(&trace_path);
}

/// The supervised driver under fault injection and quarantine: the active
/// recorder sees sanitize and quarantine-transition events while the run's
/// results stay bit-identical to the unrecorded run.
#[test]
fn recorded_supervised_run_matches_noop_and_traces_quarantine() {
    let mut scenario = PaperScenario::small(6, 43);
    scenario.training_days = 4;
    let mut config = detection_config(scenario.customers);
    config.detection_days = 4;
    let mut plan = FaultPlan::none(11);
    plan.outage = Some(MeterOutage {
        first_meter: 1,
        meters: 2,
        from_day: 4,
        until_day: 6,
    });
    config.faults = Some(plan);
    config.quarantine = QuarantineConfig {
        trip_after: 2,
        probation_after: 1,
        close_after: 1,
        ..Default::default()
    };

    let noop_journal = temp_path("sup-noop");
    let recorded_journal = temp_path("sup-rec");
    let trace_path = temp_path("sup-trace");
    for path in [&noop_journal, &recorded_journal, &trace_path] {
        let _ = std::fs::remove_file(path);
    }

    let noop = SupervisedRun::new(&scenario, &config, 43, &noop_journal)
        .unwrap()
        .run()
        .unwrap();

    let trace = Arc::new(JsonlTrace::create(&trace_path).unwrap());
    let recorded =
        SupervisedRun::new_recorded(&scenario, &config, 43, &recorded_journal, trace.clone())
            .unwrap()
            .run()
            .unwrap();
    assert_eq!(trace.dropped(), 0, "no trace line may be dropped");

    assert_identical(&noop, &recorded);
    assert!(
        !noop.quarantine_events.is_empty(),
        "recipe must actually trip breakers"
    );

    let events = read_trace(&trace_path).unwrap();
    let kinds = |kind: &str| events.iter().filter(|e| e.kind == kind).count();
    assert_eq!(kinds("quarantine"), noop.quarantine_events.len());
    assert!(kinds("sanitize") > 0, "fault injection must trace sanitize");
    assert_eq!(kinds("journal_append"), config.detection_days);
    assert_eq!(kinds("day_phases"), config.detection_days);
    // Quarantine events carry the transition as a label.
    let quarantine = events.iter().find(|e| e.kind == "quarantine").unwrap();
    assert!(quarantine.label_value("transition").is_some());

    for path in [&noop_journal, &recorded_journal, &trace_path] {
        let _ = std::fs::remove_file(path);
    }
}
