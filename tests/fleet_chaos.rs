//! Fleet chaos harness: inject panics, storage faults, and deadline
//! blowouts into chosen shards and prove the supervision contract:
//!
//! - the fleet process never panics;
//! - each failed shard lands on its documented ladder stage
//!   (`Retried` → `Resumed` → `Quarantined`) in `FleetHealth`;
//! - a journal-resumed shard is bit-identical — results, disk bytes,
//!   quarantine events — to the same shard run without interference;
//! - every healthy shard is bit-identical to the same community run solo,
//!   at any thread count, no matter what happens to its siblings.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use netmeter_sentinel::attack::{AttackTimeline, PriceAttack};
use netmeter_sentinel::fleet::{
    run_fleet, shard_seed, FleetConfig, FleetError, FleetLadder, FleetOptions, FleetReport,
    ShardSpec,
};
use netmeter_sentinel::obs::names::fleet as fleet_names;
use netmeter_sentinel::obs::MetricsRegistry;
use netmeter_sentinel::sim::{
    LongTermRunConfig, LongTermRunResult, PaperScenario, SupervisedOptions, SupervisedRun,
};
use netmeter_sentinel::types::{BudgetClock, ShardStage, SolveBudget};
use netmeter_sentinel::vfs::{FaultVfs, IoFaultPlan};

const JOURNAL: &str = "fleet/shard.jsonl";
const FLEET_SEED: u64 = 23;
const DAYS: usize = 3;
const SHARDS: usize = 5;
const PANIC_SHARD: usize = 1;
const KILLED_SHARD: usize = 2;
const DEADLINE_SHARD: usize = 3;
const DEAD_DISK_SHARD: usize = 4;

fn community_scenario(index: usize) -> PaperScenario {
    let mut scenario = PaperScenario::small(8, 40 + index as u64);
    scenario.training_days = 3;
    scenario
}

fn run_config() -> LongTermRunConfig {
    LongTermRunConfig {
        detection_days: DAYS,
        detector: None,
        timeline: AttackTimeline::new(
            vec![(4, 2), (20, 2)],
            PriceAttack::zero_window(16.0, 18.0).unwrap(),
        )
        .unwrap(),
        buckets: 4,
        bucket_fraction_step: 0.15,
        labor_per_fix: 10.0,
        labor_per_meter: 1.0,
        faults: None,
        sanitize: Default::default(),
        retry: Default::default(),
        budget: SolveBudget::unlimited(),
        quarantine: Default::default(),
        parallelism: Default::default(),
        clearing_iterations: 2,
    }
}

fn specs() -> Vec<ShardSpec> {
    (0..SHARDS)
        .map(|index| {
            ShardSpec::derived(
                format!("community-{index}"),
                community_scenario(index),
                run_config(),
                FLEET_SEED,
                index,
                JOURNAL,
            )
        })
        .collect()
}

fn options_on(vfs: &FaultVfs) -> SupervisedOptions {
    SupervisedOptions {
        vfs: Arc::new(vfs.clone()),
        ..SupervisedOptions::default()
    }
}

/// Canonical comparison form: the full `Debug` rendering with the
/// process-local storage tally zeroed (absorbed storage faults are
/// observability, excluded from the bit-identity contract by design —
/// see DESIGN.md §12).
fn normalized(mut result: LongTermRunResult) -> String {
    result.health.storage = Default::default();
    format!("{result:?}")
}

/// Runs community `index` solo — no fleet, no chaos — on a clean in-memory
/// disk, returning its normalized result and the disk bytes.
fn solo_run(index: usize) -> (String, std::collections::BTreeMap<std::path::PathBuf, Vec<u8>>) {
    let vfs = FaultVfs::new(IoFaultPlan::none());
    let result = SupervisedRun::with_options(
        &community_scenario(index),
        &run_config(),
        shard_seed(FLEET_SEED, index),
        JOURNAL.as_ref(),
        options_on(&vfs),
    )
    .expect("solo build")
    .run()
    .expect("solo run");
    (normalized(result), vfs.dump())
}

/// The first mutating I/O op of day 1's journal append for community
/// `index` — the deterministic kill point for the storage-loss shard.
fn first_append_op_of_day1(index: usize) -> u64 {
    let vfs = FaultVfs::new(IoFaultPlan::none());
    let mut run = SupervisedRun::with_options(
        &community_scenario(index),
        &run_config(),
        shard_seed(FLEET_SEED, index),
        JOURNAL.as_ref(),
        options_on(&vfs),
    )
    .expect("probe build");
    run.step_day().expect("probe day 0");
    vfs.ops()
}

struct ChaosFleet {
    report: FleetReport,
    shard_vfs: Vec<FaultVfs>,
    metrics: Arc<MetricsRegistry>,
}

/// Builds and runs the chaos fleet at `threads`: one healthy shard, one
/// panicking shard, one shard whose disk dies mid-append and is revived at
/// resume, one shard stuck past the day-close deadline, and one shard
/// whose disk rejects every write from the start.
fn run_chaos_fleet(threads: usize) -> ChaosFleet {
    let kill_at = first_append_op_of_day1(KILLED_SHARD);
    let shard_vfs: Vec<FaultVfs> = (0..SHARDS)
        .map(|index| {
            FaultVfs::new(match index {
                KILLED_SHARD => IoFaultPlan::kill_at(kill_at),
                DEAD_DISK_SHARD => IoFaultPlan {
                    seed: 7,
                    enospc_rate: 1.0,
                    ..IoFaultPlan::none()
                },
                _ => IoFaultPlan::none(),
            })
        })
        .collect();

    let metrics = Arc::new(MetricsRegistry::new());
    let panic_fired = Arc::new(AtomicBool::new(false));
    let hook_fired = Arc::clone(&panic_fired);
    let revive_vfs = shard_vfs[KILLED_SHARD].clone();

    let config = FleetConfig {
        ladder: FleetLadder {
            max_day_retries: 2,
            retry_backoff_ms: 0,
            max_resumes: 2,
            max_deadline_breaches: 1,
        },
        day_deadline: SolveBudget {
            max_iterations: None,
            max_wall_secs: Some(3600.0),
        },
        parallelism: netmeter_sentinel::sim::Parallelism::new(threads),
    };
    let options = FleetOptions {
        shard_options: shard_vfs.iter().map(options_on).collect(),
        recorder: metrics.clone(),
        day_hook: Some(Arc::new(move |shard, day| {
            if shard == PANIC_SHARD && day == 1 && !hook_fired.swap(true, Ordering::SeqCst) {
                panic!("chaos: injected panic in shard {shard} day {day}");
            }
        })),
        clock_for: Some(Arc::new(|shard, _day, budget: SolveBudget| {
            if shard == DEADLINE_SHARD {
                // A day that "took" two hours against a one-hour deadline,
                // with no sleeping and no scheduler dependence.
                BudgetClock::with_elapsed(budget, 7200.0)
            } else {
                budget.start()
            }
        })),
        before_resume: Some(Arc::new(move |shard| {
            if shard == KILLED_SHARD {
                revive_vfs.revive();
            }
        })),
        on_day_close: None,
    };

    let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_fleet(specs(), &config, options)
    }))
    .expect("the fleet process must never panic")
    .expect("chaos is contained, not a fleet error");
    ChaosFleet {
        report,
        shard_vfs,
        metrics,
    }
}

#[test]
fn chaos_fleet_contains_every_failure_on_its_documented_rung() {
    let fleet = run_chaos_fleet(4);
    let health = &fleet.report.health;
    assert_eq!(health.shards.len(), SHARDS);

    // Shard 0 — untouched: no ladder rung, full run.
    let healthy = &health.shards[0];
    assert_eq!(healthy.stage, ShardStage::Healthy);
    assert_eq!(healthy.days_completed, DAYS);
    assert_eq!(healthy.day_retries + healthy.resumes + healthy.deadline_breaches, 0);

    // Shard 1 — panicked once: the panic skips the retry rung and lands on
    // Resumed, and the captured payload message survives into the ledger.
    let panicked = &health.shards[PANIC_SHARD];
    assert_eq!(panicked.stage, ShardStage::Resumed);
    assert_eq!(panicked.days_completed, DAYS);
    assert_eq!(panicked.resumes, 1);
    assert_eq!(panicked.day_retries, 0, "panics must not burn retry attempts");
    let error = panicked.last_error.as_deref().unwrap_or("");
    assert!(error.contains("injected panic"), "{error}");

    // Shard 2 — disk died mid-append: retries fail against the dead disk,
    // the resume hook revives it, and the shard completes.
    let killed = &health.shards[KILLED_SHARD];
    assert_eq!(killed.stage, ShardStage::Resumed);
    assert_eq!(killed.days_completed, DAYS);
    assert_eq!(killed.day_retries, 2, "both retry attempts hit the dead disk");
    assert_eq!(killed.resumes, 1);
    assert!(fleet.shard_vfs[KILLED_SHARD].injected().kills > 0);
    assert_eq!(
        killed.run.storage.journal_append_failures, 1,
        "the torn append must surface in the shard's own health"
    );

    // Shard 3 — chronically past the deadline: breached days still close,
    // then the breaker trips; the remaining day is a suspect-floor verdict.
    let late = &health.shards[DEADLINE_SHARD];
    assert_eq!(late.stage, ShardStage::Quarantined);
    assert_eq!(late.days_completed, 2);
    assert_eq!(late.deadline_breaches, 2);
    assert_eq!(late.suspect_floor_days, 1);
    assert!(late.last_error.as_deref().unwrap_or("").contains("wall-clock"));

    // Shard 4 — disk rejects every write from the start: the whole ladder
    // burns (build never succeeds) and the breaker trips with no result.
    let dead = &health.shards[DEAD_DISK_SHARD];
    assert_eq!(dead.stage, ShardStage::Quarantined);
    assert_eq!(dead.days_completed, 0);
    assert_eq!(dead.suspect_floor_days, DAYS);
    assert!(dead.resumes >= 1, "the ladder must be climbed before tripping");
    assert!(fleet.report.shards[DEAD_DISK_SHARD].result.is_none());

    // Fleet-level aggregates.
    assert_eq!(health.quarantined(), 2);
    assert_eq!(health.healthy(), 1);
    assert_eq!(health.worst_stage(), ShardStage::Quarantined);
    assert!(health.degraded());

    // The quarantined-but-partially-run shard still yields its journaled
    // prefix as a (degraded) result.
    let late_result = fleet.report.shards[DEADLINE_SHARD]
        .result
        .as_ref()
        .expect("quarantine recovery over the journaled prefix");
    assert_eq!(late_result.day_health.len(), 2);
}

#[test]
fn healthy_and_resumed_shards_are_bit_identical_to_solo_runs_at_any_thread_count() {
    let seq = run_chaos_fleet(1);
    let par = run_chaos_fleet(4);

    // Shards that completed must match the same community run solo —
    // including the panicked and storage-killed shards, whose recoveries
    // must be invisible in the results.
    for index in [0, PANIC_SHARD, KILLED_SHARD] {
        let (solo_form, solo_dump) = solo_run(index);
        for fleet in [&seq, &par] {
            let result = fleet.report.shards[index]
                .result
                .as_ref()
                .unwrap_or_else(|| panic!("shard {index} must produce a result"));
            assert_eq!(
                normalized(result.clone()),
                solo_form,
                "shard {index} diverged from its solo run"
            );
            assert_eq!(
                fleet.shard_vfs[index].dump(),
                solo_dump,
                "shard {index}: disk bytes diverged from the solo run"
            );
        }
    }

    // And the two fleets agree with each other shard-by-shard, quarantined
    // partial results included.
    for (index, (a, b)) in seq
        .report
        .shards
        .iter()
        .zip(&par.report.shards)
        .enumerate()
    {
        match (&a.result, &b.result) {
            (Some(a), Some(b)) => assert_eq!(
                normalized(a.clone()),
                normalized(b.clone()),
                "shard {index}: seq/par divergence"
            ),
            (None, None) => {}
            (a, b) => panic!(
                "shard {index}: seq/par result presence diverged ({} vs {})",
                a.is_some(),
                b.is_some()
            ),
        }
    }
    // Ledgers agree too, modulo the free-text error messages (a deadline
    // breach message embeds the real measured elapsed time).
    assert_eq!(redacted(&seq.report.health), redacted(&par.report.health));
}

/// The fleet health with every `last_error` reduced to its presence: the
/// ledgers' counters and stages are part of the determinism contract, the
/// free-text messages (which may embed wall-clock readings) are not.
fn redacted(health: &netmeter_sentinel::types::FleetHealth) -> netmeter_sentinel::types::FleetHealth {
    let mut health = health.clone();
    for shard in &mut health.shards {
        shard.last_error = shard.last_error.as_ref().map(|_| "<present>".to_string());
    }
    health
}

#[test]
fn fleet_metrics_mirror_the_ladder() {
    let fleet = run_chaos_fleet(2);
    let metrics = &fleet.metrics;

    assert_eq!(metrics.counter(fleet_names::QUARANTINES), 2);
    assert!(metrics.counter(fleet_names::PANICS_CONTAINED) >= 1);
    assert!(metrics.counter(fleet_names::SHARD_RESTARTS) >= 2);
    // The dead-disk shard and the killed shard each burn both retries.
    assert_eq!(metrics.counter(fleet_names::DAY_RETRIES), 4);
    assert_eq!(metrics.counter(fleet_names::DEADLINE_BREACHES), 2);
    assert_eq!(metrics.counter(fleet_names::SUSPECT_FLOOR_DAYS) as usize, 1 + DAYS);
    // 0: 3 days, 1: 3, 2: 3, 3: 2, 4: 0.
    assert_eq!(metrics.counter(fleet_names::DAYS_CLOSED), 11);
    assert_eq!(metrics.gauge_value(fleet_names::SHARDS_QUARANTINED), Some(2.0));
    let closes = metrics
        .histogram(fleet_names::DAY_CLOSE_SECONDS)
        .expect("day-close latency histogram");
    assert_eq!(closes.count(), 11);
}

#[test]
fn empty_fleet_is_a_typed_error() {
    match run_fleet(Vec::new(), &FleetConfig::default(), FleetOptions::default()) {
        Err(FleetError::NoShards) => {}
        other => panic!("expected NoShards, got {other:?}"),
    }
}
