//! Crash-point sweep acceptance tests: FoundationDB-style deterministic
//! simulation testing at I/O-*operation* granularity.
//!
//! `tests/fault_robustness.rs` kills supervised runs at hand-picked day
//! boundaries. Here the whole durable pipeline — journal, CSV exports —
//! runs on a fault-injecting in-memory VFS, and *every* mutating I/O
//! operation index of an uninterrupted run becomes a kill point: the run
//! is killed there (tearing the in-flight write), revived, resumed, and
//! must finish with bit-identical results, CSVs, and quarantine events.
//!
//! A second battery drives the sinks through ENOSPC / short-write / fsync
//! faults (no kill) and asserts the degradation policies hold: nothing
//! panics, absorbed faults surface in `RunHealth::storage` and the trace
//! sink's `dropped()` counter, and absorbed faults never change results.

use std::path::Path;
use std::sync::Arc;

use netmeter_sentinel::attack::{AttackTimeline, PriceAttack};
use netmeter_sentinel::core::{DetectorMode, FrameworkConfig, QuarantineConfig};
use netmeter_sentinel::sim::export::{
    export_health_timeline_to_path, export_long_term_to_path, export_quarantine_events_to_path,
};
use netmeter_sentinel::sim::{
    FaultPlan, LongTermRunConfig, LongTermRunResult, MeterOutage, PaperScenario,
    SupervisedOptions, SupervisedRun,
};
use netmeter_sentinel::types::RetryPolicy;
use netmeter_sentinel::vfs::{FaultVfs, IoFaultPlan, StoragePolicy};

const JOURNAL: &str = "sweep/run.jsonl";
const LONG_TERM_CSV: &str = "sweep/long_term.csv";
const HEALTH_CSV: &str = "sweep/health_timeline.csv";
const QUARANTINE_CSV: &str = "sweep/quarantine_events.csv";

fn sweep_scenario(customers: usize, seed: u64) -> PaperScenario {
    let mut scenario = PaperScenario::small(customers, seed);
    scenario.training_days = 4;
    scenario
}

fn sweep_config(
    detector: Option<FrameworkConfig>,
    days: usize,
    faults: Option<FaultPlan>,
) -> LongTermRunConfig {
    LongTermRunConfig {
        detection_days: days,
        detector,
        timeline: AttackTimeline::new(
            vec![(4, 2), (20, 2)],
            PriceAttack::zero_window(16.0, 18.0).unwrap(),
        )
        .unwrap(),
        buckets: 4,
        bucket_fraction_step: 0.15,
        labor_per_fix: 10.0,
        labor_per_meter: 1.0,
        faults,
        sanitize: Default::default(),
        retry: RetryPolicy::default(),
        budget: Default::default(),
        quarantine: QuarantineConfig::default(),
        parallelism: Default::default(),
        clearing_iterations: 2,
    }
}

/// The full durable pipeline on `vfs`: supervised run (create-or-resume
/// from the journal) plus the three per-run CSV artifacts, all through the
/// atomic path-level writers.
fn pipeline(
    vfs: &FaultVfs,
    scenario: &PaperScenario,
    config: &LongTermRunConfig,
    seed: u64,
) -> Result<LongTermRunResult, String> {
    let options = SupervisedOptions {
        vfs: Arc::new(vfs.clone()),
        ..SupervisedOptions::default()
    };
    let run = SupervisedRun::with_options(scenario, config, seed, Path::new(JOURNAL), options)
        .map_err(|err| format!("supervise: {err}"))?;
    let result = run.run().map_err(|err| format!("run: {err}"))?;
    let policy = StoragePolicy::no_retries();
    export_long_term_to_path(vfs, Path::new(LONG_TERM_CSV), &result, &policy)
        .map_err(|err| format!("export long_term: {err}"))?;
    export_health_timeline_to_path(vfs, Path::new(HEALTH_CSV), &result, &policy)
        .map_err(|err| format!("export health: {err}"))?;
    export_quarantine_events_to_path(vfs, Path::new(QUARANTINE_CSV), &result, &policy)
        .map_err(|err| format!("export quarantine: {err}"))?;
    Ok(result)
}

/// Canonical comparison form: the full `Debug` rendering with the
/// process-local storage tally zeroed (storage faults are observability,
/// never allowed to influence results — so they are excluded from the
/// bit-identity contract, then asserted separately).
fn normalized(mut result: LongTermRunResult) -> String {
    result.health.storage = Default::default();
    format!("{result:?}")
}

/// Runs the kill-revive-resume cycle for one kill point and returns the
/// resumed pipeline's normalized result, asserting disk convergence.
fn kill_and_resume(
    kill_at: u64,
    scenario: &PaperScenario,
    config: &LongTermRunConfig,
    seed: u64,
    golden_dump: &std::collections::BTreeMap<std::path::PathBuf, Vec<u8>>,
) -> String {
    let vfs = FaultVfs::new(IoFaultPlan::kill_at(kill_at));
    let killed = pipeline(&vfs, scenario, config, seed);
    assert!(
        killed.is_err(),
        "kill point {kill_at} must abort the pipeline"
    );
    assert!(vfs.is_killed(), "kill point {kill_at} must down the VFS");

    vfs.revive();
    let resumed = pipeline(&vfs, scenario, config, seed)
        .unwrap_or_else(|err| panic!("resume after kill point {kill_at} failed: {err}"));

    let dump = vfs.dump();
    assert_eq!(
        dump.keys().collect::<Vec<_>>(),
        golden_dump.keys().collect::<Vec<_>>(),
        "kill point {kill_at}: surviving file set diverged"
    );
    for (path, bytes) in golden_dump {
        assert_eq!(
            dump.get(path),
            Some(bytes),
            "kill point {kill_at}: {} diverged from the uninterrupted run",
            path.display()
        );
    }
    normalized(resumed)
}

/// The tentpole invariant, exhaustively: every mutating I/O operation of
/// an uninterrupted no-detector run is a kill point, and each killed run
/// resumes to bit-identical results and bytes.
#[test]
fn every_kill_point_resumes_bit_identically() {
    let scenario = sweep_scenario(6, 47);
    let config = sweep_config(None, 3, None);
    let seed = 23;

    let golden_vfs = FaultVfs::new(IoFaultPlan::none());
    let golden = pipeline(&golden_vfs, &scenario, &config, seed).expect("clean run");
    let operations = golden_vfs.ops();
    let golden_dump = golden_vfs.dump();
    let golden_form = normalized(golden);
    assert!(
        operations >= 10,
        "sweep space unexpectedly small: {operations} ops"
    );

    for kill_at in 0..operations {
        let resumed_form = kill_and_resume(kill_at, &scenario, &config, seed, &golden_dump);
        assert_eq!(
            resumed_form, golden_form,
            "kill point {kill_at}: resumed result diverged"
        );
    }
}

/// The same invariant through the detector + telemetry-fault + quarantine
/// path, where day records carry beliefs, compromise sets, and breaker
/// events. The detector makes each pipeline run ~50× costlier, so this
/// sweeps a deterministic stride of kill points rather than all of them —
/// the no-detector sweep above covers every operation *shape*, this one
/// proves the richest day-record payload survives kills too.
#[test]
fn quarantine_events_survive_kill_points() {
    let scenario = sweep_scenario(6, 43);
    let mut plan = FaultPlan::none(11);
    plan.outage = Some(MeterOutage {
        first_meter: 1,
        meters: 2,
        from_day: 4,
        until_day: 6,
    });
    let detector = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
    let mut config = sweep_config(Some(detector), 4, Some(plan));
    config.quarantine = QuarantineConfig {
        trip_after: 2,
        probation_after: 1,
        close_after: 1,
        ..QuarantineConfig::default()
    };
    let seed = 5;

    let golden_vfs = FaultVfs::new(IoFaultPlan::none());
    let golden = pipeline(&golden_vfs, &scenario, &config, seed).expect("clean run");
    let operations = golden_vfs.ops();
    let golden_dump = golden_vfs.dump();
    assert!(
        !golden.quarantine_events.is_empty(),
        "scenario must exercise quarantine transitions"
    );
    assert!(
        golden_dump
            .get(Path::new(QUARANTINE_CSV))
            .is_some_and(|bytes| bytes.len() > "day,meter,transition\n".len()),
        "quarantine CSV must have event rows"
    );
    let golden_form = normalized(golden);

    // Stride through the op space; always include the final op (the last
    // export rename) and op 1 (the header rename).
    let mut kill_points: Vec<u64> = (0..operations).step_by(5).collect();
    kill_points.push(1);
    kill_points.push(operations - 1);
    kill_points.sort_unstable();
    kill_points.dedup();

    for kill_at in kill_points {
        let resumed_form = kill_and_resume(kill_at, &scenario, &config, seed, &golden_dump);
        assert_eq!(
            resumed_form, golden_form,
            "kill point {kill_at}: resumed result (incl. quarantine events) diverged"
        );
    }
}

/// Degradation policies under rate faults (no kill): ENOSPC, short
/// writes, and fsync failures hammer every sink, and the pipeline either
/// absorbs them (bounded retries; faults ticked into `RunHealth::storage`)
/// or fails with a typed error — it never panics, and an absorbed fault
/// never changes results.
#[test]
fn rate_faults_never_panic_and_absorbed_faults_never_change_results() {
    let scenario = sweep_scenario(6, 47);
    let config = sweep_config(None, 3, None);
    let seed = 23;

    let clean_vfs = FaultVfs::new(IoFaultPlan::none());
    let clean_form = normalized(
        pipeline(&clean_vfs, &scenario, &config, seed).expect("clean run"),
    );

    let mut absorbed_at_least_once = false;
    for fault_seed in 0..24u64 {
        let plan = IoFaultPlan {
            seed: fault_seed,
            enospc_rate: 0.15,
            short_write_rate: 0.1,
            sync_fail_rate: 0.1,
            ..IoFaultPlan::none()
        };
        let vfs = FaultVfs::new(plan);
        match pipeline(&vfs, &scenario, &config, seed) {
            Ok(result) => {
                let injected = vfs.injected();
                if injected.total() > 0 {
                    absorbed_at_least_once = true;
                    assert!(
                        result.health.storage.total() > 0,
                        "fault seed {fault_seed}: absorbed {injected:?} but \
                         RunHealth::storage is clean"
                    );
                }
                assert_eq!(
                    normalized(result),
                    clean_form,
                    "fault seed {fault_seed}: absorbed faults changed the result"
                );
            }
            // Typed failure is acceptable; a panic would fail the test.
            Err(message) => {
                assert!(
                    !message.is_empty(),
                    "fault seed {fault_seed}: empty error"
                );
            }
        }
    }
    assert!(
        absorbed_at_least_once,
        "no fault seed exercised the absorb-and-continue path; rates too low"
    );
}

/// Satellite: the trace sink's drop-and-count policy under injected write
/// failures — `dropped()` matches what the VFS injected, the surviving
/// file stays readable, and recording through a faulty trace leaves the
/// simulation result bit-identical to the no-op recorder's.
#[test]
fn trace_drop_counts_match_injected_failures() {
    use netmeter_sentinel::obs::{read_trace_on, JsonlTrace};
    use netmeter_sentinel::sim::run_long_term_detection_recorded;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    let scenario = sweep_scenario(6, 47);
    let detector = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
    let config = sweep_config(Some(detector), 1, Some(FaultPlan::none(17)));

    // ENOSPC only: clean failures (no partial bytes), so every surviving
    // line is intact and the drop count is exactly the injection count.
    // Ops 0-1 are the header's staging write + rename, shielded so
    // creation succeeds.
    let plan = IoFaultPlan {
        seed: 7,
        enospc_rate: 0.3,
        fault_from_op: 2,
        ..IoFaultPlan::none()
    };
    let vfs = FaultVfs::new(plan);
    let trace = JsonlTrace::create_on(Arc::new(vfs.clone()), Path::new("run.trace.jsonl"))
        .expect("shielded header creation");

    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let recorded = run_long_term_detection_recorded(&scenario, &config, &mut rng, &trace)
        .expect("telemetry loss must not fail the run");

    let injected = vfs.injected();
    assert!(injected.enospc > 0, "plan injected nothing; raise the rate");
    assert_eq!(injected.total(), injected.enospc, "ENOSPC-only plan");
    assert_eq!(
        trace.dropped(),
        injected.enospc,
        "every injected write failure must be counted as a dropped event"
    );

    // The surviving trace is shorter but fully readable.
    let events = read_trace_on(&vfs, Path::new("run.trace.jsonl")).expect("readable trace");
    assert!(!events.is_empty());

    // And the result is bit-identical to the no-op recorder's run.
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let baseline =
        netmeter_sentinel::sim::run_long_term_detection(&scenario, &config, &mut rng).unwrap();
    assert_eq!(format!("{recorded:?}"), format!("{baseline:?}"));
}

/// Satellite: a short-write-torn trace line is a typed `Corrupt` error on
/// read-back — never a panic, never silently parsed.
#[test]
fn torn_trace_lines_are_typed_errors() {
    use netmeter_sentinel::obs::{read_trace_on, JsonlTrace, Recorder, TraceError, TraceEvent};

    let plan = IoFaultPlan {
        seed: 3,
        short_write_rate: 1.0,
        fault_from_op: 2,
        ..IoFaultPlan::none()
    };
    let vfs = FaultVfs::new(plan);
    let trace = JsonlTrace::create_on(Arc::new(vfs.clone()), Path::new("torn.trace.jsonl"))
        .expect("shielded header creation");
    trace.event(&TraceEvent::new("doomed").day(0).field("x", 1.0));
    assert_eq!(trace.dropped(), 1, "the short write is a counted drop");
    assert!(vfs.injected().short_writes > 0);

    match read_trace_on(&vfs, Path::new("torn.trace.jsonl")) {
        // The torn fragment lands mid-file after the header: typed.
        Err(TraceError::Corrupt { line, .. }) => assert!(line >= 2),
        Ok(events) => panic!("torn line parsed as {events:?}"),
        Err(other) => panic!("expected Corrupt, got {other:?}"),
    }
}

/// Satellite: the bench merge-writer survives injected faults with its
/// bounded retries, and a hard failure is a typed error that leaves the
/// destination untouched.
#[test]
fn bench_merge_writer_retries_and_fails_typed() {
    use netmeter_sentinel::vfs::injected_fault;
    use nms_bench::{record_bench_results_on, BenchRecord};

    let record = BenchRecord {
        target: "crash_sweep/smoke".into(),
        wall_secs: 0.5,
        customers: 6,
        seed: 23,
        threads: 1,
        host_cores: 1,
        solver_rounds: 0,
        cache_hits: 0,
        cache_misses: 0,
        note: "storage-fault smoke".into(),
        speedup: 0.0,
    };

    // Transient faults: the default 3-attempt policy rides them out.
    let plan = IoFaultPlan {
        seed: 11,
        enospc_rate: 0.4,
        ..IoFaultPlan::none()
    };
    let vfs = FaultVfs::new(plan);
    let mut wrote = false;
    for _ in 0..8 {
        if record_bench_results_on(&vfs, std::slice::from_ref(&record)).is_ok() {
            wrote = true;
            break;
        }
    }
    assert!(wrote, "bounded retries never landed the record");

    // Certain failure: typed io::Error classified as injected, and the
    // destination path still holds the *previous* intact artifact.
    let before = vfs.dump();
    let always = FaultVfs::new(IoFaultPlan {
        seed: 11,
        enospc_rate: 1.0,
        ..IoFaultPlan::none()
    });
    let err = record_bench_results_on(&always, std::slice::from_ref(&record))
        .expect_err("all attempts fail");
    assert!(injected_fault(&err).is_some(), "unclassified error: {err}");
    drop(before);
}
