//! Serde round-trips for the workspace's data-structure types (C-SERDE):
//! scenario files and experiment artifacts must survive serialization.

use netmeter_sentinel::attack::{AttackerConfig, PriceAttack};
use netmeter_sentinel::pricing::{NetMeteringTariff, PriceSignal, UtilityConfig};
use netmeter_sentinel::sim::PaperScenario;
use netmeter_sentinel::smarthome::{Appliance, ApplianceKind, PowerLevels, TaskSpec};
use netmeter_sentinel::solver::{CeConfig, GameConfig};
use netmeter_sentinel::types::{Horizon, Kw, Kwh, TimeSeries};

/// JSON round-trip through serde; equality must hold.
fn roundtrip<T>(value: &T)
where
    T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug,
{
    let json = serde_json::to_string(value).expect("serialize");
    let back: T = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(*value, back);
}

#[test]
fn quantities_and_series_roundtrip() {
    roundtrip(&Kwh::new(3.25));
    roundtrip(&Kw::new(1.5));
    roundtrip(&Horizon::hourly_day());
    roundtrip(&TimeSeries::from_fn(Horizon::hourly_day(), |h| h as f64));
}

#[test]
fn smarthome_types_roundtrip() {
    let appliance = Appliance::new(
        netmeter_sentinel::types::ApplianceId::new(3),
        ApplianceKind::ElectricVehicle,
        PowerLevels::stepped(Kw::new(3.3), 3).unwrap(),
        TaskSpec::new(Kwh::new(7.5), 18, 23).unwrap(),
    );
    roundtrip(&appliance);
    roundtrip(&ApplianceKind::Custom("sauna".into()));
}

#[test]
fn pricing_types_roundtrip() {
    roundtrip(&NetMeteringTariff::new(1.75).unwrap());
    roundtrip(&UtilityConfig::default());
    roundtrip(&PriceSignal::time_of_use(Horizon::hourly_day(), 0.05, 0.2).unwrap());
}

#[test]
fn attack_types_roundtrip() {
    roundtrip(&PriceAttack::zero_window(16.0, 17.0).unwrap());
    roundtrip(&PriceAttack::InvertAroundMean);
    roundtrip(&AttackerConfig::default());
}

#[test]
fn solver_and_scenario_configs_roundtrip() {
    roundtrip(&CeConfig::default());
    roundtrip(&GameConfig::fast());
    roundtrip(&PaperScenario::small(20, 42));
    roundtrip(&PaperScenario::paper(7));
}

#[test]
fn parallelism_roundtrips_and_defaults_sequential() {
    use netmeter_sentinel::solver::Parallelism;

    roundtrip(&Parallelism::SEQUENTIAL);
    roundtrip(&Parallelism::new(8));

    // A GameConfig serialized before the parallelism/cache knobs existed
    // must still load, landing on the sequential cache-free defaults that
    // keep old runs bit-identical: strip the new keys from today's JSON to
    // reconstruct a pre-knob config file.
    let full = serde_json::to_string(&GameConfig::default()).expect("serialize");
    let legacy = full
        .replace(",\"parallelism\":{\"threads\":1}", "")
        .replace("\"parallelism\":{\"threads\":1},", "")
        .replace(",\"cache_quantum\":0.0", "")
        .replace("\"cache_quantum\":0.0,", "");
    assert!(
        !legacy.contains("parallelism") && !legacy.contains("cache_quantum"),
        "failed to strip new keys from {legacy}"
    );
    let config: GameConfig = serde_json::from_str(&legacy).expect("legacy config loads");
    assert_eq!(config.parallelism, Parallelism::SEQUENTIAL);
    assert_eq!(config.cache_quantum, 0.0);
}

#[test]
fn robustness_types_roundtrip() {
    use netmeter_sentinel::sim::FaultPlan;
    use netmeter_sentinel::types::{FallbackRecord, FaultKind, FaultCounts, RetryPolicy, RunHealth};

    roundtrip(&FaultPlan::none(3));
    roundtrip(&FaultPlan::degraded(11, 0.05));
    roundtrip(&RetryPolicy::default());
    roundtrip(&RetryPolicy::single_attempt());

    let mut counts = FaultCounts::default();
    counts.record(FaultKind::Dropped);
    counts.record(FaultKind::NonFinite);
    counts.record(FaultKind::Garbage);
    roundtrip(&counts);

    let mut health = RunHealth::new();
    health.faults_injected = counts;
    health.slots_observed = 48;
    health.slots_imputed = 3;
    health.record_retries(2);
    health.record_fallback(FallbackRecord::new(
        "battery-optimizer",
        "cross-entropy",
        "coordinate-descent",
        "did not converge",
    ));
    roundtrip(&health);
    assert!(health.degraded());
    roundtrip(&RunHealth::new());
}
