//! Robustness acceptance tests: telemetry fault injection, graceful
//! degradation, and the solver fallback-and-retry chain.
//!
//! The contract under test: a corrupted telemetry stream must never panic
//! the pipeline — every slot still gets a verdict, and [`RunHealth`]
//! accounts for the faults, imputations, retries, and fallbacks consumed
//! along the way.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use netmeter_sentinel::attack::{AttackTimeline, PriceAttack};
use netmeter_sentinel::core::{DetectorMode, FrameworkConfig};
use netmeter_sentinel::sim::{
    run_long_term_detection, FaultPlan, LongTermRunConfig, PaperScenario, SimError,
};
use netmeter_sentinel::types::RetryPolicy;

fn timeline(fleet: usize) -> AttackTimeline {
    let wave = (fleet / 3).max(1);
    AttackTimeline::new(
        vec![(4, wave), (20, wave)],
        PriceAttack::zero_window(16.0, 18.0).unwrap(),
    )
    .unwrap()
}

fn config(detector: Option<FrameworkConfig>, days: usize, faults: Option<FaultPlan>) -> LongTermRunConfig {
    LongTermRunConfig {
        detection_days: days,
        detector,
        timeline: timeline(10),
        buckets: 4,
        bucket_fraction_step: 0.15,
        labor_per_fix: 10.0,
        labor_per_meter: 1.0,
        faults,
    }
}

/// The ISSUE's end-to-end acceptance shape: a 48-hour simulated run with 5%
/// dropped readings and 1% NaN values completes without panicking, returns
/// a verdict for every slot, and the health report accounts for the faults.
#[test]
fn degraded_48h_run_returns_a_verdict_every_slot() {
    let mut scenario = PaperScenario::small(10, 41);
    scenario.training_days = 4;
    let mut plan = FaultPlan::none(17);
    plan.drop_rate = 0.05;
    plan.nan_rate = 0.01;
    let detector = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
    let config = config(Some(detector), 2, Some(plan));
    let mut rng = ChaCha8Rng::seed_from_u64(9);

    let result = run_long_term_detection(&scenario, &config, &mut rng).unwrap();

    // Verdict every slot of the 48-hour window.
    assert_eq!(result.observed_buckets.len(), 48);
    assert_eq!(result.true_buckets.len(), 48);
    assert_eq!(result.realized_demand.len(), 48);
    assert!(result.realized_demand.iter().all(|d| d.is_finite()));
    assert!(result.observed_buckets.iter().all(|&o| o < config.buckets));

    // The ledger saw the corruption: ~5% of 10 meters × 48 slots dropped.
    assert!(
        result.health.faults_injected.dropped > 0,
        "no dropped readings recorded: {:?}",
        result.health
    );
    assert!(result.health.faults_injected.non_finite > 0);
    assert_eq!(result.health.slots_observed, 48);
}

/// Same run, pristine telemetry: the ledger stays clean and accuracy is at
/// least as good as under corruption (the runs share every seed).
#[test]
fn pristine_run_reports_a_clean_ledger() {
    let mut scenario = PaperScenario::small(10, 41);
    scenario.training_days = 4;
    let detector = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
    let config = config(Some(detector), 1, Some(FaultPlan::none(17)));
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let result = run_long_term_detection(&scenario, &config, &mut rng).unwrap();
    assert_eq!(result.health.faults_injected.total(), 0);
    assert_eq!(result.health.slots_imputed, 0);
    assert_eq!(result.observed_buckets.len(), 24);
}

/// Meters that stop reporting entirely force aggregate-level NaN slots,
/// which the sanitizer must impute (and count).
#[test]
fn unreported_fleet_forces_imputation() {
    let mut scenario = PaperScenario::small(6, 43);
    scenario.training_days = 4;
    let mut plan = FaultPlan::none(5);
    plan.report_rate = 0.0; // nobody reports: every slot needs imputing
    let detector = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
    let config = config(Some(detector), 1, Some(plan));
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let result = run_long_term_detection(&scenario, &config, &mut rng).unwrap();
    assert_eq!(result.observed_buckets.len(), 24);
    assert_eq!(result.health.faults_injected.unreported, 6);
    assert_eq!(
        result.health.slots_imputed, 24,
        "a silent fleet must impute the whole day: {:?}",
        result.health
    );
}

/// The solver chain's acceptance shape, end to end through the public API:
/// a strangled CE optimizer must fall back to coordinate descent with the
/// fallback recorded, and never return a schedule costlier than the CE
/// iterate it abandoned. (Unit-level variants live in `nms-solver`.)
#[test]
fn battery_fallback_chain_is_recorded_and_no_worse() {
    use netmeter_sentinel::pricing::{CostModel, NetMeteringTariff, PriceSignal};
    use netmeter_sentinel::smarthome::Battery;
    use netmeter_sentinel::solver::{
        solve_battery_robust, try_optimize_battery, BatteryProblem, BatterySolveStage, CeConfig,
        CrossEntropyOptimizer,
    };
    use netmeter_sentinel::types::{Horizon, Kwh, TimeSeries};

    let day = Horizon::hourly_day();
    let prices = PriceSignal::new(TimeSeries::from_fn(day, |h| {
        if (18..22).contains(&h) {
            0.5
        } else {
            0.05
        }
    }))
    .unwrap();
    let load = TimeSeries::filled(day, 1.0);
    let generation = TimeSeries::filled(day, 0.0);
    let others = TimeSeries::filled(day, 20.0);
    let battery = Battery::new(Kwh::new(5.0), Kwh::ZERO).unwrap();
    let problem = BatteryProblem::new(
        &battery,
        &load,
        &generation,
        &others,
        CostModel::new(&prices, NetMeteringTariff::default()),
    );

    let strangled = CeConfig {
        max_iters: 1,
        std_tol_fraction: 0.0,
        ..CeConfig::default()
    };
    let policy = RetryPolicy {
        max_attempts: 2,
        iteration_growth: 1.0,
        reseed_stride: 1,
    };
    let outcome = solve_battery_robust(&problem, &strangled, &policy, None, 77).unwrap();
    assert_eq!(outcome.stage, BatterySolveStage::CoordinateDescent);
    assert_eq!(outcome.retries, 1);
    let record = outcome.fallback.as_ref().expect("fallback recorded");
    assert_eq!(
        (record.from.as_str(), record.to.as_str()),
        ("cross-entropy", "coordinate-descent")
    );

    // No worse than the non-converged CE iterate it replaced.
    let optimizer = CrossEntropyOptimizer::new(strangled);
    let mut rng = ChaCha8Rng::seed_from_u64(policy.reseed(77, 0));
    let (_, ce_iterate) = try_optimize_battery(&problem, &optimizer, None, &mut rng).unwrap();
    assert!(outcome.objective <= ce_iterate.objective + 1e-12);
}

/// The predictor-side fallback shape: an SMO budget that can never satisfy
/// its tolerance must drop to the seasonal baseline, recorded in the train
/// report, and still predict a full day.
#[test]
fn smo_exhaustion_falls_back_to_seasonal_baseline() {
    use netmeter_sentinel::core::PricePredictor;
    use netmeter_sentinel::forecast::{FeatureConfig, PriceHistory, SvrParams};
    use netmeter_sentinel::types::Horizon;

    let spd = 24;
    let mut prices = Vec::new();
    let mut generation = Vec::new();
    let mut demand = Vec::new();
    for t in 0..spd * 6 {
        let hour = (t % spd) as f64;
        prices.push(0.05 + 0.01 * (12.0 - hour).abs() / 12.0);
        generation.push(0.0);
        demand.push(100.0 + hour);
    }
    let history = PriceHistory::new(prices, generation, demand, spd).unwrap();

    let mut predictor = PricePredictor::with_config(
        FeatureConfig::naive(spd),
        SvrParams {
            max_passes: 1,
            tolerance: 0.0,
            ..SvrParams::default()
        },
    );
    let policy = RetryPolicy {
        max_attempts: 3,
        iteration_growth: 2.0,
        reseed_stride: 1,
    };
    let report = predictor.train_robust(&history, &policy).unwrap();
    assert!(!report.converged);
    assert_eq!(report.retries, 2);
    let record = report.fallback.expect("fallback recorded");
    assert_eq!(
        (record.from.as_str(), record.to.as_str()),
        ("svr", "seasonal-baseline")
    );
    let predicted = predictor
        .predict_day(&history, Horizon::hourly_day(), None)
        .unwrap();
    assert_eq!(predicted.len(), 24);
    assert!(predicted.as_series().iter().all(|p| p.is_finite()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the fault mix, a small scenario either returns a verdict
    /// for every slot plus a health ledger, or a typed `SimError` — never
    /// a panic.
    #[test]
    fn arbitrary_fault_plans_never_panic(
        seed in 0u64..1000,
        drop_rate in 0.0f64..=1.0,
        nan_rate in 0.0f64..=1.0,
        garbage_rate in 0.0f64..=1.0,
        stuck_rate in 0.0f64..=1.0,
        skew_rate in 0.0f64..=1.0,
        report_rate in 0.0f64..=1.0,
    ) {
        let plan = FaultPlan {
            seed,
            drop_rate,
            nan_rate,
            garbage_rate,
            garbage_scale: 100.0,
            stuck_rate,
            skew_rate,
            report_rate,
        };
        let mut scenario = PaperScenario::small(4, 29);
        scenario.training_days = 4;
        let detector = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
        let config = config(Some(detector), 1, Some(plan));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        match run_long_term_detection(&scenario, &config, &mut rng) {
            Ok(result) => {
                prop_assert_eq!(result.observed_buckets.len(), 24);
                prop_assert_eq!(result.health.slots_observed, 24);
                prop_assert!(result.realized_demand.iter().all(|d| d.is_finite()));
            }
            Err(
                SimError::Solver(_)
                | SimError::Prediction(_)
                | SimError::Config(_)
                | SimError::Telemetry { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error variant: {other}"),
        }
    }
}
