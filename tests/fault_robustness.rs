//! Robustness acceptance tests: telemetry fault injection, graceful
//! degradation, and the solver fallback-and-retry chain.
//!
//! The contract under test: a corrupted telemetry stream must never panic
//! the pipeline — every slot still gets a verdict, and [`RunHealth`]
//! accounts for the faults, imputations, retries, and fallbacks consumed
//! along the way.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use netmeter_sentinel::attack::{AttackTimeline, PriceAttack};
use netmeter_sentinel::core::{DetectorMode, FrameworkConfig, QuarantineConfig, QuarantineTransition};
use netmeter_sentinel::sim::journal::JournalError;
use netmeter_sentinel::sim::{
    run_long_term_detection, run_long_term_supervised, FaultPlan, LongTermRunConfig, MeterOutage,
    PaperScenario, SimError, SupervisedRun,
};
use netmeter_sentinel::types::RetryPolicy;

/// Unique scratch path for a journal file.
fn journal_path(name: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut path = std::env::temp_dir();
    path.push(format!(
        "nms-robustness-{}-{name}-{n}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn timeline(fleet: usize) -> AttackTimeline {
    let wave = (fleet / 3).max(1);
    AttackTimeline::new(
        vec![(4, wave), (20, wave)],
        PriceAttack::zero_window(16.0, 18.0).unwrap(),
    )
    .unwrap()
}

fn config(detector: Option<FrameworkConfig>, days: usize, faults: Option<FaultPlan>) -> LongTermRunConfig {
    LongTermRunConfig {
        detection_days: days,
        detector,
        timeline: timeline(10),
        buckets: 4,
        bucket_fraction_step: 0.15,
        labor_per_fix: 10.0,
        labor_per_meter: 1.0,
        faults,
        sanitize: Default::default(),
        retry: RetryPolicy::default(),
        budget: Default::default(),
        quarantine: QuarantineConfig::default(),
        parallelism: Default::default(),
        clearing_iterations: 2,
    }
}

/// The ISSUE's end-to-end acceptance shape: a 48-hour simulated run with 5%
/// dropped readings and 1% NaN values completes without panicking, returns
/// a verdict for every slot, and the health report accounts for the faults.
#[test]
fn degraded_48h_run_returns_a_verdict_every_slot() {
    let mut scenario = PaperScenario::small(10, 41);
    scenario.training_days = 4;
    let mut plan = FaultPlan::none(17);
    plan.drop_rate = 0.05;
    plan.nan_rate = 0.01;
    let detector = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
    let config = config(Some(detector), 2, Some(plan));
    let mut rng = ChaCha8Rng::seed_from_u64(9);

    let result = run_long_term_detection(&scenario, &config, &mut rng).unwrap();

    // Verdict every slot of the 48-hour window.
    assert_eq!(result.observed_buckets.len(), 48);
    assert_eq!(result.true_buckets.len(), 48);
    assert_eq!(result.realized_demand.len(), 48);
    assert!(result.realized_demand.iter().all(|d| d.is_finite()));
    assert!(result.observed_buckets.iter().all(|&o| o < config.buckets));

    // The ledger saw the corruption: ~5% of 10 meters × 48 slots dropped.
    assert!(
        result.health.faults_injected.dropped > 0,
        "no dropped readings recorded: {:?}",
        result.health
    );
    assert!(result.health.faults_injected.non_finite > 0);
    assert_eq!(result.health.slots_observed, 48);
}

/// Same run, pristine telemetry: the ledger stays clean and accuracy is at
/// least as good as under corruption (the runs share every seed).
#[test]
fn pristine_run_reports_a_clean_ledger() {
    let mut scenario = PaperScenario::small(10, 41);
    scenario.training_days = 4;
    let detector = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
    let config = config(Some(detector), 1, Some(FaultPlan::none(17)));
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let result = run_long_term_detection(&scenario, &config, &mut rng).unwrap();
    assert_eq!(result.health.faults_injected.total(), 0);
    assert_eq!(result.health.slots_imputed, 0);
    assert_eq!(result.observed_buckets.len(), 24);
}

/// Meters that stop reporting entirely force aggregate-level NaN slots,
/// which the sanitizer must impute (and count).
#[test]
fn unreported_fleet_forces_imputation() {
    let mut scenario = PaperScenario::small(6, 43);
    scenario.training_days = 4;
    let mut plan = FaultPlan::none(5);
    plan.report_rate = 0.0; // nobody reports: every slot needs imputing
    let detector = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
    let config = config(Some(detector), 1, Some(plan));
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let result = run_long_term_detection(&scenario, &config, &mut rng).unwrap();
    assert_eq!(result.observed_buckets.len(), 24);
    assert_eq!(result.health.faults_injected.unreported, 6);
    assert_eq!(
        result.health.slots_imputed, 24,
        "a silent fleet must impute the whole day: {:?}",
        result.health
    );
}

/// The solver chain's acceptance shape, end to end through the public API:
/// a strangled CE optimizer must fall back to coordinate descent with the
/// fallback recorded, and never return a schedule costlier than the CE
/// iterate it abandoned. (Unit-level variants live in `nms-solver`.)
#[test]
fn battery_fallback_chain_is_recorded_and_no_worse() {
    use netmeter_sentinel::pricing::{CostModel, NetMeteringTariff, PriceSignal};
    use netmeter_sentinel::smarthome::Battery;
    use netmeter_sentinel::solver::{
        solve_battery_robust, try_optimize_battery, BatteryProblem, BatterySolveStage, CeConfig,
        CrossEntropyOptimizer,
    };
    use netmeter_sentinel::types::{Horizon, Kwh, TimeSeries};

    let day = Horizon::hourly_day();
    let prices = PriceSignal::new(TimeSeries::from_fn(day, |h| {
        if (18..22).contains(&h) {
            0.5
        } else {
            0.05
        }
    }))
    .unwrap();
    let load = TimeSeries::filled(day, 1.0);
    let generation = TimeSeries::filled(day, 0.0);
    let others = TimeSeries::filled(day, 20.0);
    let battery = Battery::new(Kwh::new(5.0), Kwh::ZERO).unwrap();
    let problem = BatteryProblem::new(
        &battery,
        &load,
        &generation,
        &others,
        CostModel::new(&prices, NetMeteringTariff::default()),
    );

    let strangled = CeConfig {
        max_iters: 1,
        std_tol_fraction: 0.0,
        ..CeConfig::default()
    };
    let policy = RetryPolicy {
        max_attempts: 2,
        iteration_growth: 1.0,
        reseed_stride: 1,
    };
    let outcome = solve_battery_robust(
        &problem,
        &strangled,
        &policy,
        &netmeter_sentinel::types::SolveBudget::unlimited(),
        None,
        77,
    )
    .unwrap();
    assert_eq!(outcome.stage, BatterySolveStage::CoordinateDescent);
    assert_eq!(outcome.retries, 1);
    let record = outcome.fallback.as_ref().expect("fallback recorded");
    assert_eq!(
        (record.from.as_str(), record.to.as_str()),
        ("cross-entropy", "coordinate-descent")
    );

    // No worse than the non-converged CE iterate it replaced.
    let optimizer = CrossEntropyOptimizer::new(strangled);
    let mut rng = ChaCha8Rng::seed_from_u64(policy.reseed(77, 0));
    let (_, ce_iterate) = try_optimize_battery(&problem, &optimizer, None, &mut rng).unwrap();
    assert!(outcome.objective <= ce_iterate.objective + 1e-12);
}

/// The predictor-side fallback shape: an SMO budget that can never satisfy
/// its tolerance must drop to the seasonal baseline, recorded in the train
/// report, and still predict a full day.
#[test]
fn smo_exhaustion_falls_back_to_seasonal_baseline() {
    use netmeter_sentinel::core::PricePredictor;
    use netmeter_sentinel::forecast::{FeatureConfig, PriceHistory, SvrParams};
    use netmeter_sentinel::types::Horizon;

    let spd = 24;
    let mut prices = Vec::new();
    let mut generation = Vec::new();
    let mut demand = Vec::new();
    for t in 0..spd * 6 {
        let hour = (t % spd) as f64;
        prices.push(0.05 + 0.01 * (12.0 - hour).abs() / 12.0);
        generation.push(0.0);
        demand.push(100.0 + hour);
    }
    let history = PriceHistory::new(prices, generation, demand, spd).unwrap();

    let mut predictor = PricePredictor::with_config(
        FeatureConfig::naive(spd),
        SvrParams {
            max_passes: 1,
            tolerance: 0.0,
            ..SvrParams::default()
        },
    );
    let policy = RetryPolicy {
        max_attempts: 3,
        iteration_growth: 2.0,
        reseed_stride: 1,
    };
    let report = predictor.train_robust(&history, &policy).unwrap();
    assert!(!report.converged);
    assert_eq!(report.retries, 2);
    let record = report.fallback.expect("fallback recorded");
    assert_eq!(
        (record.from.as_str(), record.to.as_str()),
        ("svr", "seasonal-baseline")
    );
    let predicted = predictor
        .predict_day(&history, Horizon::hourly_day(), None)
        .unwrap();
    assert_eq!(predicted.len(), 24);
    assert!(predicted.as_series().iter().all(|p| p.is_finite()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the fault mix, a small scenario either returns a verdict
    /// for every slot plus a health ledger, or a typed `SimError` — never
    /// a panic.
    #[test]
    fn arbitrary_fault_plans_never_panic(
        seed in 0u64..1000,
        drop_rate in 0.0f64..=1.0,
        nan_rate in 0.0f64..=1.0,
        garbage_rate in 0.0f64..=1.0,
        stuck_rate in 0.0f64..=1.0,
        skew_rate in 0.0f64..=1.0,
        report_rate in 0.0f64..=1.0,
    ) {
        let plan = FaultPlan {
            seed,
            drop_rate,
            nan_rate,
            garbage_rate,
            garbage_scale: 100.0,
            stuck_rate,
            skew_rate,
            report_rate,
            outage: None,
        };
        let mut scenario = PaperScenario::small(4, 29);
        scenario.training_days = 4;
        let detector = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
        let config = config(Some(detector), 1, Some(plan));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        match run_long_term_detection(&scenario, &config, &mut rng) {
            Ok(result) => {
                prop_assert_eq!(result.observed_buckets.len(), 24);
                prop_assert_eq!(result.health.slots_observed, 24);
                prop_assert!(result.realized_demand.iter().all(|d| d.is_finite()));
            }
            Err(
                SimError::Solver(_)
                | SimError::Prediction(_)
                | SimError::Config(_)
                | SimError::Telemetry { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error variant: {other}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Crash-safe supervision: checkpoint/resume, journal damage, quarantine
// ---------------------------------------------------------------------------

/// The tentpole's acceptance shape: a supervised run killed after day 1
/// and resumed from its journal finishes with *exactly* the state a never-
/// killed run reaches — belief, per-slot decisions, fixes, and the health
/// ledger are all bit-identical.
#[test]
fn killed_and_resumed_run_matches_uninterrupted_run() {
    let mut scenario = PaperScenario::small(8, 47);
    scenario.training_days = 4;
    let mut plan = FaultPlan::none(17);
    plan.drop_rate = 0.05;
    let detector = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
    let cfg = config(Some(detector), 2, Some(plan));

    let fresh_path = journal_path("fresh");
    let fresh = run_long_term_supervised(&scenario, &cfg, 7, &fresh_path).unwrap();

    // "Kill" after one completed day: step once, then drop the run on the
    // floor. The journal holds the header plus exactly one day record.
    let killed_path = journal_path("killed");
    {
        let mut run = SupervisedRun::new(&scenario, &cfg, 7, &killed_path).unwrap();
        run.step_day().unwrap();
        assert_eq!(run.completed_days(), 1);
        assert!(!run.is_finished());
    }
    let resumed_run = SupervisedRun::new(&scenario, &cfg, 7, &killed_path).unwrap();
    assert_eq!(resumed_run.completed_days(), 1, "day 0 replays from the journal");
    let resumed = resumed_run.run().unwrap();

    assert_eq!(resumed.true_buckets, fresh.true_buckets);
    assert_eq!(resumed.observed_buckets, fresh.observed_buckets);
    assert_eq!(resumed.realized_demand, fresh.realized_demand);
    assert_eq!(resumed.fixes_at, fresh.fixes_at);
    assert_eq!(resumed.final_belief, fresh.final_belief);
    assert_eq!(resumed.health, fresh.health);
    assert_eq!(resumed.day_health, fresh.day_health);
    assert_eq!(resumed.quarantine_events, fresh.quarantine_events);
    assert_eq!(resumed.quarantine, fresh.quarantine);
    assert_eq!(resumed.labor.fixes(), fresh.labor.fixes());
    assert_eq!(resumed.par, fresh.par);

    let _ = std::fs::remove_file(&fresh_path);
    let _ = std::fs::remove_file(&killed_path);
}

/// Journal damage, end to end through the supervised runner: a torn final
/// record is dropped and that day re-runs (bit-identically), while a
/// corrupted interior record is a typed error — never a panic, never a
/// silent resume from lost history.
#[test]
fn damaged_journals_recover_or_fail_typed() {
    let mut scenario = PaperScenario::small(8, 47);
    scenario.training_days = 4;
    let cfg = config(None, 2, None);
    let path = journal_path("damage");

    let fresh = run_long_term_supervised(&scenario, &cfg, 11, &path).unwrap();
    let intact = std::fs::read_to_string(&path).unwrap();
    assert_eq!(intact.lines().count(), 3, "header + two day records");

    // Tear the final record mid-line, as a kill mid-write would.
    std::fs::write(&path, &intact[..intact.len() - 25]).unwrap();
    let resumed_run = SupervisedRun::new(&scenario, &cfg, 11, &path).unwrap();
    assert_eq!(
        resumed_run.completed_days(),
        1,
        "torn day 1 is dropped; resume re-runs it"
    );
    let resumed = resumed_run.run().unwrap();
    assert_eq!(resumed.realized_demand, fresh.realized_demand);
    assert_eq!(resumed.true_buckets, fresh.true_buckets);
    assert_eq!(resumed.health, fresh.health);

    // Corrupt an *interior* record (the first day): typed error, no resume.
    let intact = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = intact.lines().collect();
    let vandalized = lines[1].replace("true_buckets", "drue_buckets");
    let content = format!("{}\n{}\n{}\n", lines[0], vandalized, lines[2]);
    std::fs::write(&path, content).unwrap();
    match SupervisedRun::new(&scenario, &cfg, 11, &path) {
        Err(SimError::Journal(JournalError::Corrupt { line, .. })) => assert_eq!(line, 2),
        Err(other) => panic!("expected JournalError::Corrupt, got {other}"),
        Ok(_) => panic!("expected JournalError::Corrupt, got a resumed run"),
    }

    let _ = std::fs::remove_file(&path);
}

/// The quarantine circuit breaker, end to end: a scripted two-day outage
/// on two meters trips their breakers (surfacing them to the POMDP as
/// suspects), the exclusion lifts into half-open probation once the
/// breaker has cooled, and clean telemetry closes it again — with every
/// transition in both the event log and the per-day health timeline.
#[test]
fn quarantine_trips_probes_and_recovers() {
    let mut scenario = PaperScenario::small(6, 43);
    scenario.training_days = 4;
    let mut plan = FaultPlan::none(11);
    // Meters 1 and 2 go dark for absolute days 4 and 5 (detection days
    // 0 and 1), then come back.
    plan.outage = Some(MeterOutage {
        first_meter: 1,
        meters: 2,
        from_day: 4,
        until_day: 6,
    });
    let detector = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
    let mut cfg = config(Some(detector), 4, Some(plan));
    cfg.quarantine = QuarantineConfig {
        trip_after: 2,
        probation_after: 1,
        close_after: 1,
        ..QuarantineConfig::default()
    };
    let path = journal_path("quarantine");
    let result = run_long_term_supervised(&scenario, &cfg, 5, &path).unwrap();

    let transitions: Vec<(usize, usize, QuarantineTransition)> = result
        .quarantine_events
        .iter()
        .map(|e| (e.day, e.meter, e.transition))
        .collect();
    assert_eq!(
        transitions,
        vec![
            (5, 1, QuarantineTransition::Tripped),
            (5, 2, QuarantineTransition::Tripped),
            (6, 1, QuarantineTransition::Probation),
            (6, 2, QuarantineTransition::Probation),
            (7, 1, QuarantineTransition::Recovered),
            (7, 2, QuarantineTransition::Recovered),
        ]
    );
    assert_eq!(result.health.quarantine_trips, 2);
    assert_eq!(result.health.quarantine_recoveries, 2);

    // The per-day timeline localizes the transitions.
    assert_eq!(result.day_health[1].quarantine_trips, 2);
    assert_eq!(result.day_health[1].meters_quarantined, 2);
    assert_eq!(result.day_health[2].meters_quarantined, 0, "half-open probes are included");
    assert_eq!(result.day_health[3].quarantine_recoveries, 2);

    // While the breakers are open (detection day 2), the POMDP observation
    // can never report less compromise than the quarantine census: 2 of 6
    // meters suspect → bucket ≥ 2.
    assert!(result.observed_buckets[48..72].iter().all(|&o| o >= 2));

    // Clean telemetry closed every breaker by the end of the run.
    let quarantine = result.quarantine.expect("fault plan arms quarantine");
    assert_eq!(quarantine.open_count(), 0);

    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Journal roundtrip: whatever transcript a day produces, writing it
    /// through the journal and loading it back is the identity.
    #[test]
    fn journal_day_records_roundtrip(
        day_count in 1usize..4,
        len in 0usize..48,
        bucket_base in 0usize..6,
        demand_scale in -1e6f64..1e6,
        has_belief in true,
        belief_len in 1usize..6,
        compromised in proptest::collection::vec(0usize..32, 4),
        slot in 0usize..48,
        repaired in 0usize..10,
    ) {
        let buckets: Vec<usize> = (0..len).map(|i| (bucket_base + i) % 6).collect();
        let demand: Vec<f64> = (0..len).map(|i| demand_scale / (i + 1) as f64).collect();
        let belief: Option<Vec<f64>> =
            has_belief.then(|| (0..belief_len).map(|i| 1.0 / (i + 1) as f64).collect());
        use netmeter_sentinel::sim::journal::{
            DayRecord, FixRecord, HistoryRow, JournalHeader, RunJournal, JOURNAL_VERSION,
        };
        use netmeter_sentinel::types::{DayHealth, RunHealth};

        let path = journal_path("proptest");
        let header = JournalHeader {
            version: JOURNAL_VERSION,
            seed: 9,
            detection_days: day_count,
            fleet: 32,
            scenario_fingerprint: 1,
            config_fingerprint: 2,
        };
        let mut journal = RunJournal::create(&path, &header).unwrap();
        let mut records = Vec::new();
        for day in 0..day_count {
            let record = DayRecord {
                day,
                true_buckets: buckets.clone(),
                observed_buckets: buckets.clone(),
                realized_demand: demand.clone(),
                fixes: vec![FixRecord { slot, repaired }],
                history_rows: demand
                    .iter()
                    .map(|&d| HistoryRow { price: d / 2.0, generation: d / 3.0, demand: d })
                    .collect(),
                compromised: compromised.clone(),
                belief: belief.clone(),
                health: RunHealth::new(),
                day_health: DayHealth { day, ..DayHealth::default() },
                quarantine: None,
                events: Vec::new(),
            };
            journal.append_day(&record).unwrap();
            records.push(record);
        }

        let loaded = RunJournal::load(&path).unwrap();
        prop_assert_eq!(loaded.header.as_ref(), Some(&header));
        prop_assert!(!loaded.dropped_tail);
        prop_assert_eq!(loaded.days, records);
        let _ = std::fs::remove_file(&path);
    }
}
