//! Cross-seed/cross-price invariants of the game solver: quantities that
//! must hold no matter what the stochastic optimizers do.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use netmeter_sentinel::pricing::{NetMeteringTariff, PriceSignal};
use netmeter_sentinel::sim::PaperScenario;
use netmeter_sentinel::solver::{
    nash_gap, GameConfig, GameEngine, Parallelism, PriceAssignment, ResponseConfig,
};
use netmeter_sentinel::types::TimeSeries;

fn community(seed: u64) -> netmeter_sentinel::smarthome::Community {
    let scenario = PaperScenario::small(10, seed);
    let generator = scenario.generator();
    let weather = scenario.weather_factors(1);
    generator.community_for_day(0, weather[0])
}

fn price_variants(
    horizon: netmeter_sentinel::types::Horizon,
) -> Vec<(&'static str, PriceSignal)> {
    vec![
        ("flat", PriceSignal::flat(horizon, 0.1).unwrap()),
        (
            "time-of-use",
            PriceSignal::time_of_use(horizon, 0.05, 0.25).unwrap(),
        ),
        (
            "sawtooth",
            PriceSignal::new(TimeSeries::from_fn(horizon, |h| {
                0.05 + 0.02 * (h % 5) as f64
            }))
            .unwrap(),
        ),
    ]
}

/// Total consumption is constraint-pinned: base load plus task energies,
/// regardless of the price shape, the seed, or the solver's randomness.
#[test]
fn consumption_is_conserved_across_prices_and_seeds() {
    for seed in [3u64, 17] {
        let community = community(seed);
        let expected: f64 = community
            .iter()
            .map(|c| c.base_load().total() + c.total_task_energy().value())
            .sum();
        for (label, prices) in price_variants(community.horizon()) {
            for solver_seed in [1u64, 2] {
                let engine = GameEngine::new(
                    &community,
                    &prices,
                    NetMeteringTariff::default(),
                    GameConfig::fast(),
                )
                .unwrap();
                let mut rng = ChaCha8Rng::seed_from_u64(solver_seed);
                let outcome = engine.solve(&mut rng).unwrap();
                let total = outcome.schedule.load().total().value();
                assert!(
                    (total - expected).abs() < 1e-6,
                    "seed {seed}/{solver_seed} {label}: consumed {total} vs tasks {expected}"
                );
            }
        }
    }
}

/// Energy balance per customer: trading = load − generation + battery delta,
/// summed over the horizon.
#[test]
fn per_customer_energy_balance_holds() {
    let community = community(5);
    let prices = PriceSignal::time_of_use(community.horizon(), 0.05, 0.25).unwrap();
    let engine = GameEngine::new(
        &community,
        &prices,
        NetMeteringTariff::default(),
        GameConfig::fast(),
    )
    .unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let outcome = engine.solve(&mut rng).unwrap();
    for (customer, plan) in community
        .iter()
        .zip(outcome.schedule.customer_schedules())
    {
        let traded: f64 = plan.trading().iter().sum();
        let load = plan.load().total().value();
        let generated: f64 = (0..24).map(|h| customer.generation(h).value()).sum();
        let battery_delta =
            plan.battery().last().unwrap().value() - plan.battery().first().unwrap().value();
        assert!(
            (traded - (load - generated + battery_delta)).abs() < 1e-6,
            "{}: traded {traded}, load {load}, generated {generated}, Δb {battery_delta}",
            customer.id()
        );
    }
}

/// The Jacobi (parallel) and Gauss–Seidel (sequential) engines conserve the
/// same totals and land at comparable equilibria.
#[test]
fn parallel_and_sequential_engines_agree_on_conserved_quantities() {
    let community = community(9);
    let prices = PriceSignal::time_of_use(community.horizon(), 0.05, 0.25).unwrap();
    let run = |threads: usize| {
        let mut config = GameConfig::fast();
        config.parallelism = Parallelism::new(threads);
        let engine =
            GameEngine::new(&community, &prices, NetMeteringTariff::default(), config).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        engine.solve(&mut rng).unwrap()
    };
    let sequential = run(1);
    let parallel = run(4);
    assert!(
        (sequential.schedule.load().total().value() - parallel.schedule.load().total().value())
            .abs()
            < 1e-6
    );
    // Both should be near-equilibria *relative to the money at stake*: with
    // quadratic community pricing a customer's bill runs to tens of dollars,
    // so the gap is judged against the total billed amount.
    let total_cost = {
        let engine = netmeter_sentinel::pricing::BillingEngine::new(
            prices.clone(),
            NetMeteringTariff::default(),
        );
        engine
            .total_revenue(&sequential.schedule)
            .unwrap()
            .value()
            .abs()
            .max(1.0)
    };
    for (label, outcome) in [("sequential", &sequential), ("parallel", &parallel)] {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let gap = nash_gap(
            &community,
            &outcome.schedule,
            PriceAssignment::Uniform(&prices),
            NetMeteringTariff::default(),
            &ResponseConfig::fast(),
            &mut rng,
        )
        .unwrap();
        let relative = gap.max_improvement.value() / total_cost;
        assert!(
            relative < 0.05,
            "{label}: max improvement {} is {:.1}% of the {total_cost:.0} community bill",
            gap.max_improvement,
            relative * 100.0
        );
    }
}
