//! End-to-end tests of the scheduling game and the utility-in-the-loop
//! market: community generation → price design → game equilibrium.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use netmeter_sentinel::pricing::{BillingEngine, PriceSignal};
use netmeter_sentinel::sim::{Market, PaperScenario};
use netmeter_sentinel::solver::{GameConfig, GameEngine};

fn scenario() -> PaperScenario {
    PaperScenario::small(12, 91)
}

#[test]
fn market_clears_and_prices_follow_demand() {
    let s = scenario();
    let market = Market::new(&s).unwrap();
    let generator = s.generator();
    let weather = s.weather_factors(1);
    let community = generator.community_for_day(0, weather[0]);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let outcome = market.clear_day(&community, 2, &mut rng).unwrap();

    // The price is above base wherever the community imports.
    let base = s.utility.base_price;
    for h in 0..24 {
        if outcome.response.grid_demand[h] > 0.5 {
            assert!(
                outcome.price.at(h).value() > base,
                "slot {h} imports but is priced at base"
            );
        }
    }
    // Evening demand peak implies an evening price peak.
    let evening_price: f64 = (17..21).map(|h| outcome.price.at(h).value()).sum();
    let night_price: f64 = (1..5).map(|h| outcome.price.at(h).value()).sum();
    assert!(evening_price > night_price);
}

#[test]
fn equilibrium_conserves_task_energy() {
    let s = scenario();
    let market = Market::new(&s).unwrap();
    let generator = s.generator();
    let weather = s.weather_factors(1);
    let community = generator.community_for_day(0, weather[0]);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let outcome = market.clear_day(&community, 2, &mut rng).unwrap();

    // Total consumption equals base load plus all task energies.
    let base_total: f64 = community.iter().map(|c| c.base_load().total()).sum();
    let task_total = community.total_task_energy().value();
    let load_total = outcome.response.load().total().value();
    assert!(
        (load_total - base_total - task_total).abs() < 1e-6,
        "load {load_total} vs base {base_total} + tasks {task_total}"
    );
}

#[test]
fn every_customer_schedule_is_feasible_at_equilibrium() {
    let s = scenario();
    let market = Market::new(&s).unwrap();
    let generator = s.generator();
    let weather = s.weather_factors(1);
    let community = generator.community_for_day(0, weather[0]);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let outcome = market.clear_day(&community, 2, &mut rng).unwrap();

    for (customer, plan) in community
        .iter()
        .zip(outcome.response.schedule.customer_schedules())
    {
        assert_eq!(customer.id(), plan.customer());
        // Battery trajectory feasible.
        customer
            .battery()
            .validate_trajectory(plan.battery())
            .unwrap();
        // Load never below the inflexible base.
        for h in 0..24 {
            assert!(
                plan.load().at(h).value() >= customer.base_load()[h] - 1e-9,
                "{} slot {h} below base load",
                customer.id()
            );
        }
    }
}

#[test]
fn cheaper_prices_attract_load_in_equilibrium() {
    let s = scenario();
    let generator = s.generator();
    let weather = s.weather_factors(1);
    let community = generator.community_for_day(0, weather[0]);

    // Hand-crafted price: cheap early morning, expensive rest of day.
    let price = PriceSignal::new(nms_types_series(
        &community,
        |h| {
            if h < 6 {
                0.02
            } else {
                0.2
            }
        },
    ))
    .unwrap();
    let engine = GameEngine::new(&community, &price, s.tariff, GameConfig::fast()).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let outcome = engine.solve(&mut rng).unwrap();
    let schedule = outcome.schedule;

    // Flexible "anytime" load should concentrate before 06:00 (windows
    // permitting); at minimum, early-morning demand should exceed the
    // base-load-only level.
    let base_early: f64 = community
        .iter()
        .map(|c| (0..6).map(|h| c.base_load()[h]).sum::<f64>())
        .sum();
    let early_demand: f64 = (0..6).map(|h| schedule.load().at(h).value()).sum();
    assert!(
        early_demand > base_early + 1.0,
        "early {early_demand} vs base {base_early}"
    );
}

#[test]
fn billing_consistent_with_equilibrium() {
    let s = scenario();
    let market = Market::new(&s).unwrap();
    let generator = s.generator();
    let weather = s.weather_factors(1);
    let community = generator.community_for_day(0, weather[0]);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let outcome = market.clear_day(&community, 2, &mut rng).unwrap();
    let engine = BillingEngine::new(outcome.price.clone(), s.tariff);
    let bills = engine.bill(&outcome.response.schedule).unwrap();
    assert_eq!(bills.len(), community.len());
    // Someone pays something; credits only for trading-capable homes.
    assert!(bills.iter().any(|b| b.purchases.value() > 0.0));
    for (bill, customer) in bills.iter().zip(community.iter()) {
        if bill.credits.value() > 0.0 {
            assert!(
                customer.can_trade(),
                "{} credited but cannot trade",
                customer.id()
            );
        }
    }
}

/// Helper: builds a `TimeSeries` on the community's horizon.
fn nms_types_series(
    community: &netmeter_sentinel::smarthome::Community,
    f: impl FnMut(usize) -> f64,
) -> netmeter_sentinel::types::TimeSeries<f64> {
    netmeter_sentinel::types::TimeSeries::from_fn(community.horizon(), f)
}
