//! Bit-identity of the workspace + hoisted-table solver kernels against the
//! fresh-allocation closure path (DESIGN.md §11).
//!
//! Three guarantees are pinned byte-for-byte:
//!
//! 1. A [`ResponseWorkspace`] reused across customers with differing
//!    appliance shapes yields exactly what fresh allocation yields (no
//!    stale-buffer leakage).
//! 2. The hoisted per-slot cost table produces the same best responses as
//!    the per-cell [`CostModel::slot_cost`] closure.
//! 3. Full Gauss–Seidel game rounds through [`GameEngine`] (hoisted +
//!    workspace path) match a replica driven by the closure reference path.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use netmeter_sentinel::obs::NoopRecorder;
use netmeter_sentinel::pricing::{CostModel, NetMeteringTariff, PriceSignal};
use netmeter_sentinel::sim::PaperScenario;
use netmeter_sentinel::smarthome::{Community, CustomerSchedule};
use netmeter_sentinel::solver::{
    best_response_in, best_response_recorded, best_response_reference, GameConfig, GameEngine,
    ResponseConfig, ResponseWorkspace,
};
use netmeter_sentinel::types::TimeSeries;

fn community(n: usize, seed: u64) -> Community {
    let scenario = PaperScenario::small(n, seed);
    let generator = scenario.generator();
    let weather = scenario.weather_factors(1);
    generator.community_for_day(0, weather[0])
}

/// Byte-level equality of everything a response determines.
fn assert_bit_identical(label: &str, a: &CustomerSchedule, b: &CustomerSchedule) {
    assert_eq!(
        a.appliance_schedules().len(),
        b.appliance_schedules().len(),
        "{label}: appliance count"
    );
    for (index, (sa, sb)) in a
        .appliance_schedules()
        .iter()
        .zip(b.appliance_schedules())
        .enumerate()
    {
        for (h, (x, y)) in sa.energy().iter().zip(sb.energy().iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: appliance {index} slot {h}: {x} vs {y}"
            );
        }
    }
    for (h, (x, y)) in a.battery().iter().zip(b.battery()).enumerate() {
        assert_eq!(
            x.value().to_bits(),
            y.value().to_bits(),
            "{label}: battery level {h}: {x} vs {y}"
        );
    }
    for (h, (x, y)) in a.trading().iter().zip(b.trading().iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: trading slot {h}");
    }
}

/// The hoisted-table path must match the per-cell billing closure exactly,
/// warm starts included.
#[test]
fn hoisted_table_matches_closure_reference() {
    let community = community(6, 11);
    let horizon = community.horizon();
    let prices = PriceSignal::time_of_use(horizon, 0.05, 0.25).unwrap();
    let tariff = NetMeteringTariff::default();
    let others = TimeSeries::from_fn(horizon, |h| 8.0 + 3.0 * (h as f64 / 5.0).sin());
    let config = ResponseConfig::default();
    let mut warm: Vec<Option<CustomerSchedule>> = vec![None; community.len()];
    // Two passes: cold responses, then warm-started ones.
    for round in 0..2_u64 {
        for (index, customer) in community.iter().enumerate() {
            let cost_model = CostModel::new(&prices, tariff);
            let seed = 40 + round * 100 + index as u64;
            let hoisted = best_response_recorded(
                customer,
                &others,
                cost_model,
                &config,
                warm[index].as_ref(),
                &mut ChaCha8Rng::seed_from_u64(seed),
                &NoopRecorder,
            )
            .unwrap();
            let reference = best_response_reference(
                customer,
                &others,
                cost_model,
                &config,
                warm[index].as_ref(),
                &mut ChaCha8Rng::seed_from_u64(seed),
                &NoopRecorder,
            )
            .unwrap();
            assert_bit_identical(&format!("round {round} customer {index}"), &hoisted, &reference);
            warm[index] = Some(hoisted);
        }
    }
}

/// Full Gauss–Seidel rounds through the engine (workspace + hoisted table)
/// against a replica of the same iteration driven by the closure reference
/// path with fresh allocations per response.
#[test]
fn game_rounds_bit_identical_to_closure_reference() {
    let community = community(5, 7);
    let prices = PriceSignal::time_of_use(community.horizon(), 0.05, 0.25).unwrap();
    let tariff = NetMeteringTariff::default();
    let mut config = GameConfig::fast();
    config.max_rounds = 3;
    config.tolerance = 1e-9;

    let engine = GameEngine::new(&community, &prices, tariff, config).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let outcome = engine.solve(&mut rng).unwrap();

    // Replica of the sequential loop in GameEngine::solve_recorded, using
    // the reference path.
    let horizon = community.horizon();
    let n = community.len();
    let mut schedules: Vec<Option<CustomerSchedule>> = vec![None; n];
    let mut tradings: Vec<TimeSeries<f64>> = vec![TimeSeries::filled(horizon, 0.0); n];
    let mut total = TimeSeries::filled(horizon, 0.0);
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    for _ in 0..config.max_rounds {
        let seeds: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        let mut round_delta = 0.0_f64;
        for (index, customer) in community.iter().enumerate() {
            let others = total.sub(&tradings[index]).unwrap();
            let mut child = ChaCha8Rng::seed_from_u64(seeds[index]);
            let response = best_response_reference(
                customer,
                &others,
                CostModel::new(&prices, tariff),
                &config.response,
                schedules[index].as_ref(),
                &mut child,
                &NoopRecorder,
            )
            .unwrap();
            let delta = response
                .trading()
                .iter()
                .zip(tradings[index].iter())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max);
            round_delta = round_delta.max(delta);
            total = others.add(response.trading()).unwrap();
            tradings[index] = response.trading().clone();
            schedules[index] = Some(response);
        }
        // The engine rebuilds `total` from the lanes at every round
        // boundary (so limit-cycle rounds repeat bitwise); the replica must
        // re-accumulate in the same customer order to stay bit-identical.
        total = TimeSeries::filled(horizon, 0.0);
        for trading in &tradings {
            total = total.add(trading).unwrap();
        }
        if round_delta <= config.tolerance {
            break;
        }
    }

    for (index, (a, b)) in outcome
        .schedule
        .customer_schedules()
        .iter()
        .zip(schedules.iter())
        .enumerate()
    {
        assert_bit_identical(
            &format!("customer {index}"),
            a,
            b.as_ref().expect("replica scheduled every customer"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// One workspace reused across every customer of a community (varying
    /// appliance counts, windows, batteries) and across warm-started rounds
    /// must match fresh per-solve allocation bit-for-bit.
    #[test]
    fn prop_reused_workspace_matches_fresh_allocation(
        seed in 0_u64..500,
        community_seed in 0_u64..100,
        others_scale in 0.0_f64..20.0,
    ) {
        let community = community(4, community_seed);
        let horizon = community.horizon();
        let prices = PriceSignal::time_of_use(horizon, 0.05, 0.25).unwrap();
        let tariff = NetMeteringTariff::default();
        let others = TimeSeries::from_fn(horizon, |h| {
            others_scale * (1.0 + (h as f64 / 7.0).sin())
        });
        let config = ResponseConfig::fast();
        let mut ws = ResponseWorkspace::new();
        let mut warm: Vec<Option<CustomerSchedule>> = vec![None; community.len()];
        for round in 0..2_u64 {
            for (index, customer) in community.iter().enumerate() {
                let cost_model = CostModel::new(&prices, tariff);
                let response_seed = seed ^ (round * 31 + index as u64);
                let reused = best_response_in(
                    customer,
                    &others,
                    cost_model,
                    &config,
                    warm[index].as_ref(),
                    &mut ChaCha8Rng::seed_from_u64(response_seed),
                    &NoopRecorder,
                    &mut ws,
                )
                .unwrap();
                let fresh = best_response_recorded(
                    customer,
                    &others,
                    cost_model,
                    &config,
                    warm[index].as_ref(),
                    &mut ChaCha8Rng::seed_from_u64(response_seed),
                    &NoopRecorder,
                )
                .unwrap();
                assert_bit_identical(
                    &format!("round {round} customer {index}"),
                    &reused,
                    &fresh,
                );
                warm[index] = Some(reused);
            }
        }
    }
}
