//! Cross-checks between the three POMDP solvers (QMDP, PBVI, fixed-grid
//! value iteration) on detector-shaped models: they should agree where the
//! problem is easy and bracket each other's value estimates elsewhere.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use netmeter_sentinel::pomdp::{
    rollout, Belief, GridConfig, GridPolicy, PbviConfig, PbviPolicy, Policy, Pomdp, QmdpPolicy,
};

/// A detector-flavored POMDP: buckets of hacked meters, monitor vs fix.
fn detector_pomdp(buckets: usize, drift: f64, accuracy: f64, labor: f64) -> Pomdp {
    let transition_monitor: Vec<Vec<f64>> = (0..buckets)
        .map(|s| {
            let mut row = vec![0.0; buckets];
            if s + 1 < buckets {
                row[s] = 1.0 - drift;
                row[s + 1] = drift;
            } else {
                row[s] = 1.0;
            }
            row
        })
        .collect();
    let transition_fix: Vec<Vec<f64>> = (0..buckets)
        .map(|_| {
            let mut row = vec![0.0; buckets];
            row[0] = 1.0;
            row
        })
        .collect();
    let observation: Vec<Vec<f64>> = (0..buckets)
        .map(|s| {
            let off = (1.0 - accuracy) / (buckets - 1) as f64;
            let mut row = vec![off; buckets];
            row[s] = accuracy;
            row
        })
        .collect();
    Pomdp::builder(buckets, 2, buckets)
        .transition(0, transition_monitor)
        .transition(1, transition_fix)
        .observation(0, observation.clone())
        .observation(1, observation)
        .reward_fn(move |a, s, _| -3.0 * s as f64 - if a == 1 { labor } else { 0.0 })
        .discount(0.9)
        .build()
        .expect("valid detector POMDP")
}

#[test]
fn all_solvers_agree_on_corner_beliefs() {
    let pomdp = detector_pomdp(4, 0.25, 0.9, 4.0);
    let qmdp = QmdpPolicy::solve(&pomdp, 1e-10, 5000);
    let pbvi = PbviPolicy::solve(&pomdp, &PbviConfig::default());
    let grid = GridPolicy::solve(&pomdp, &GridConfig::default());

    let clean = Belief::point(4, 0);
    let hacked = Belief::point(4, 3);
    for (name, action_clean, action_hacked) in [
        ("qmdp", qmdp.action(&clean), qmdp.action(&hacked)),
        ("pbvi", pbvi.action(&clean), pbvi.action(&hacked)),
        ("grid", grid.action(&clean), grid.action(&hacked)),
    ] {
        assert_eq!(action_clean, 0, "{name} should monitor a clean fleet");
        assert_eq!(action_hacked, 1, "{name} should fix a saturated fleet");
    }
}

#[test]
fn value_estimates_bracket_sensibly() {
    let pomdp = detector_pomdp(4, 0.3, 0.85, 5.0);
    let qmdp = QmdpPolicy::solve(&pomdp, 1e-10, 5000);
    let pbvi = PbviPolicy::solve(
        &pomdp,
        &PbviConfig {
            iterations: 60,
            belief_points: 96,
            ..PbviConfig::default()
        },
    );
    let grid = GridPolicy::solve(
        &pomdp,
        &GridConfig {
            resolution: 6,
            ..GridConfig::default()
        },
    );
    for weights in [vec![1.0; 4], vec![4.0, 2.0, 1.0, 0.5], vec![0.1, 0.1, 1.0, 2.0]] {
        let belief = Belief::from_weights(weights);
        let v_pbvi = pbvi.value(&belief); // lower bound on V*
        let v_qmdp = qmdp.value(&belief); // upper bound on V*
        let v_grid = grid.value(&belief); // upper bound on V*
        assert!(
            v_pbvi <= v_qmdp + 1e-6,
            "pbvi {v_pbvi} should not exceed qmdp {v_qmdp}"
        );
        assert!(
            v_pbvi <= v_grid + 0.5,
            "pbvi {v_pbvi} should not sit above grid {v_grid}"
        );
        // All three estimate the same quantity: they must be within a
        // plausible band of each other for this small model.
        assert!((v_qmdp - v_grid).abs() < 10.0);
    }
}

#[test]
fn rollout_returns_are_comparable_across_solvers() {
    let pomdp = detector_pomdp(4, 0.25, 0.9, 4.0);
    let qmdp = QmdpPolicy::solve(&pomdp, 1e-10, 5000);
    let pbvi = PbviPolicy::solve(&pomdp, &PbviConfig::default());
    let grid = GridPolicy::solve(&pomdp, &GridConfig::default());

    let average = |policy: &dyn Policy| -> f64 {
        let mut total = 0.0;
        for seed in 0..30u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            total += rollout(&pomdp, policy, 0, 48, &mut rng).discounted_return;
        }
        total / 30.0
    };
    let r_qmdp = average(&qmdp);
    let r_pbvi = average(&pbvi);
    let r_grid = average(&grid);
    // No solver should be drastically worse than the best on this easy
    // model (same observation stream, same dynamics).
    let best = r_qmdp.max(r_pbvi).max(r_grid);
    for (name, r) in [("qmdp", r_qmdp), ("pbvi", r_pbvi), ("grid", r_grid)] {
        assert!(
            r > best - 8.0,
            "{name} return {r} far below best {best} (qmdp {r_qmdp}, pbvi {r_pbvi}, grid {r_grid})"
        );
    }
}

#[test]
fn higher_labor_cost_makes_every_solver_lazier() {
    // With labor far above damage, fixing is never worth it at low beliefs.
    let cheap = detector_pomdp(4, 0.2, 0.9, 1.0);
    let pricey = detector_pomdp(4, 0.2, 0.9, 60.0);
    let belief = Belief::from_weights(vec![1.0, 1.0, 0.5, 0.25]);

    let actions = |pomdp: &Pomdp| -> [usize; 3] {
        [
            QmdpPolicy::solve(pomdp, 1e-10, 5000).action(&belief),
            PbviPolicy::solve(pomdp, &PbviConfig::default()).action(&belief),
            GridPolicy::solve(pomdp, &GridConfig::default()).action(&belief),
        ]
    };
    // Cheap labor: everyone fixes early. Exorbitant labor: everyone keeps
    // monitoring.
    assert_eq!(actions(&cheap), [1, 1, 1]);
    assert_eq!(actions(&pricey), [0, 0, 0]);
}
