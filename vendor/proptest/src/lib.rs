//! Offline vendored subset of `proptest`.
//!
//! Supports the slice of the proptest API this workspace's property tests
//! use: the `proptest!` macro (with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! `prop_assert!`, numeric range strategies, and
//! `collection::vec(strategy, fixed_len)`. Inputs are drawn from a
//! deterministic per-test RNG (seeded from the test name and case index),
//! so failures reproduce exactly on re-run. Unlike upstream there is no
//! shrinking: a failing case reports its case index and panics.

#![forbid(unsafe_code)]

use std::error::Error;
use std::fmt;

/// How many random cases each property runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases to draw.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property assertion, carried out of the test closure.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Records a failure with its source location.
    pub fn fail(message: &str, file: &str, line: u32) -> Self {
        Self {
            message: format!("{message} at {file}:{line}"),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for TestCaseError {}

/// Deterministic splitmix64 generator driving input sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test name and case index so each case is distinct
    /// yet stable across runs.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ u64::from(case).wrapping_mul(0x2545_f491_4f6c_dd1d);
        for b in name.bytes() {
            state = state.wrapping_mul(0x100_0000_01b3) ^ u64::from(b);
        }
        Self { state }
    }

    /// Returns the next random word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Generators of random test inputs.
pub trait Strategy {
    /// The produced input type.
    type Value;

    /// Draws one input.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<char> {
    type Value = char;

    fn sample(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "empty strategy range");
        loop {
            let code = lo + (rng.next_u64() % u64::from(hi - lo)) as u32;
            if let Some(c) = char::from_u32(code) {
                return c;
            }
        }
    }
}

impl Strategy for bool {
    type Value = bool;

    /// `true`/`false` with equal probability (stand-in for `any::<bool>()`;
    /// write the strategy position as `true`).
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A fixed-length `Vec` strategy.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// `len` independent draws from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Drives a property: draws `config.cases` inputs and runs the body on
/// each, panicking with the case index on the first failure.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for index in 0..config.cases {
        let mut rng = TestRng::for_case(name, index);
        if let Err(err) = case(&mut rng) {
            panic!("proptest `{name}` failed on case {index}/{}: {err}", config.cases);
        }
    }
}

/// Declares property tests. Grammar (a subset of upstream):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]  // optional
///     #[test]
///     fn prop_name(x in 0.0_f64..1.0, v in proptest::collection::vec(0_u64..9, 4)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::run_proptest(&config, stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the whole process) so the runner can report which case broke.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
                file!(),
                line!(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                &format!($($fmt)+),
                file!(),
                line!(),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (left, right) => {
                if left != right {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(
                        &format!("assertion failed: {left:?} != {right:?}"),
                        file!(),
                        line!(),
                    ));
                }
            }
        }
    };
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let a = crate::TestRng::for_case("t", 3).next_u64();
        let b = crate::TestRng::for_case("t", 3).next_u64();
        let c = crate::TestRng::for_case("t", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 1.5_f64..2.5, n in 3_usize..7) {
            prop_assert!((1.5..2.5).contains(&x));
            prop_assert!((3..7).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn vec_strategy_has_fixed_length(
            v in crate::collection::vec(-1.0_f64..1.0, 24),
        ) {
            prop_assert_eq!(v.len(), 24);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn second_property_in_same_block(seed in 0_u64..10) {
            prop_assert!(seed < 10);
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_panics_with_case_index() {
        run_with_failure();
    }

    fn run_with_failure() {
        let config = ProptestConfig::with_cases(4);
        crate::run_proptest(&config, "always_fails", |_rng| {
            prop_assert!(false);
            #[allow(unreachable_code)]
            Ok(())
        });
    }
}
