//! Offline vendored subset of `criterion`.
//!
//! A plain wall-clock harness exposing the criterion API shape the
//! workspace's benches use — `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros. Instead of upstream's
//! statistical analysis it times `sample_size` samples after a short
//! warm-up and prints min/mean/max per-iteration times to stdout. Good
//! enough to compare orders of magnitude and to keep `cargo bench`
//! targets compiling and runnable offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;
const WARMUP_ITERS: usize = 3;

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark("", id, DEFAULT_SAMPLE_SIZE, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark routine.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.name, id, self.sample_size, &mut f);
        self
    }

    /// Ends the group (report lines were already printed per benchmark).
    pub fn finish(self) {}
}

/// How `iter_batched` amortizes setup cost; all variants behave the same
/// in this harness (setup always runs per iteration, untimed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per timed iteration.
    PerIteration,
}

/// Collects timed iterations for a single benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            let input = setup();
            black_box(routine(input));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(group: &str, id: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if bencher.samples.is_empty() {
        println!("{label:<48} no samples collected");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{label:<48} time: [{} {} {}]",
        format_duration(min),
        format_duration(mean),
        format_duration(max)
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Bundles benchmark functions into one named runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5).bench_function("noop", |b| {
            b.iter(|| 1 + 1);
        });
        group.finish();
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(4).bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
