//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access and an empty crates.io
//! cache, so the workspace vendors the thin slice of `rand` it actually
//! uses: [`RngCore`], [`Rng`] (with `gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng`], and [`seq::SliceRandom::shuffle`]. Algorithms follow
//! the published semantics (53-bit uniform floats, splitmix64 seed
//! expansion) but make no promise of producing the same streams as the
//! upstream crate — the workspace only relies on determinism under a
//! fixed seed, which this implementation guarantees.

#![forbid(unsafe_code)]

/// A source of random `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of upstream `rand`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 random bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($ty:ty),*) => {$(
        impl StandardSample for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

macro_rules! range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
            }
        }

        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferable type (uniform over its natural
    /// domain; floats land in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64` via splitmix64 expansion (matching the
    /// upstream convention).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (the subset of upstream `SliceRandom` in use).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn f64_samples_stay_in_unit_interval() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3.0..=5.0);
            assert!((3.0..=5.0).contains(&v));
            let n = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&n));
            let m = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&m));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = Counter(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
