//! Offline vendored `#[derive(Serialize, Deserialize)]`.
//!
//! The environment has no crates.io access, so this proc-macro is written
//! against `proc_macro` alone — no `syn`/`quote`. It token-walks the item
//! definition just far enough to recover the shape (name, generic
//! parameter names, field names, variant shapes) and emits impls of the
//! vendored `serde::Serialize` / `serde::Deserialize` traits by string
//! building. Field *types* never need to be parsed: the generated code
//! calls trait methods and lets inference resolve them.
//!
//! Supported input shapes (everything this workspace derives on):
//! - structs with named fields, tuple structs (newtype serialized as the
//!   inner value, wider tuples as a sequence), unit structs
//! - enums with unit, newtype, tuple, and struct variants, externally
//!   tagged like upstream serde's default representation
//! - type generics without defaults (e.g. `TimeSeries<T>`); each
//!   parameter gets the corresponding trait bound on the impl
//!
//! `#[serde(...)]` attributes are accepted; most are ignored. Three are
//! honoured: `#[serde(transparent)]` trivially (it appears on `f64`
//! newtypes whose default newtype representation is already transparent),
//! the per-field `#[serde(default)]`, which makes deserialization fall
//! back to `Default::default()` when the key is absent from the map, and
//! the per-field `#[serde(default = "path")]`, which falls back to calling
//! `path()` instead — the mechanisms that let configs grown after a
//! release still accept old serialized forms, including fields whose
//! historical value is not the type's `Default`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Missing-key fallback for one named field on deserialize.
enum FieldDefault {
    /// Bare `#[serde(default)]`: `Default::default()`.
    Trait,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

/// One named field: its identifier plus any `#[serde(default...)]`
/// missing-key fallback.
struct Field {
    name: String,
    default: Option<FieldDefault>,
}

/// How a struct or enum variant stores its data.
enum Fields {
    /// `{ a: A, b: B }` — the fields, in declaration order.
    Named(Vec<Field>),
    /// `(A, B)` — the arity.
    Tuple(usize),
    /// No payload.
    Unit,
}

/// One enum variant.
struct Variant {
    name: String,
    fields: Fields,
}

/// A parsed `struct` or `enum` item.
struct Item {
    name: String,
    /// Generic type parameter names, e.g. `["T"]`.
    generics: Vec<String>,
    shape: Shape,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other}"),
    };
    i += 1;

    let generics = parse_generics(&tokens, &mut i);

    let shape = match keyword.as_str() {
        "struct" => Shape::Struct(parse_struct_body(&tokens, &mut i)),
        "enum" => Shape::Enum(parse_enum_body(&tokens, &mut i)),
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Item {
        name,
        generics,
        shape,
    }
}

/// Advances past any `#[...]` outer attributes (doc comments included).
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    consume_attributes(tokens, i);
}

/// Advances past any `#[...]` outer attributes, reporting any
/// `#[serde(...)]` top-level `default` / `default = "path"` entry found.
fn consume_attributes(tokens: &[TokenTree], i: &mut usize) -> Option<FieldDefault> {
    let mut default = None;
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1; // '#'
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                if let Some(found) = attribute_serde_default(g.stream()) {
                    default = Some(found);
                }
                *i += 1;
            }
            other => panic!("serde_derive: malformed attribute near {other:?}"),
        }
    }
    default
}

/// Inspects the interior of one `#[...]` bracket group for
/// `serde(... default ...)` or `serde(... default = "path" ...)` at the
/// top nesting level of the parens.
fn attribute_serde_default(stream: TokenStream) -> Option<FieldDefault> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let is_serde = matches!(tokens.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
    if !is_serde {
        return None;
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return None;
    };
    if args.delimiter() != Delimiter::Parenthesis {
        return None;
    }
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    for (k, tok) in args.iter().enumerate() {
        if !matches!(tok, TokenTree::Ident(id) if id.to_string() == "default") {
            continue;
        }
        match args.get(k + 1) {
            // `default = "path"`: the literal token keeps its quotes.
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                let Some(TokenTree::Literal(lit)) = args.get(k + 2) else {
                    panic!("serde_derive: `default =` must be followed by a string literal");
                };
                let raw = lit.to_string();
                let path = raw
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .unwrap_or_else(|| {
                        panic!("serde_derive: `default = {raw}` is not a string literal")
                    });
                return Some(FieldDefault::Path(path.to_string()));
            }
            _ => return Some(FieldDefault::Trait),
        }
    }
    None
}

/// Advances past `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Parses `<A, B: Bound, ...>` if present, returning the parameter names.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    *i += 1;
    let mut params = Vec::new();
    let mut depth = 1usize;
    let mut expect_name = true;
    while depth > 0 {
        let tok = tokens
            .get(*i)
            .unwrap_or_else(|| panic!("serde_derive: unterminated generics on item"));
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_name = true,
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                // Lifetime parameter: consume the following ident too and
                // keep expecting a type parameter name after the comma.
                *i += 1;
                expect_name = false;
            }
            TokenTree::Ident(id) if expect_name => {
                let text = id.to_string();
                if text != "const" {
                    params.push(text);
                    expect_name = false;
                }
            }
            _ => {
                if expect_name && matches!(tok, TokenTree::Punct(p) if p.as_char() == ':') {
                    expect_name = false;
                }
                if matches!(tok, TokenTree::Punct(p) if p.as_char() == ':') {
                    expect_name = false;
                }
            }
        }
        *i += 1;
    }
    params
}

fn parse_struct_body(tokens: &[TokenTree], i: &mut usize) -> Fields {
    // Skip a `where` clause if one appears before the body.
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                return Fields::Named(parse_named_fields(g.stream()));
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                return Fields::Tuple(count_tuple_fields(g.stream()));
            }
            TokenTree::Punct(p) if p.as_char() == ';' => return Fields::Unit,
            _ => *i += 1,
        }
    }
    panic!("serde_derive: struct body not found");
}

fn parse_enum_body(tokens: &[TokenTree], i: &mut usize) -> Vec<Variant> {
    while *i < tokens.len() {
        if let TokenTree::Group(g) = &tokens[*i] {
            if g.delimiter() == Delimiter::Brace {
                return parse_variants(g.stream());
            }
        }
        *i += 1;
    }
    panic!("serde_derive: enum body not found");
}

/// Parses the interior of a named-field braced group into fields,
/// honouring per-field `#[serde(default)]` attributes.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = consume_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field { name, default });
        // Skip the separating comma if present.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    fields
}

/// Advances past one type, stopping at a top-level `,` (angle brackets are
/// depth-tracked; bracketed groups are single tokens and need no care).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

/// Counts fields in a tuple-struct/tuple-variant parenthesized group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        skip_type(&tokens, &mut i);
        count += 1;
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `impl<T: ::serde::Serialize>` / `impl` — the generic half of the header.
fn impl_generics(item: &Item, bound: &str) -> String {
    if item.generics.is_empty() {
        String::new()
    } else {
        let params: Vec<String> = item
            .generics
            .iter()
            .map(|p| format!("{p}: {bound}"))
            .collect();
        format!("<{}>", params.join(", "))
    }
}

/// `<T>` — the type half of the header.
fn type_generics(item: &Item) -> String {
    if item.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.generics.join(", "))
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_content(&self.{f}))",
                        f = f.name
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_content(&self.{k})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::Struct(Fields::Unit) => "::serde::Content::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(serialize_arm).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl{ig} ::serde::Serialize for {name}{tg} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}",
        ig = impl_generics(item, "::serde::Serialize"),
        tg = type_generics(item),
    )
}

fn serialize_arm(variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.fields {
        Fields::Unit => format!(
            "Self::{v} => ::serde::Content::Str(::std::string::String::from(\"{v}\")),"
        ),
        Fields::Tuple(1) => format!(
            "Self::{v}(f0) => ::serde::Content::Map(::std::vec![\
                 (::std::string::String::from(\"{v}\"), ::serde::Serialize::to_content(f0))]),"
        ),
        Fields::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
            let items: Vec<String> = binders
                .iter()
                .map(|b| format!("::serde::Serialize::to_content({b})"))
                .collect();
            format!(
                "Self::{v}({binds}) => ::serde::Content::Map(::std::vec![\
                     (::std::string::String::from(\"{v}\"), \
                      ::serde::Content::Seq(::std::vec![{items}]))]),",
                binds = binders.join(", "),
                items = items.join(", "),
            )
        }
        Fields::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_content({f}))",
                        f = f.name
                    )
                })
                .collect();
            let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
            format!(
                "Self::{v} {{ {binds} }} => ::serde::Content::Map(::std::vec![\
                     (::std::string::String::from(\"{v}\"), \
                      ::serde::Content::Map(::std::vec![{entries}]))]),",
                binds = binds.join(", "),
                entries = entries.join(", "),
            )
        }
    }
}

/// The initializer expression for one named field read out of the map
/// binding `entries_var`. Fields marked `#[serde(default)]` fall back to
/// `Default::default()` when the key is absent; `#[serde(default =
/// "path")]` fields call `path()` instead.
fn named_field_init(field: &Field, entries_var: &str) -> String {
    let f = &field.name;
    match &field.default {
        Some(default) => {
            let fallback = match default {
                FieldDefault::Trait => "::std::default::Default::default()".to_string(),
                FieldDefault::Path(path) => format!("{path}()"),
            };
            format!(
                "{f}: match ::serde::field({entries_var}, \"{f}\") {{\
                     ::std::result::Result::Ok(c) => ::serde::Deserialize::from_content(c)?,\
                     ::std::result::Result::Err(_) => {fallback},\
                 }}"
            )
        }
        None => format!(
            "{f}: ::serde::Deserialize::from_content(\
             ::serde::field({entries_var}, \"{f}\")?)?"
        ),
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| named_field_init(f, "entries"))
                .collect();
            format!(
                "let entries = content.as_map().ok_or_else(|| \
                     ::serde::DeError::new(\"expected map for `{name}`\"))?;\n\
                 ::std::result::Result::Ok(Self {{ {inits} }})",
                inits = inits.join(", "),
            )
        }
        Shape::Struct(Fields::Tuple(1)) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_content(content)?))"
                .to_string()
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_content(&items[{k}])?"))
                .collect();
            format!(
                "let items = content.as_seq().ok_or_else(|| \
                     ::serde::DeError::new(\"expected sequence for `{name}`\"))?;\n\
                 if items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::DeError::new(\
                         \"wrong tuple arity for `{name}`\"));\n\
                 }}\n\
                 ::std::result::Result::Ok(Self({items}))",
                items = items.join(", "),
            )
        }
        Shape::Struct(Fields::Unit) => {
            format!(
                "match content {{\n\
                     ::serde::Content::Null => ::std::result::Result::Ok(Self),\n\
                     _ => ::std::result::Result::Err(::serde::DeError::new(\
                         \"expected null for unit struct `{name}`\")),\n\
                 }}"
            )
        }
        Shape::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "impl{ig} ::serde::Deserialize for {name}{tg} {{\n\
             fn from_content(content: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}",
        ig = impl_generics(item, "::serde::Deserialize"),
        tg = type_generics(item),
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit: Vec<&Variant> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .collect();
    let payload: Vec<&Variant> = variants
        .iter()
        .filter(|v| !matches!(v.fields, Fields::Unit))
        .collect();

    let mut arms = Vec::new();
    if !unit.is_empty() {
        let unit_arms: Vec<String> = unit
            .iter()
            .map(|v| {
                format!(
                    "\"{v}\" => ::std::result::Result::Ok(Self::{v}),",
                    v = v.name
                )
            })
            .collect();
        arms.push(format!(
            "::serde::Content::Str(tag) => match tag.as_str() {{\n\
                 {unit_arms}\n\
                 other => ::std::result::Result::Err(::serde::DeError::new(\
                     ::std::format!(\"unknown variant `{{other}}` for `{name}`\"))),\n\
             }},",
            unit_arms = unit_arms.join("\n"),
        ));
    }
    if !payload.is_empty() {
        let payload_arms: Vec<String> = payload
            .iter()
            .map(|v| deserialize_payload_arm(name, v))
            .collect();
        arms.push(format!(
            "::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n\
                     {payload_arms}\n\
                     other => ::std::result::Result::Err(::serde::DeError::new(\
                         ::std::format!(\"unknown variant `{{other}}` for `{name}`\"))),\n\
                 }}\n\
             }},",
            payload_arms = payload_arms.join("\n"),
        ));
    }
    format!(
        "match content {{\n\
             {arms}\n\
             _ => ::std::result::Result::Err(::serde::DeError::new(\
                 \"expected variant of `{name}`\")),\n\
         }}",
        arms = arms.join("\n"),
    )
}

fn deserialize_payload_arm(name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.fields {
        Fields::Unit => unreachable!("unit variants handled in the string arm"),
        Fields::Tuple(1) => format!(
            "\"{v}\" => ::std::result::Result::Ok(\
                 Self::{v}(::serde::Deserialize::from_content(inner)?)),"
        ),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_content(&items[{k}])?"))
                .collect();
            format!(
                "\"{v}\" => {{\n\
                     let items = inner.as_seq().ok_or_else(|| \
                         ::serde::DeError::new(\"expected sequence for `{name}::{v}`\"))?;\n\
                     if items.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::DeError::new(\
                             \"wrong tuple arity for `{name}::{v}`\"));\n\
                     }}\n\
                     ::std::result::Result::Ok(Self::{v}({items}))\n\
                 }},",
                items = items.join(", "),
            )
        }
        Fields::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| named_field_init(f, "fields"))
                .collect();
            format!(
                "\"{v}\" => {{\n\
                     let fields = inner.as_map().ok_or_else(|| \
                         ::serde::DeError::new(\"expected map for `{name}::{v}`\"))?;\n\
                     ::std::result::Result::Ok(Self::{v} {{ {inits} }})\n\
                 }},",
                inits = inits.join(", "),
            )
        }
    }
}
