//! Offline vendored ChaCha-based RNG.
//!
//! Implements the ChaCha stream cipher core (IETF variant, here with 8
//! rounds) as a deterministic, seedable random number generator plugging
//! into the workspace's vendored [`rand`] subset. Streams are
//! deterministic under a fixed seed but are not bit-compatible with the
//! upstream `rand_chacha` crate.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha RNG with 8 rounds — fast, high-quality, seedable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 8 key words, 64-bit counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 forces a refill.
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        // Counter and nonce start at zero.
        Self {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_under_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn float_stream_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }
}
