//! Offline vendored subset of `crossbeam`.
//!
//! Only `crossbeam::thread::scope` is used in this workspace, and since
//! Rust 1.63 the standard library provides structured scoped threads, so
//! this stub adapts `std::thread::scope` to crossbeam's 0.8 calling
//! convention: spawn closures receive a scope handle (which they may
//! ignore), and the outer call returns `Err` instead of panicking when a
//! worker panicked — matching the `.expect("worker thread panicked")`
//! call sites. The handle is passed by value (it is a `Copy` wrapper over
//! a reference) because `std`'s `Scope` is invariant in its lifetime.

#![forbid(unsafe_code)]

/// Scoped thread spawning.
pub mod thread {
    use std::any::Any;
    use std::panic::AssertUnwindSafe;

    /// Handle passed to scoped closures, allowing nested spawns.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker joined automatically when the scope ends.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(Scope { inner }))
        }
    }

    /// Runs `f` with a scope handle; all spawned workers are joined before
    /// this returns.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the panic payload when any worker (or the
    /// closure itself) panicked, per crossbeam 0.8 semantics. `std`'s
    /// scoped threads re-raise unjoined worker panics at scope exit, so
    /// one `catch_unwind` around the whole scope observes them all.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_workers_and_returns_value() {
        let data = vec![1, 2, 3, 4];
        let mut partials = vec![0i32; 2];
        let result = crate::thread::scope(|scope| {
            for (chunk, slot) in data.chunks(2).zip(partials.iter_mut()) {
                scope.spawn(move |_| *slot = chunk.iter().sum::<i32>());
            }
        });
        assert!(result.is_ok());
        assert_eq!(partials.iter().sum::<i32>(), 10);
    }

    #[test]
    fn worker_panic_surfaces_as_err() {
        let result = crate::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_handle_works() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        let result = crate::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        });
        assert!(result.is_ok());
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
