//! Offline vendored JSON serialization over the vendored `serde` model.
//!
//! Provides the two entry points the workspace uses — [`to_string`] and
//! [`from_str`] — writing and parsing strict JSON. Floats are printed with
//! Rust's shortest round-trip `Display`, so every finite `f64` survives a
//! write/parse cycle bit-exactly (the upstream `float_roundtrip` feature
//! is declared as a no-op for compatibility). Non-finite floats serialize
//! as `null` and deserialize as `NaN`, mirroring upstream's lossy default.

#![forbid(unsafe_code)]

use std::error::Error as StdError;
use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// A serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl StdError for Error {}

impl From<serde::DeError> for Error {
    fn from(err: serde::DeError) -> Self {
        Self::new(err.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out);
    Ok(out)
}

/// Parses a JSON string into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser::new(s);
    let content = parser.parse_value()?;
    parser.expect_end()?;
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_content(content: &Content, out: &mut String) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::Int(v) => out.push_str(&v.to_string()),
        Content::UInt(v) => out.push_str(&v.to_string()),
        Content::Float(v) => {
            // Rust's float Display is shortest-round-trip; integral floats
            // get an explicit ".0" so they read back as floats.
            let text = v.to_string();
            out.push_str(&text);
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (k, (key, value)) in entries.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_content(value, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

impl<'s> Parser<'s> {
    fn new(input: &'s str) -> Self {
        Self {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect_byte(&mut self, expected: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got == expected {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}`, found `{}` at byte {}",
                expected as char, got as char, self.pos
            )))
        }
    }

    fn expect_end(&mut self) -> Result<(), Error> {
        self.skip_whitespace();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(Error::new(format!(
                "trailing characters at byte {}",
                self.pos
            )))
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "invalid literal at byte {}, expected `{keyword}`",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek()? {
            b'n' => self.expect_keyword("null").map(|()| Content::Null),
            b't' => self.expect_keyword("true").map(|()| Content::Bool(true)),
            b'f' => self.expect_keyword("false").map(|()| Content::Bool(false)),
            b'"' => self.parse_string().map(Content::Str),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        other as char, self.pos
                    )));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect_byte(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.expect_byte(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        other as char, self.pos
                    )));
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.parse_escape()?);
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self) -> Result<char, Error> {
        let b = self
            .bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unterminated escape"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{08}',
            b'f' => '\u{0c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let high = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&high) {
                    // Surrogate pair: a second \uXXXX must follow.
                    if self.bytes.get(self.pos) != Some(&b'\\')
                        || self.bytes.get(self.pos + 1) != Some(&b'u')
                    {
                        return Err(Error::new("unpaired surrogate"));
                    }
                    self.pos += 2;
                    let low = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(Error::new("invalid low surrogate"));
                    }
                    0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                } else {
                    high
                };
                char::from_u32(code).ok_or_else(|| Error::new("invalid unicode escape"))?
            }
            other => {
                return Err(Error::new(format!("invalid escape `\\{}`", other as char)));
            }
        })
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text =
            std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let value =
            u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Content::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exact_floats() {
        for &v in &[0.1, 1.0 / 3.0, 1e-300, 123456.789, -0.0, 2.0_f64.powi(60)] {
            let json = to_string(&v).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "value {v} via {json}");
        }
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&-3.0f64).unwrap(), "-3.0");
    }

    #[test]
    fn integers_round_trip_at_extremes() {
        let json = to_string(&u64::MAX).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), u64::MAX);
        let json = to_string(&i64::MIN).unwrap();
        assert_eq!(from_str::<i64>(&json).unwrap(), i64::MIN);
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let s = "line\n\"quoted\"\tbackslash\\ unicode \u{1F600} control \u{01}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        assert_eq!(from_str::<String>(r#""A😀""#).unwrap(), "A😀");
    }

    #[test]
    fn nested_collections_round_trip() {
        let v: Vec<Vec<f64>> = vec![vec![1.5, 2.5], vec![], vec![-0.25]];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f64>>>(&json).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v: Vec<f64> = from_str(" [ 1.0 , 2.0 ] ").unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
    }
}
