//! Offline vendored subset of the `serde` data model.
//!
//! The build environment has no crates.io access, so the workspace ships a
//! minimal self-serialization framework with the same *surface* as serde —
//! `#[derive(Serialize, Deserialize)]`, `serde_json::to_string` /
//! `from_str` — implemented over an explicit [`Content`] tree instead of
//! upstream's visitor machinery. JSON written by this stub round-trips
//! exactly (floats print their shortest round-trip form), which is all the
//! workspace's persistence and tests rely on.
//!
//! Supported shapes: structs with named fields, tuple/newtype structs,
//! enums with unit/newtype/tuple/struct variants (externally tagged, like
//! upstream's default), plus the primitive/`Vec`/`Option`/tuple impls
//! below. `#[serde(transparent)]` on newtypes coincides with the default
//! newtype behavior and is accepted (and ignored) by the derive.

#![forbid(unsafe_code)]

use std::error::Error;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Upstream-compatible module path: with no borrowed deserialization in
/// the vendored model, `de::DeserializeOwned` is [`Deserialize`] itself.
pub mod de {
    pub use crate::Deserialize as DeserializeOwned;
}

/// A self-describing serialized value (the stub's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also used for non-finite floats and `None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer too large for `i64`, or any `u64` source value.
    UInt(u64),
    /// A finite floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// A map with string keys, in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Self::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Self::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a required field in a map's entries.
///
/// # Errors
///
/// Returns [`DeError`] when the field is absent.
pub fn field<'c>(entries: &'c [(String, Content)], name: &str) -> Result<&'c Content, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
}

/// Why deserialization failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with a human-readable cause.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization failed: {}", self.message)
    }
}

impl Error for DeError {}

/// Types that can render themselves into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into the data model.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value from the data model.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on shape or domain mismatches.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        if self.is_finite() {
            Content::Float(*self)
        } else {
            Content::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Float(v) => Ok(*v),
            Content::Int(v) => Ok(*v as f64),
            Content::UInt(v) => Ok(*v as f64),
            Content::Null => Ok(f64::NAN),
            other => Err(DeError::new(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        f64::from(*self).to_content()
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

macro_rules! signed_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::Int(*self as i64)
            }
        }

        impl Deserialize for $ty {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let raw = match content {
                    Content::Int(v) => *v,
                    Content::UInt(v) => i64::try_from(*v)
                        .map_err(|_| DeError::new("unsigned value overflows signed target"))?,
                    other => return Err(DeError::new(format!("expected integer, got {other:?}"))),
                };
                <$ty>::try_from(raw).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
signed_impl!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::UInt(*self as u64)
            }
        }

        impl Deserialize for $ty {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let raw = match content {
                    Content::UInt(v) => *v,
                    Content::Int(v) => u64::try_from(*v)
                        .map_err(|_| DeError::new("negative value for unsigned target"))?,
                    other => return Err(DeError::new(format!("expected integer, got {other:?}"))),
                };
                <$ty>::try_from(raw).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
unsigned_impl!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(v) => Ok(*v),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let s = String::from_content(content)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_seq()
            .ok_or_else(|| DeError::new("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let items = Vec::<T>::from_content(content)?;
        <[T; N]>::try_from(items).map_err(|_| DeError::new("wrong array length"))
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_seq()
            .ok_or_else(|| DeError::new("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

macro_rules! tuple_impl {
    ($(($($idx:tt $name:ident),+),)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let items = content
                    .as_seq()
                    .ok_or_else(|| DeError::new("expected tuple sequence"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::new(format!(
                        "expected {expected}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    )*};
}
tuple_impl! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_content() {
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert_eq!(u64::from_content(&u64::MAX.to_content()).unwrap(), u64::MAX);
        assert_eq!(i32::from_content(&(-7i32).to_content()).unwrap(), -7);
        assert!(bool::from_content(&true.to_content()).unwrap());
        let v: Vec<f64> = vec![1.0, 2.5];
        assert_eq!(Vec::<f64>::from_content(&v.to_content()).unwrap(), v);
        let t = (1.0f64, 2usize);
        assert_eq!(<(f64, usize)>::from_content(&t.to_content()).unwrap(), t);
        let o: Option<f64> = Some(3.0);
        assert_eq!(Option::<f64>::from_content(&o.to_content()).unwrap(), o);
        let n: Option<f64> = None;
        assert_eq!(Option::<f64>::from_content(&n.to_content()).unwrap(), n);
    }

    #[test]
    fn nan_serializes_as_null_and_returns_as_nan() {
        let c = f64::NAN.to_content();
        assert_eq!(c, Content::Null);
        assert!(f64::from_content(&c).unwrap().is_nan());
    }

    #[test]
    fn field_lookup_reports_missing() {
        let entries = vec![("a".to_string(), Content::Int(1))];
        assert!(field(&entries, "a").is_ok());
        assert!(field(&entries, "b").is_err());
    }
}
