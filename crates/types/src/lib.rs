//! Typed physical quantities, identifiers, and scheduling-horizon types shared
//! by every crate in the netmeter-sentinel workspace.
//!
//! The smart-grid literature mixes energies, powers, prices, and money freely;
//! this crate gives each its own newtype so that a kWh can never be added to a
//! dollar by accident. All quantities wrap `f64` and implement the arithmetic
//! that is physically meaningful (energy + energy, price × energy = money, …).
//!
//! # Examples
//!
//! ```
//! use nms_types::{Kwh, PricePerKwh};
//!
//! let consumed = Kwh::new(3.5);
//! let price = PricePerKwh::new(0.12);
//! let bill = price * consumed;
//! assert!((bill.value() - 0.42).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fleet;
mod health;
mod horizon;
mod id;
mod quantity;
mod series;

pub use error::{HorizonMismatchError, ValidateError};
pub use fleet::{FleetHealth, ShardHealth, ShardStage};
pub use health::{
    BudgetClock, DayHealth, FallbackRecord, FaultCounts, FaultKind, RetryPolicy, RunHealth,
    SolveBudget, StorageFaultCounts, StorageFaultLedger,
};
pub use horizon::{Horizon, SlotClock};
pub use id::{ApplianceId, CustomerId, MeterId};
pub use quantity::{Dollars, Kw, Kwh, PricePerKwh};
pub use series::TimeSeries;
