//! Run-health reporting and retry policies for graceful degradation.
//!
//! Real meter telemetry is lossy — readings drop, values arrive garbled,
//! clocks skew — and numerical subroutines occasionally fail to converge.
//! Rather than panic, the detection pipeline degrades: corrupted inputs are
//! imputed, optimizers are retried under a deterministic [`RetryPolicy`],
//! and exhausted components fall back to simpler models. [`RunHealth`] is
//! the ledger of all of it, attached to every long-term run result so a
//! verdict can be weighed against how much of its input was reconstructed.

use serde::{Deserialize, Serialize};

use crate::error::ValidateError;

/// One category of telemetry fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A meter-slot reading never arrived.
    Dropped,
    /// A reading arrived as NaN/∞.
    NonFinite,
    /// A reading arrived with a garbage magnitude.
    Garbage,
    /// A meter reported its first reading all day (stuck-at fault).
    Stuck,
    /// A meter's readings were shifted by one slot (clock skew).
    Skewed,
    /// A meter did not report at all (partial community reporting).
    Unreported,
}

/// Per-kind fault tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Meter-slot readings dropped.
    pub dropped: usize,
    /// Readings corrupted to NaN/∞.
    pub non_finite: usize,
    /// Readings corrupted to garbage magnitudes.
    pub garbage: usize,
    /// Meters stuck at their first reading for a day.
    pub stuck: usize,
    /// Meters with a one-slot clock skew for a day.
    pub skewed: usize,
    /// Meters that reported nothing for a day.
    pub unreported: usize,
}

impl FaultCounts {
    /// Increments the tally for `kind`.
    pub fn record(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::Dropped => self.dropped += 1,
            FaultKind::NonFinite => self.non_finite += 1,
            FaultKind::Garbage => self.garbage += 1,
            FaultKind::Stuck => self.stuck += 1,
            FaultKind::Skewed => self.skewed += 1,
            FaultKind::Unreported => self.unreported += 1,
        }
    }

    /// Total faults across every category.
    pub fn total(&self) -> usize {
        self.dropped + self.non_finite + self.garbage + self.stuck + self.skewed + self.unreported
    }

    /// Adds another tally into this one.
    pub fn merge(&mut self, other: &FaultCounts) {
        self.dropped += other.dropped;
        self.non_finite += other.non_finite;
        self.garbage += other.garbage;
        self.stuck += other.stuck;
        self.skewed += other.skewed;
        self.unreported += other.unreported;
    }
}

/// A component switching to a simpler backend after its primary failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FallbackRecord {
    /// The component that degraded (e.g. `"battery-optimizer"`).
    pub component: String,
    /// The backend given up on (e.g. `"cross-entropy"`).
    pub from: String,
    /// The backend switched to (e.g. `"coordinate-descent"`).
    pub to: String,
    /// Why the primary was abandoned.
    pub reason: String,
}

impl FallbackRecord {
    /// Builds a record from its four parts.
    pub fn new(
        component: impl Into<String>,
        from: impl Into<String>,
        to: impl Into<String>,
        reason: impl Into<String>,
    ) -> Self {
        Self {
            component: component.into(),
            from: from.into(),
            to: to.into(),
            reason: reason.into(),
        }
    }
}

/// Deterministic retry schedule for stochastic or iterative subroutines.
///
/// Attempt `k` (zero-based) runs with an iteration budget of
/// `base · iteration_growth^k` and — for seeded solvers — an RNG reseeded
/// to `seed + k · reseed_stride`, so a retried run is reproducible from the
/// original seed alone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts allowed (≥ 1; 1 means no retries).
    pub max_attempts: usize,
    /// Multiplier applied to the iteration budget per retry (≥ 1).
    pub iteration_growth: f64,
    /// Seed offset per retry (any odd constant decorrelates the streams).
    pub reseed_stride: u64,
}

impl RetryPolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] for zero attempts or a shrinking growth
    /// factor.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.max_attempts == 0 {
            return Err(ValidateError::new("retry policy needs at least one attempt"));
        }
        if !(self.iteration_growth >= 1.0 && self.iteration_growth.is_finite()) {
            return Err(ValidateError::new("iteration growth must be finite and ≥ 1"));
        }
        Ok(())
    }

    /// A policy that never retries (single attempt, unchanged budget).
    pub fn single_attempt() -> Self {
        Self {
            max_attempts: 1,
            iteration_growth: 1.0,
            reseed_stride: 0,
        }
    }

    /// The iteration budget for zero-based attempt `attempt`.
    pub fn budget(&self, base: usize, attempt: usize) -> usize {
        let grown = base as f64 * self.iteration_growth.powi(attempt as i32);
        (grown.ceil() as usize).max(1)
    }

    /// The RNG seed for zero-based attempt `attempt` (attempt 0 keeps the
    /// caller's seed).
    pub fn reseed(&self, seed: u64, attempt: usize) -> u64 {
        seed.wrapping_add((attempt as u64).wrapping_mul(self.reseed_stride))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            iteration_growth: 2.0,
            reseed_stride: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// Watchdog budget for an iterative solve or training attempt.
///
/// A wedged solver must not stall a multi-week monitoring run: the budget
/// caps both the iteration count and the wall-clock time of one attempt.
/// Either limit may be absent (`None` = unlimited, the default, which is
/// also the only fully deterministic setting — a wall-clock deadline makes
/// the breach point machine-dependent, so journaled runs that must resume
/// bit-identically should prefer `max_iterations`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SolveBudget {
    /// Hard cap on iterations (CE iterations, SMO passes) across one
    /// attempt; `None` leaves the component's own limit in charge.
    pub max_iterations: Option<usize>,
    /// Wall-clock deadline in seconds for the whole solve (all retry
    /// attempts together); `None` disables the deadline.
    pub max_wall_secs: Option<f64>,
}

impl SolveBudget {
    /// No limits: components run to their own configured bounds.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Checks the budget is usable.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] for a zero iteration cap or a non-positive
    /// or non-finite deadline.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.max_iterations == Some(0) {
            return Err(ValidateError::new(
                "solve budget iteration cap must be at least 1",
            ));
        }
        if let Some(secs) = self.max_wall_secs {
            if !(secs > 0.0 && secs.is_finite()) {
                return Err(ValidateError::new(format!(
                    "solve budget deadline must be finite and positive, got {secs}"
                )));
            }
        }
        Ok(())
    }

    /// `true` when neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_iterations.is_none() && self.max_wall_secs.is_none()
    }

    /// Starts the wall clock for one solve; iterations are reported to the
    /// returned [`BudgetClock`] as they complete.
    pub fn start(&self) -> BudgetClock {
        BudgetClock {
            budget: *self,
            started: std::time::Instant::now(),
            elapsed_offset: 0.0,
        }
    }
}

/// A running [`SolveBudget`]: the deadline anchor plus the limits.
///
/// Not serializable by design — a clock is only meaningful within the
/// process that started it.
#[derive(Debug, Clone)]
pub struct BudgetClock {
    budget: SolveBudget,
    started: std::time::Instant,
    /// Seconds treated as already elapsed when the clock started. Zero in
    /// production; tests inject a positive offset to make wall-deadline
    /// breaches deterministic instead of racing a real `sleep` against a
    /// tiny deadline.
    elapsed_offset: f64,
}

impl BudgetClock {
    /// A clock that behaves as though `secs` seconds had already elapsed
    /// when it started. This is the deterministic-test hook: an expired
    /// deadline can be constructed outright, with no sleeping and no
    /// dependence on scheduler load.
    pub fn with_elapsed(budget: SolveBudget, secs: f64) -> Self {
        Self {
            budget,
            started: std::time::Instant::now(),
            elapsed_offset: secs,
        }
    }

    /// Returns the breach description if `iterations_done` or the elapsed
    /// wall clock has exhausted the budget, `None` while within it.
    pub fn breach(&self, iterations_done: usize) -> Option<String> {
        if let Some(cap) = self.budget.max_iterations {
            if iterations_done >= cap {
                return Some(format!("iteration budget exhausted ({cap})"));
            }
        }
        if let Some(secs) = self.budget.max_wall_secs {
            let elapsed = self.started.elapsed().as_secs_f64() + self.elapsed_offset;
            if elapsed >= secs {
                return Some(format!(
                    "wall-clock budget exhausted ({elapsed:.3}s elapsed, {secs}s allowed)"
                ));
            }
        }
        None
    }
}

/// One detection day's slice of the health ledger — the per-day timeline
/// row exported alongside run totals so degradation can be localized in
/// time, not just counted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DayHealth {
    /// Zero-based detection-day offset.
    pub day: usize,
    /// Telemetry faults injected this day.
    pub faults: FaultCounts,
    /// Slots the sanitizer imputed this day.
    pub slots_imputed: usize,
    /// Retry attempts consumed this day.
    pub retries: usize,
    /// Component fallbacks taken this day.
    pub fallbacks: usize,
    /// Watchdog budget breaches this day.
    pub budget_breaches: usize,
    /// Meters whose quarantine breaker tripped open this day.
    pub quarantine_trips: usize,
    /// Meters whose quarantine breaker closed (recovered) this day.
    pub quarantine_recoveries: usize,
    /// Meters excluded from the aggregate (breaker open) at end of day.
    pub meters_quarantined: usize,
}

impl DayHealth {
    /// Builds the day-`day` row from cumulative ledgers snapshotted before
    /// and after the day, plus the end-of-day quarantined-meter count.
    pub fn delta(day: usize, before: &RunHealth, after: &RunHealth, meters_quarantined: usize) -> Self {
        let mut faults = after.faults_injected;
        let b = &before.faults_injected;
        faults.dropped -= b.dropped;
        faults.non_finite -= b.non_finite;
        faults.garbage -= b.garbage;
        faults.stuck -= b.stuck;
        faults.skewed -= b.skewed;
        faults.unreported -= b.unreported;
        Self {
            day,
            faults,
            slots_imputed: after.slots_imputed - before.slots_imputed,
            retries: after.retries_consumed - before.retries_consumed,
            fallbacks: after.fallbacks.len() - before.fallbacks.len(),
            budget_breaches: after.budget_breaches - before.budget_breaches,
            quarantine_trips: after.quarantine_trips - before.quarantine_trips,
            quarantine_recoveries: after.quarantine_recoveries - before.quarantine_recoveries,
            meters_quarantined,
        }
    }

    /// `true` when anything degraded during this day.
    pub fn degraded(&self) -> bool {
        self.faults.total() > 0
            || self.slots_imputed > 0
            || self.retries > 0
            || self.fallbacks > 0
            || self.budget_breaches > 0
            || self.quarantine_trips > 0
            || self.quarantine_recoveries > 0
            || self.meters_quarantined > 0
    }
}

/// Storage-layer fault tallies: what the durable sinks (journal, trace,
/// CSV exports, bench records) absorbed without failing the run.
///
/// These are *process-local* observability, like the trace sink's dropped
/// counter: supervision folds them into the run **result's** ledger at
/// finish time, never into journaled per-day state — so a run that
/// weathered storage faults still journals, exports, and resumes
/// bit-identically to one that did not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageFaultCounts {
    /// Journal append attempts beyond the first (rollback + retry).
    #[serde(default)]
    pub journal_retries: usize,
    /// Journal appends that exhausted their retry policy (hard errors).
    #[serde(default)]
    pub journal_append_failures: usize,
    /// Export/bench staging attempts beyond the first.
    #[serde(default)]
    pub export_retries: usize,
    /// Exports/bench writes that exhausted their retry policy.
    #[serde(default)]
    pub export_failures: usize,
    /// Trace events dropped by the sink (drop-and-count policy).
    #[serde(default)]
    pub trace_dropped: usize,
}

impl StorageFaultCounts {
    /// Total storage-fault incidents of every kind.
    pub fn total(&self) -> usize {
        self.journal_retries
            + self.journal_append_failures
            + self.export_retries
            + self.export_failures
            + self.trace_dropped
    }

    /// Folds another tally into this one.
    pub fn merge(&mut self, other: &StorageFaultCounts) {
        self.journal_retries += other.journal_retries;
        self.journal_append_failures += other.journal_append_failures;
        self.export_retries += other.export_retries;
        self.export_failures += other.export_failures;
        self.trace_dropped += other.trace_dropped;
    }
}

/// A thread-safe, shareable [`StorageFaultCounts`] tally scoped to one run.
///
/// PR 6 tallied absorbed storage faults in a field private to each
/// `SupervisedRun`, which was correct for one run per process but wrong the
/// moment a fleet rebuilds a shard mid-run (the old tally died with the old
/// run value) or two shards share options (their faults would
/// cross-contaminate via any process-global alternative). The ledger fixes
/// both: `Clone` shares the same underlying tally (so a shard's supervisor
/// options can hand the *same* ledger to every rebuild of that shard), while
/// `Default`/[`StorageFaultLedger::new`] starts a fresh, fully independent
/// one (so distinct shards never see each other's faults).
///
/// Like [`StorageFaultCounts`] itself, the ledger is process-local
/// observability: it is merged into the run **result's** [`RunHealth`] at
/// finish time and never journaled, so fault-weathering runs still resume
/// bit-identically.
#[derive(Debug, Clone, Default)]
pub struct StorageFaultLedger {
    inner: std::sync::Arc<std::sync::Mutex<StorageFaultCounts>>,
}

impl StorageFaultLedger {
    /// A fresh ledger with zero tallies, shared by nobody.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when `other` is a clone of this ledger (same underlying
    /// tally), `false` for an independent ledger — the isolation predicate
    /// regression tests assert on.
    pub fn shares_with(&self, other: &StorageFaultLedger) -> bool {
        std::sync::Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Applies `tick` to the shared tally under the lock.
    ///
    /// A poisoned lock is recovered rather than propagated: the tally is
    /// plain counters, so the worst a panicking peer can leave behind is a
    /// half-updated count — still strictly more informative than losing the
    /// ledger.
    pub fn record(&self, tick: impl FnOnce(&mut StorageFaultCounts)) {
        let mut guard = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        tick(&mut guard);
    }

    /// Copies the current tally out.
    pub fn snapshot(&self) -> StorageFaultCounts {
        *self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Folds an already-aggregated tally into the ledger (e.g. faults a
    /// helper counted privately before handing them over).
    pub fn absorb(&self, counts: &StorageFaultCounts) {
        self.record(|tally| tally.merge(counts));
    }
}

/// Health ledger of one pipeline run: what was corrupted, what was
/// reconstructed, and which components had to degrade.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunHealth {
    /// Telemetry faults injected (or, outside simulations, detected at
    /// ingest) during the run.
    pub faults_injected: FaultCounts,
    /// Detector observation slots processed.
    pub slots_observed: usize,
    /// Slot values the sanitizer replaced with imputed ones (counted per
    /// sanitizer invocation; a slot re-sanitized after a mid-day
    /// recomputation counts again).
    pub slots_imputed: usize,
    /// Extra solver/trainer attempts consumed by retries.
    pub retries_consumed: usize,
    /// Every component fallback taken, in order.
    pub fallbacks: Vec<FallbackRecord>,
    /// Watchdog [`SolveBudget`] breaches (solves aborted by the deadline or
    /// iteration cap). Absent in pre-budget serialized ledgers.
    #[serde(default)]
    pub budget_breaches: usize,
    /// Per-meter quarantine breakers tripped open. Absent in pre-quarantine
    /// serialized ledgers.
    #[serde(default)]
    pub quarantine_trips: usize,
    /// Per-meter quarantine breakers closed again after probation. Absent
    /// in pre-quarantine serialized ledgers.
    #[serde(default)]
    pub quarantine_recoveries: usize,
    /// Storage-layer faults absorbed by the durable sinks. Absent in
    /// pre-vfs serialized ledgers; journaled per-day snapshots always
    /// carry the zero tally (see [`StorageFaultCounts`]).
    #[serde(default)]
    pub storage: StorageFaultCounts,
}

impl RunHealth {
    /// A clean ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when anything at all went wrong (faults seen, slots imputed,
    /// retries spent, or fallbacks taken).
    pub fn degraded(&self) -> bool {
        self.faults_injected.total() > 0
            || self.slots_imputed > 0
            || self.retries_consumed > 0
            || !self.fallbacks.is_empty()
            || self.budget_breaches > 0
            || self.quarantine_trips > 0
            || self.quarantine_recoveries > 0
            || self.storage.total() > 0
    }

    /// Records a component fallback.
    pub fn record_fallback(&mut self, record: FallbackRecord) {
        self.fallbacks.push(record);
    }

    /// Records `count` retry attempts consumed.
    pub fn record_retries(&mut self, count: usize) {
        self.retries_consumed += count;
    }

    /// Records `count` watchdog budget breaches.
    pub fn record_budget_breaches(&mut self, count: usize) {
        self.budget_breaches += count;
    }

    /// Folds another ledger into this one.
    pub fn merge(&mut self, other: &RunHealth) {
        self.faults_injected.merge(&other.faults_injected);
        self.slots_observed += other.slots_observed;
        self.slots_imputed += other.slots_imputed;
        self.retries_consumed += other.retries_consumed;
        self.fallbacks.extend(other.fallbacks.iter().cloned());
        self.budget_breaches += other.budget_breaches;
        self.quarantine_trips += other.quarantine_trips;
        self.quarantine_recoveries += other.quarantine_recoveries;
        self.storage.merge(&other.storage);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_counts_record_and_total() {
        let mut counts = FaultCounts::default();
        counts.record(FaultKind::Dropped);
        counts.record(FaultKind::Dropped);
        counts.record(FaultKind::NonFinite);
        counts.record(FaultKind::Garbage);
        counts.record(FaultKind::Stuck);
        counts.record(FaultKind::Skewed);
        counts.record(FaultKind::Unreported);
        assert_eq!(counts.dropped, 2);
        assert_eq!(counts.total(), 7);
        let mut other = FaultCounts::default();
        other.record(FaultKind::Garbage);
        counts.merge(&other);
        assert_eq!(counts.garbage, 2);
        assert_eq!(counts.total(), 8);
    }

    #[test]
    fn retry_policy_validation() {
        assert!(RetryPolicy::default().validate().is_ok());
        assert!(RetryPolicy::single_attempt().validate().is_ok());
        let mut p = RetryPolicy::default();
        p.max_attempts = 0;
        assert!(p.validate().is_err());
        let mut p = RetryPolicy::default();
        p.iteration_growth = 0.5;
        assert!(p.validate().is_err());
        let mut p = RetryPolicy::default();
        p.iteration_growth = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn retry_policy_budget_escalates() {
        let policy = RetryPolicy {
            max_attempts: 3,
            iteration_growth: 2.0,
            reseed_stride: 1,
        };
        assert_eq!(policy.budget(10, 0), 10);
        assert_eq!(policy.budget(10, 1), 20);
        assert_eq!(policy.budget(10, 2), 40);
        // A zero base still yields a usable budget.
        assert_eq!(policy.budget(0, 0), 1);
    }

    #[test]
    fn retry_policy_reseed_is_deterministic_and_distinct() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.reseed(42, 0), 42);
        let first = policy.reseed(42, 1);
        let second = policy.reseed(42, 2);
        assert_ne!(first, 42);
        assert_ne!(first, second);
        assert_eq!(first, policy.reseed(42, 1));
    }

    #[test]
    fn solve_budget_validation_and_breach() {
        assert!(SolveBudget::unlimited().validate().is_ok());
        assert!(SolveBudget::unlimited().is_unlimited());
        assert!(SolveBudget {
            max_iterations: Some(0),
            max_wall_secs: None,
        }
        .validate()
        .is_err());
        assert!(SolveBudget {
            max_iterations: None,
            max_wall_secs: Some(0.0),
        }
        .validate()
        .is_err());
        assert!(SolveBudget {
            max_iterations: None,
            max_wall_secs: Some(f64::NAN),
        }
        .validate()
        .is_err());

        let clock = SolveBudget {
            max_iterations: Some(5),
            max_wall_secs: None,
        }
        .start();
        assert!(clock.breach(4).is_none());
        assert!(clock.breach(5).is_some());

        // An expired deadline breaches immediately; injecting the elapsed
        // time keeps this deterministic under any scheduler load.
        let clock = BudgetClock::with_elapsed(
            SolveBudget {
                max_iterations: None,
                max_wall_secs: Some(0.5),
            },
            1.0,
        );
        assert!(clock.breach(0).is_some());

        // An injected elapsed time short of the deadline does not breach.
        let clock = BudgetClock::with_elapsed(
            SolveBudget {
                max_iterations: None,
                max_wall_secs: Some(3600.0),
            },
            1.0,
        );
        assert!(clock.breach(0).is_none());

        // Unlimited never breaches.
        let clock = SolveBudget::unlimited().start();
        assert!(clock.breach(usize::MAX - 1).is_none());
    }

    #[test]
    fn day_health_delta_and_degraded() {
        let mut before = RunHealth::new();
        before.slots_imputed = 3;
        before.faults_injected.record(FaultKind::Dropped);
        let mut after = before.clone();
        after.slots_imputed = 7;
        after.faults_injected.record(FaultKind::Garbage);
        after.record_retries(2);
        after.record_budget_breaches(1);
        after.quarantine_trips += 1;

        let day = DayHealth::delta(4, &before, &after, 2);
        assert_eq!(day.day, 4);
        assert_eq!(day.slots_imputed, 4);
        assert_eq!(day.faults.garbage, 1);
        assert_eq!(day.faults.dropped, 0);
        assert_eq!(day.retries, 2);
        assert_eq!(day.budget_breaches, 1);
        assert_eq!(day.quarantine_trips, 1);
        assert_eq!(day.meters_quarantined, 2);
        assert!(day.degraded());
        assert!(!DayHealth::default().degraded());
    }

    #[test]
    fn run_health_deserializes_without_new_counters() {
        // A ledger serialized before the budget/quarantine counters existed
        // must still load (the `#[serde(default)]` contract).
        let json = "{\"faults_injected\":{\"dropped\":1,\"non_finite\":0,\"garbage\":0,\
                     \"stuck\":0,\"skewed\":0,\"unreported\":0},\"slots_observed\":24,\
                     \"slots_imputed\":2,\"retries_consumed\":0,\"fallbacks\":[]}";
        let health: RunHealth = serde_json::from_str(json).expect("legacy ledger should load");
        assert_eq!(health.slots_imputed, 2);
        assert_eq!(health.budget_breaches, 0);
        assert_eq!(health.quarantine_trips, 0);
    }

    #[test]
    fn storage_ledger_clones_share_and_new_ledgers_do_not() {
        let ledger = StorageFaultLedger::new();
        let shared = ledger.clone();
        let independent = StorageFaultLedger::new();
        assert!(ledger.shares_with(&shared));
        assert!(!ledger.shares_with(&independent));

        shared.record(|c| c.journal_retries += 2);
        ledger.record(|c| c.trace_dropped += 1);
        independent.record(|c| c.journal_append_failures += 5);

        let seen = ledger.snapshot();
        assert_eq!(seen.journal_retries, 2);
        assert_eq!(seen.trace_dropped, 1);
        assert_eq!(seen.journal_append_failures, 0, "independent ledger leaked in");
        assert_eq!(independent.snapshot().journal_append_failures, 5);

        let mut carried = StorageFaultCounts::default();
        carried.export_retries = 3;
        ledger.absorb(&carried);
        assert_eq!(ledger.snapshot().export_retries, 3);
        assert_eq!(ledger.snapshot().total(), 6);
    }

    #[test]
    fn run_health_degradation_flag() {
        let mut health = RunHealth::new();
        assert!(!health.degraded());
        health.slots_observed = 24;
        assert!(!health.degraded());
        health.record_retries(1);
        assert!(health.degraded());

        let mut other = RunHealth::new();
        other.faults_injected.record(FaultKind::Dropped);
        other.record_fallback(FallbackRecord::new(
            "battery-optimizer",
            "cross-entropy",
            "coordinate-descent",
            "did not converge",
        ));
        health.merge(&other);
        assert_eq!(health.faults_injected.dropped, 1);
        assert_eq!(health.fallbacks.len(), 1);
        assert_eq!(health.fallbacks[0].to, "coordinate-descent");
    }
}
