//! Fleet-level health: per-shard supervision ledgers and their aggregate.
//!
//! A fleet drives K communities as isolated shards; each shard climbs a
//! typed failure ladder when it misbehaves (retry the day → resume from its
//! journal → quarantine the community). [`ShardHealth`] records how far one
//! shard climbed and what it cost; [`FleetHealth`] aggregates the shards so
//! an operator can answer "how degraded is the fleet?" from one value. Both
//! serialize, so a fleet report can be exported next to run results.

use serde::{Deserialize, Serialize};

use crate::health::RunHealth;

/// The highest rung of the failure ladder a shard reached.
///
/// Ordered by severity: `Healthy < Retried < Resumed < Quarantined`. A shard
/// only ever climbs (a successful retry still leaves it marked `Retried` —
/// the ledger records history, not current mood), so `Ord::max` is the
/// escalation operator.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum ShardStage {
    /// No ladder rung was needed: every day closed on the first attempt.
    #[default]
    Healthy,
    /// At least one day needed an in-place retry (rebuild from journal,
    /// bounded linear backoff) that then succeeded.
    Retried,
    /// At least one failure escalated past retries to a full resume from
    /// the shard's journal (the kill-and-resume machinery).
    Resumed,
    /// The circuit breaker tripped: the shard is out of the rotation and
    /// its remaining days are degraded suspect-floor verdicts.
    Quarantined,
}

impl ShardStage {
    /// Stable lowercase label for metrics and exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            ShardStage::Healthy => "healthy",
            ShardStage::Retried => "retried",
            ShardStage::Resumed => "resumed",
            ShardStage::Quarantined => "quarantined",
        }
    }
}

impl std::fmt::Display for ShardStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One shard's supervision ledger: where it ended on the ladder and every
/// intervention it took to get there.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardHealth {
    /// Shard index within the fleet (position in the spec list).
    pub shard: usize,
    /// Human-readable community label the shard is responsible for.
    pub community: String,
    /// Highest ladder rung reached over the whole run.
    pub stage: ShardStage,
    /// Detection days the shard actually closed (journal-confirmed).
    pub days_completed: usize,
    /// Day-level retry attempts consumed (first rung).
    pub day_retries: usize,
    /// Full journal resumes consumed (second rung); these are the shard's
    /// restarts.
    pub resumes: usize,
    /// Day closes that breached the fleet's day-close deadline.
    pub deadline_breaches: usize,
    /// Days the quarantined shard covered with degraded suspect-floor
    /// verdicts instead of real detection.
    pub suspect_floor_days: usize,
    /// The last failure message observed on the way up the ladder, if any.
    #[serde(default)]
    pub last_error: Option<String>,
    /// The shard's own run-health ledger (faults, imputation, fallbacks,
    /// storage) from the underlying supervised run.
    #[serde(default)]
    pub run: RunHealth,
}

impl ShardHealth {
    /// A clean ledger for shard `shard` over `community`.
    pub fn new(shard: usize, community: impl Into<String>) -> Self {
        Self {
            shard,
            community: community.into(),
            ..Self::default()
        }
    }

    /// Raises the recorded stage to `stage` if it is more severe; never
    /// lowers it.
    pub fn escalate(&mut self, stage: ShardStage) {
        self.stage = self.stage.max(stage);
    }

    /// `true` when supervision had to intervene at all (any ladder rung,
    /// deadline breach, or degradation in the underlying run).
    pub fn degraded(&self) -> bool {
        self.stage != ShardStage::Healthy
            || self.day_retries > 0
            || self.resumes > 0
            || self.deadline_breaches > 0
            || self.suspect_floor_days > 0
            || self.run.degraded()
    }
}

/// The fleet-wide aggregate of every shard's [`ShardHealth`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetHealth {
    /// One ledger per shard, in shard-index order.
    pub shards: Vec<ShardHealth>,
}

impl FleetHealth {
    /// Wraps per-shard ledgers (callers should pass them in shard order).
    pub fn new(shards: Vec<ShardHealth>) -> Self {
        Self { shards }
    }

    /// Shards whose breaker tripped.
    pub fn quarantined(&self) -> usize {
        self.count_at(ShardStage::Quarantined)
    }

    /// Shards that finished without any supervision rung.
    pub fn healthy(&self) -> usize {
        self.count_at(ShardStage::Healthy)
    }

    /// Shards whose highest rung is exactly `stage`.
    pub fn count_at(&self, stage: ShardStage) -> usize {
        self.shards.iter().filter(|s| s.stage == stage).count()
    }

    /// Total shard restarts (journal resumes) across the fleet.
    pub fn restarts(&self) -> usize {
        self.shards.iter().map(|s| s.resumes).sum()
    }

    /// Total day-level retries across the fleet.
    pub fn day_retries(&self) -> usize {
        self.shards.iter().map(|s| s.day_retries).sum()
    }

    /// Total day-close deadline breaches across the fleet.
    pub fn deadline_breaches(&self) -> usize {
        self.shards.iter().map(|s| s.deadline_breaches).sum()
    }

    /// Total suspect-floor (quarantine-degraded) days across the fleet.
    pub fn suspect_floor_days(&self) -> usize {
        self.shards.iter().map(|s| s.suspect_floor_days).sum()
    }

    /// The most severe stage any shard reached (`Healthy` for an empty
    /// fleet).
    pub fn worst_stage(&self) -> ShardStage {
        self.shards
            .iter()
            .map(|s| s.stage)
            .max()
            .unwrap_or_default()
    }

    /// `true` when any shard is degraded.
    pub fn degraded(&self) -> bool {
        self.shards.iter().any(ShardHealth::degraded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_order_is_the_ladder() {
        assert!(ShardStage::Healthy < ShardStage::Retried);
        assert!(ShardStage::Retried < ShardStage::Resumed);
        assert!(ShardStage::Resumed < ShardStage::Quarantined);
        assert_eq!(ShardStage::default(), ShardStage::Healthy);
        assert_eq!(ShardStage::Quarantined.as_str(), "quarantined");
        assert_eq!(ShardStage::Retried.to_string(), "retried");
    }

    #[test]
    fn escalation_never_demotes() {
        let mut shard = ShardHealth::new(3, "community-3");
        assert_eq!(shard.shard, 3);
        assert!(!shard.degraded());
        shard.escalate(ShardStage::Resumed);
        assert_eq!(shard.stage, ShardStage::Resumed);
        shard.escalate(ShardStage::Retried);
        assert_eq!(shard.stage, ShardStage::Resumed, "a retry after a resume must not demote");
        shard.escalate(ShardStage::Quarantined);
        assert_eq!(shard.stage, ShardStage::Quarantined);
        assert!(shard.degraded());
    }

    #[test]
    fn fleet_aggregates_and_worst_stage() {
        let mut healthy = ShardHealth::new(0, "c0");
        healthy.days_completed = 5;
        let mut retried = ShardHealth::new(1, "c1");
        retried.escalate(ShardStage::Retried);
        retried.day_retries = 2;
        let mut quarantined = ShardHealth::new(2, "c2");
        quarantined.escalate(ShardStage::Quarantined);
        quarantined.resumes = 1;
        quarantined.deadline_breaches = 1;
        quarantined.suspect_floor_days = 3;
        quarantined.last_error = Some("boom".into());

        let fleet = FleetHealth::new(vec![healthy, retried, quarantined]);
        assert_eq!(fleet.healthy(), 1);
        assert_eq!(fleet.quarantined(), 1);
        assert_eq!(fleet.count_at(ShardStage::Retried), 1);
        assert_eq!(fleet.restarts(), 1);
        assert_eq!(fleet.day_retries(), 2);
        assert_eq!(fleet.deadline_breaches(), 1);
        assert_eq!(fleet.suspect_floor_days(), 3);
        assert_eq!(fleet.worst_stage(), ShardStage::Quarantined);
        assert!(fleet.degraded());
        assert_eq!(FleetHealth::default().worst_stage(), ShardStage::Healthy);
        assert!(!FleetHealth::default().degraded());
    }

    #[test]
    fn fleet_health_serde_roundtrip() {
        let mut shard = ShardHealth::new(1, "c1");
        shard.escalate(ShardStage::Resumed);
        shard.resumes = 2;
        shard.last_error = Some("io: enospc".into());
        let fleet = FleetHealth::new(vec![shard]);
        let json = serde_json::to_string(&fleet).expect("serialize");
        let back: FleetHealth = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, fleet);
    }
}
