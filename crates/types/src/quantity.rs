//! Newtypes for physical and monetary quantities.
//!
//! Each quantity wraps an `f64` and implements only physically meaningful
//! arithmetic. Cross-type products follow the dimensional algebra of the
//! paper's pricing model: `PricePerKwh × Kwh = Dollars`, `Kw × hours = Kwh`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Declares a transparent `f64` newtype with the standard arithmetic ops.
macro_rules! quantity {
    ($(#[$doc:meta])* $name:ident, $unit:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw `f64` value expressed in this quantity's unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in this quantity's unit.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of the two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of the two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps the quantity into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` or either bound is NaN, mirroring
            /// [`f64::clamp`].
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` when the underlying value is finite
            /// (neither infinite nor NaN).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns `true` when the quantity is non-negative.
            #[inline]
            pub fn is_non_negative(self) -> bool {
                self.0 >= 0.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(precision) = f.precision() {
                    write!(f, "{:.*} {}", precision, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            fn from(value: $name) -> f64 {
                value.0
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// An amount of electrical energy in kilowatt-hours.
    ///
    /// Negative values are meaningful in net-metering contexts: a negative
    /// trading amount `y` means energy *sold back* to the grid (paper §2.2).
    Kwh,
    "kWh"
);

quantity!(
    /// An electrical power level in kilowatts.
    ///
    /// Appliance power levels `x_m^h` (paper §2.1) are expressed in kW;
    /// multiplying by an execution duration in hours yields [`Kwh`].
    Kw,
    "kW"
);

quantity!(
    /// A monetary amount in dollars. May be negative (net-metering credit).
    Dollars,
    "$"
);

quantity!(
    /// A unit electricity price in dollars per kilowatt-hour.
    ///
    /// In the paper's quadratic cost model this is the *guideline price*
    /// coefficient `p_h`; the community-level cost at slot `h` is
    /// `p_h · (Σ_n y_n^h)²`, so strictly the coefficient carries units of
    /// $/kWh². We keep the conventional name because the guideline price is
    /// broadcast and plotted as a $/kWh signal.
    PricePerKwh,
    "$/kWh"
);

impl Kw {
    /// Energy delivered when running at this power for `hours` hours.
    #[inline]
    pub fn for_hours(self, hours: f64) -> Kwh {
        Kwh::new(self.0 * hours)
    }
}

impl Kwh {
    /// Average power if this energy is spread uniformly over `hours` hours.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `hours` is zero.
    #[inline]
    pub fn over_hours(self, hours: f64) -> Kw {
        debug_assert!(hours != 0.0, "cannot average energy over zero hours");
        Kw::new(self.0 / hours)
    }
}

impl Mul<Kwh> for PricePerKwh {
    type Output = Dollars;
    #[inline]
    fn mul(self, rhs: Kwh) -> Dollars {
        Dollars::new(self.value() * rhs.value())
    }
}

impl Mul<PricePerKwh> for Kwh {
    type Output = Dollars;
    #[inline]
    fn mul(self, rhs: PricePerKwh) -> Dollars {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_subtract_energy() {
        let a = Kwh::new(2.0);
        let b = Kwh::new(0.5);
        assert_eq!(a + b, Kwh::new(2.5));
        assert_eq!(a - b, Kwh::new(1.5));
    }

    #[test]
    fn price_times_energy_is_money() {
        let bill = PricePerKwh::new(0.2) * Kwh::new(10.0);
        assert_eq!(bill, Dollars::new(2.0));
        let bill2 = Kwh::new(10.0) * PricePerKwh::new(0.2);
        assert_eq!(bill, bill2);
    }

    #[test]
    fn power_over_duration_is_energy() {
        assert_eq!(Kw::new(1.5).for_hours(2.0), Kwh::new(3.0));
        assert_eq!(Kwh::new(3.0).over_hours(2.0), Kw::new(1.5));
    }

    #[test]
    fn like_ratio_is_dimensionless() {
        let ratio: f64 = Kwh::new(3.0) / Kwh::new(2.0);
        assert!((ratio - 1.5).abs() < 1e-12);
    }

    #[test]
    fn negation_models_sold_energy() {
        let sold = -Kwh::new(1.2);
        assert!(!sold.is_non_negative());
        assert_eq!(sold.abs(), Kwh::new(1.2));
    }

    #[test]
    fn sum_of_iterator() {
        let total: Kwh = [Kwh::new(1.0), Kwh::new(2.0), Kwh::new(3.0)].iter().sum();
        assert_eq!(total, Kwh::new(6.0));
        let total2: Kwh = [Kwh::new(1.0), Kwh::new(2.0)].into_iter().sum();
        assert_eq!(total2, Kwh::new(3.0));
    }

    #[test]
    fn clamp_and_minmax() {
        let q = Kwh::new(5.0);
        assert_eq!(q.clamp(Kwh::ZERO, Kwh::new(3.0)), Kwh::new(3.0));
        assert_eq!(q.max(Kwh::new(7.0)), Kwh::new(7.0));
        assert_eq!(q.min(Kwh::new(7.0)), q);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{:.2}", Kwh::new(1.234)), "1.23 kWh");
        assert_eq!(format!("{:.1}", Dollars::new(2.0)), "2.0 $");
        assert_eq!(format!("{:.3}", PricePerKwh::new(0.1)), "0.100 $/kWh");
        assert_eq!(format!("{:.0}", Kw::new(3.0)), "3 kW");
    }

    #[test]
    fn scalar_multiplication_commutes() {
        assert_eq!(Kwh::new(2.0) * 3.0, 3.0 * Kwh::new(2.0));
    }

    #[test]
    fn conversion_round_trip() {
        let raw = 4.25_f64;
        let q = Kwh::from(raw);
        let back: f64 = q.into();
        assert_eq!(raw, back);
    }

    #[test]
    fn finite_check() {
        assert!(Kwh::new(1.0).is_finite());
        assert!(!Kwh::new(f64::NAN).is_finite());
        assert!(!Kwh::new(f64::INFINITY).is_finite());
    }
}
