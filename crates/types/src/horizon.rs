//! The scheduling horizon: a day (or multi-day window) divided into slots.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A scheduling horizon of `H` equal time slots (paper §2: "the next 24 hours
/// which is divided into `H` time slots").
///
/// The paper's evaluation uses hourly slots (`H = 24` for one day, `H = 48`
/// for the two-day long-term-detection experiment); the type supports any
/// slot duration.
///
/// # Examples
///
/// ```
/// use nms_types::Horizon;
///
/// let day = Horizon::hourly_day();
/// assert_eq!(day.slots(), 24);
/// assert!((day.slot_hours() - 1.0).abs() < 1e-12);
///
/// let two_days = Horizon::hourly(48);
/// assert_eq!(two_days.days(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Horizon {
    slots: usize,
    slot_hours: f64,
}

impl Horizon {
    /// Creates a horizon of `slots` slots, each lasting `slot_hours` hours.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or `slot_hours` is not strictly positive
    /// and finite.
    pub fn new(slots: usize, slot_hours: f64) -> Self {
        assert!(slots > 0, "a horizon needs at least one slot");
        assert!(
            slot_hours.is_finite() && slot_hours > 0.0,
            "slot duration must be a positive finite number of hours"
        );
        Self { slots, slot_hours }
    }

    /// A horizon of `slots` hourly slots.
    pub fn hourly(slots: usize) -> Self {
        Self::new(slots, 1.0)
    }

    /// The canonical 24-hour day with hourly slots used throughout the paper.
    pub fn hourly_day() -> Self {
        Self::hourly(24)
    }

    /// Number of slots `H` in the horizon.
    #[inline]
    pub const fn slots(&self) -> usize {
        self.slots
    }

    /// Duration of one slot in hours.
    #[inline]
    pub const fn slot_hours(&self) -> f64 {
        self.slot_hours
    }

    /// Total horizon length in hours.
    #[inline]
    pub fn total_hours(&self) -> f64 {
        self.slots as f64 * self.slot_hours
    }

    /// Total horizon length in days.
    #[inline]
    pub fn days(&self) -> f64 {
        self.total_hours() / 24.0
    }

    /// Iterator over all slot indices `0..H`.
    pub fn slot_indices(&self) -> std::ops::Range<usize> {
        0..self.slots
    }

    /// Wall-clock hour-of-day (0–23) at the *start* of slot `slot`.
    ///
    /// Multi-day horizons wrap: with hourly slots, slot 25 starts at 01:00.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.slots()`.
    pub fn hour_of_day(&self, slot: usize) -> f64 {
        assert!(
            slot < self.slots,
            "slot {slot} out of horizon ({})",
            self.slots
        );
        (slot as f64 * self.slot_hours) % 24.0
    }

    /// Returns `true` when `slot` starts within `[from_hour, to_hour)`
    /// wall-clock hours (used by PV models and attack windows).
    ///
    /// Handles wrapping windows such as 22:00–06:00.
    pub fn slot_in_daily_window(&self, slot: usize, from_hour: f64, to_hour: f64) -> bool {
        let h = self.hour_of_day(slot);
        if from_hour <= to_hour {
            h >= from_hour && h < to_hour
        } else {
            h >= from_hour || h < to_hour
        }
    }

    /// A clock that labels each slot for display, e.g. in experiment tables.
    pub fn clock(&self) -> SlotClock {
        SlotClock { horizon: *self }
    }
}

impl Default for Horizon {
    fn default() -> Self {
        Self::hourly_day()
    }
}

impl fmt::Display for Horizon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} slots × {} h", self.slots, self.slot_hours)
    }
}

/// Formats slot indices of a [`Horizon`] as wall-clock labels (`16:00`).
///
/// ```
/// use nms_types::Horizon;
///
/// let clock = Horizon::hourly_day().clock();
/// assert_eq!(clock.label(16), "16:00");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SlotClock {
    horizon: Horizon,
}

impl SlotClock {
    /// Wall-clock label for the start of `slot` (`HH:MM`).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is outside the horizon.
    pub fn label(&self, slot: usize) -> String {
        let h = self.horizon.hour_of_day(slot);
        let hours = h.floor() as u32;
        let minutes = ((h - h.floor()) * 60.0).round() as u32;
        format!("{hours:02}:{minutes:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hourly_day_has_24_slots() {
        let day = Horizon::hourly_day();
        assert_eq!(day.slots(), 24);
        assert_eq!(day.total_hours(), 24.0);
        assert_eq!(day.days(), 1.0);
    }

    #[test]
    fn hour_of_day_wraps_on_multiday() {
        let h = Horizon::hourly(48);
        assert_eq!(h.hour_of_day(0), 0.0);
        assert_eq!(h.hour_of_day(25), 1.0);
        assert_eq!(h.hour_of_day(47), 23.0);
    }

    #[test]
    fn sub_hourly_slots() {
        let h = Horizon::new(96, 0.25);
        assert_eq!(h.total_hours(), 24.0);
        assert_eq!(h.hour_of_day(5), 1.25);
        assert_eq!(h.clock().label(5), "01:15");
    }

    #[test]
    fn daily_window_plain_and_wrapping() {
        let h = Horizon::hourly(48);
        // Plain window 16:00–18:00 matches both days.
        assert!(h.slot_in_daily_window(16, 16.0, 18.0));
        assert!(h.slot_in_daily_window(17, 16.0, 18.0));
        assert!(!h.slot_in_daily_window(18, 16.0, 18.0));
        assert!(h.slot_in_daily_window(40, 16.0, 18.0)); // 16:00 of day 2
                                                         // Wrapping night window 22:00–06:00.
        assert!(h.slot_in_daily_window(23, 22.0, 6.0));
        assert!(h.slot_in_daily_window(2, 22.0, 6.0));
        assert!(!h.slot_in_daily_window(12, 22.0, 6.0));
    }

    #[test]
    fn clock_labels() {
        let clock = Horizon::hourly_day().clock();
        assert_eq!(clock.label(0), "00:00");
        assert_eq!(clock.label(16), "16:00");
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = Horizon::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn non_positive_slot_duration_rejected() {
        let _ = Horizon::new(24, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of horizon")]
    fn hour_of_day_bounds_checked() {
        let _ = Horizon::hourly_day().hour_of_day(24);
    }

    #[test]
    fn display_format() {
        assert_eq!(Horizon::hourly_day().to_string(), "24 slots × 1 h");
    }
}
