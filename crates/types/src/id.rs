//! Opaque identifiers for the entities of the smart home model.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! entity_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(usize);

        impl $name {
            /// Creates an identifier from its dense index.
            #[inline]
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// Returns the dense index backing this identifier.
            ///
            /// Entities are stored in `Vec`s throughout the workspace, so the
            /// index doubles as the storage position.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

entity_id!(
    /// Identifies one customer (household) `n ∈ {0, …, N-1}` in a community.
    CustomerId,
    "customer-"
);

entity_id!(
    /// Identifies one appliance `m ∈ A_n` within a customer's home.
    ///
    /// Appliance ids are scoped to their owning [`CustomerId`]; two customers
    /// may both own an `appliance-0`.
    ApplianceId,
    "appliance-"
);

entity_id!(
    /// Identifies one smart meter. In this model each customer owns exactly
    /// one meter, so meter indices coincide with customer indices, but the
    /// distinct type keeps attack-surface code (which manipulates *meters*)
    /// separate from scheduling code (which reasons about *customers*).
    MeterId,
    "meter-"
);

impl MeterId {
    /// The customer whose home this meter is attached to.
    #[inline]
    pub const fn customer(self) -> CustomerId {
        CustomerId::new(self.index())
    }
}

impl CustomerId {
    /// The smart meter attached to this customer's home.
    #[inline]
    pub const fn meter(self) -> MeterId {
        MeterId::new(self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_is_prefixed() {
        assert_eq!(CustomerId::new(7).to_string(), "customer-7");
        assert_eq!(ApplianceId::new(0).to_string(), "appliance-0");
        assert_eq!(MeterId::new(3).to_string(), "meter-3");
    }

    #[test]
    fn round_trips_through_usize() {
        let id = CustomerId::from(42usize);
        assert_eq!(usize::from(id), 42);
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn meter_customer_correspondence() {
        let meter = MeterId::new(9);
        assert_eq!(meter.customer(), CustomerId::new(9));
        assert_eq!(CustomerId::new(9).meter(), meter);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(MeterId::new(1));
        set.insert(MeterId::new(1));
        set.insert(MeterId::new(2));
        assert_eq!(set.len(), 2);
        assert!(CustomerId::new(1) < CustomerId::new(2));
    }
}
