//! Shared error types.

use std::error::Error;
use std::fmt;

/// Two per-slot containers were combined but disagree on slot count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HorizonMismatchError {
    /// Slot count of the left-hand/expected horizon.
    pub expected: usize,
    /// Slot count actually supplied.
    pub actual: usize,
}

impl fmt::Display for HorizonMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "horizon mismatch: expected {} slots, got {}",
            self.expected, self.actual
        )
    }
}

impl Error for HorizonMismatchError {}

/// A domain object failed validation when constructed or mutated.
///
/// Carried by constructors throughout the workspace (appliance specs whose
/// deadline precedes their start time, batteries with negative capacity, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    message: String,
}

impl ValidateError {
    /// Creates a validation error with a human-readable cause.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The human-readable cause.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "validation failed: {}", self.message)
    }
}

impl Error for ValidateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_mismatch_displays_both_counts() {
        let err = HorizonMismatchError {
            expected: 24,
            actual: 48,
        };
        let text = err.to_string();
        assert!(text.contains("24"));
        assert!(text.contains("48"));
    }

    #[test]
    fn validate_error_carries_message() {
        let err = ValidateError::new("deadline precedes start");
        assert_eq!(err.message(), "deadline precedes start");
        assert!(err.to_string().contains("deadline precedes start"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<HorizonMismatchError>();
        assert_err::<ValidateError>();
    }
}
