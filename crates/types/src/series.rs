//! A per-slot time series aligned to a [`Horizon`].

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::error::HorizonMismatchError;
use crate::Horizon;

/// A value per time slot of a [`Horizon`] — the workhorse container for
/// prices, loads, PV generation, and battery trajectories.
///
/// `TimeSeries` deliberately stores its horizon so that arithmetic between
/// series from different horizons fails loudly instead of silently zipping
/// mismatched slots.
///
/// # Examples
///
/// ```
/// use nms_types::{Horizon, TimeSeries};
///
/// let mut load = TimeSeries::filled(Horizon::hourly_day(), 0.0_f64);
/// load[18] = 4.2;
/// assert_eq!(load.iter().filter(|&&x| x > 0.0).count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries<T> {
    horizon: Horizon,
    values: Vec<T>,
}

impl<T> TimeSeries<T> {
    /// Builds a series from pre-computed per-slot values.
    ///
    /// # Errors
    ///
    /// Returns [`HorizonMismatchError`] when `values.len()` differs from the
    /// horizon's slot count.
    pub fn from_values(horizon: Horizon, values: Vec<T>) -> Result<Self, HorizonMismatchError> {
        if values.len() != horizon.slots() {
            return Err(HorizonMismatchError {
                expected: horizon.slots(),
                actual: values.len(),
            });
        }
        Ok(Self { horizon, values })
    }

    /// Builds a series by evaluating `f` at each slot index.
    pub fn from_fn(horizon: Horizon, mut f: impl FnMut(usize) -> T) -> Self {
        let values = horizon.slot_indices().map(&mut f).collect();
        Self { horizon, values }
    }

    /// The horizon this series is aligned to.
    #[inline]
    pub fn horizon(&self) -> Horizon {
        self.horizon
    }

    /// Number of slots (equals `self.horizon().slots()`).
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always `false`: a [`Horizon`] has at least one slot.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Borrowing iterator over slot values.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.values.iter()
    }

    /// Mutable iterator over slot values.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.values.iter_mut()
    }

    /// The values as a slice, in slot order.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.values
    }

    /// Consumes the series, returning the backing vector.
    #[inline]
    pub fn into_values(self) -> Vec<T> {
        self.values
    }

    /// Returns a series over the same horizon with `f` applied per slot.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> TimeSeries<U> {
        TimeSeries {
            horizon: self.horizon,
            values: self.values.iter().map(f).collect(),
        }
    }

    /// Combines two series slot-wise.
    ///
    /// # Errors
    ///
    /// Returns [`HorizonMismatchError`] when the horizons have different slot
    /// counts.
    pub fn zip_with<U, V>(
        &self,
        other: &TimeSeries<U>,
        mut f: impl FnMut(&T, &U) -> V,
    ) -> Result<TimeSeries<V>, HorizonMismatchError> {
        if self.len() != other.len() {
            return Err(HorizonMismatchError {
                expected: self.len(),
                actual: other.len(),
            });
        }
        Ok(TimeSeries {
            horizon: self.horizon,
            values: self
                .values
                .iter()
                .zip(other.values.iter())
                .map(|(a, b)| f(a, b))
                .collect(),
        })
    }
}

impl<T: Clone> TimeSeries<T> {
    /// A series with every slot set to `value`.
    pub fn filled(horizon: Horizon, value: T) -> Self {
        Self {
            horizon,
            values: vec![value; horizon.slots()],
        }
    }
}

impl TimeSeries<f64> {
    /// Sum of all slot values.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Arithmetic mean over slots.
    pub fn mean(&self) -> f64 {
        self.total() / self.len() as f64
    }

    /// Largest slot value (NaN values are ignored).
    pub fn peak(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest slot value (NaN values are ignored).
    pub fn trough(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Index of the largest slot value (first one on ties).
    pub fn peak_slot(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.values.iter().enumerate() {
            if v > self.values[best] {
                best = i;
            }
        }
        best
    }

    /// Peak-to-average ratio, the paper's central load-shape metric.
    ///
    /// Returns `None` when the mean is not strictly positive (a flat-zero or
    /// net-negative profile has no meaningful PAR).
    pub fn par(&self) -> Option<f64> {
        let mean = self.mean();
        (mean > 0.0).then(|| self.peak() / mean)
    }

    /// Slot-wise sum of two aligned series.
    ///
    /// # Errors
    ///
    /// Returns [`HorizonMismatchError`] on differing slot counts.
    pub fn add(&self, other: &Self) -> Result<Self, HorizonMismatchError> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Slot-wise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`HorizonMismatchError`] on differing slot counts.
    pub fn sub(&self, other: &Self) -> Result<Self, HorizonMismatchError> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Series with every slot multiplied by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        self.map(|v| v * factor)
    }

    /// Root-mean-square error against another aligned series.
    ///
    /// # Errors
    ///
    /// Returns [`HorizonMismatchError`] on differing slot counts.
    pub fn rmse(&self, other: &Self) -> Result<f64, HorizonMismatchError> {
        let diff = self.sub(other)?;
        let mse = diff.values.iter().map(|d| d * d).sum::<f64>() / diff.len() as f64;
        Ok(mse.sqrt())
    }

    /// Accumulates `Σ_n series_n` slot-wise over an iterator of aligned
    /// series, starting from zero on `horizon`.
    ///
    /// # Errors
    ///
    /// Returns [`HorizonMismatchError`] if any series disagrees on slot count.
    pub fn sum_all<'a>(
        horizon: Horizon,
        series: impl IntoIterator<Item = &'a TimeSeries<f64>>,
    ) -> Result<Self, HorizonMismatchError> {
        let mut acc = TimeSeries::filled(horizon, 0.0);
        for s in series {
            acc = acc.add(s)?;
        }
        Ok(acc)
    }
}

impl<T> Index<usize> for TimeSeries<T> {
    type Output = T;
    #[inline]
    fn index(&self, slot: usize) -> &T {
        &self.values[slot]
    }
}

impl<T> IndexMut<usize> for TimeSeries<T> {
    #[inline]
    fn index_mut(&mut self, slot: usize) -> &mut T {
        &mut self.values[slot]
    }
}

impl<'a, T> IntoIterator for &'a TimeSeries<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

impl<T> IntoIterator for TimeSeries<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.into_iter()
    }
}

impl<T: fmt::Display> fmt::Display for TimeSeries<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if let Some(p) = f.precision() {
                write!(f, "{v:.p$}")?;
            } else {
                write!(f, "{v}")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    #[test]
    fn from_values_checks_length() {
        assert!(TimeSeries::from_values(day(), vec![0.0; 24]).is_ok());
        let err = TimeSeries::from_values(day(), vec![0.0; 23]).unwrap_err();
        assert_eq!(err.expected, 24);
        assert_eq!(err.actual, 23);
    }

    #[test]
    fn from_fn_evaluates_per_slot() {
        let s = TimeSeries::from_fn(day(), |h| h as f64);
        assert_eq!(s[0], 0.0);
        assert_eq!(s[23], 23.0);
        assert_eq!(s.total(), (0..24).sum::<usize>() as f64);
    }

    #[test]
    fn par_of_flat_profile_is_one() {
        let s = TimeSeries::filled(day(), 2.5);
        assert!((s.par().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn par_of_zero_profile_is_none() {
        let s = TimeSeries::filled(day(), 0.0);
        assert!(s.par().is_none());
    }

    #[test]
    fn peak_slot_finds_first_max() {
        let mut s = TimeSeries::filled(day(), 1.0);
        s[5] = 9.0;
        s[7] = 9.0;
        assert_eq!(s.peak_slot(), 5);
        assert_eq!(s.peak(), 9.0);
        assert_eq!(s.trough(), 1.0);
    }

    #[test]
    fn arithmetic_and_rmse() {
        let a = TimeSeries::from_fn(day(), |h| h as f64);
        let b = TimeSeries::filled(day(), 1.0);
        let sum = a.add(&b).unwrap();
        assert_eq!(sum[3], 4.0);
        let diff = sum.sub(&a).unwrap();
        assert!(diff.iter().all(|&v| (v - 1.0).abs() < 1e-12));
        assert!((sum.rmse(&a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_horizons_error() {
        let a = TimeSeries::filled(day(), 1.0);
        let b = TimeSeries::filled(Horizon::hourly(48), 1.0);
        assert!(a.add(&b).is_err());
        assert!(a.zip_with(&b, |x, y| x + y).is_err());
    }

    #[test]
    fn sum_all_accumulates() {
        let parts = vec![TimeSeries::filled(day(), 1.0); 5];
        let total = TimeSeries::sum_all(day(), &parts).unwrap();
        assert!(total.iter().all(|&v| (v - 5.0).abs() < 1e-12));
    }

    #[test]
    fn map_and_scaled() {
        let s = TimeSeries::filled(day(), 2.0);
        assert_eq!(s.scaled(3.0)[0], 6.0);
        let labels = s.map(|v| format!("{v}"));
        assert_eq!(labels[0], "2");
    }

    #[test]
    fn display_with_precision() {
        let s = TimeSeries::filled(Horizon::hourly(2), 1.2345);
        assert_eq!(format!("{s:.2}"), "[1.23, 1.23]");
    }

    proptest! {
        #[test]
        fn prop_par_at_least_one(values in proptest::collection::vec(0.01_f64..100.0, 24)) {
            let s = TimeSeries::from_values(day(), values).unwrap();
            let par = s.par().unwrap();
            prop_assert!(par >= 1.0 - 1e-12);
        }

        #[test]
        fn prop_scaling_preserves_par(
            values in proptest::collection::vec(0.01_f64..100.0, 24),
            factor in 0.1_f64..10.0,
        ) {
            let s = TimeSeries::from_values(day(), values).unwrap();
            let par = s.par().unwrap();
            let par_scaled = s.scaled(factor).par().unwrap();
            prop_assert!((par - par_scaled).abs() < 1e-9);
        }

        #[test]
        fn prop_add_commutes(
            a in proptest::collection::vec(-50.0_f64..50.0, 24),
            b in proptest::collection::vec(-50.0_f64..50.0, 24),
        ) {
            let sa = TimeSeries::from_values(day(), a).unwrap();
            let sb = TimeSeries::from_values(day(), b).unwrap();
            let ab = sa.add(&sb).unwrap();
            let ba = sb.add(&sa).unwrap();
            for h in 0..24 {
                prop_assert!((ab[h] - ba[h]).abs() < 1e-12);
            }
        }
    }
}
