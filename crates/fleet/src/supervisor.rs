//! The day-lockstep supervisor: drives every shard one day at a time
//! through the isolating map, escalates failures up the ladder, and keeps
//! the ledgers.

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use nms_obs::names::fleet as names;
use nms_obs::span;
use nms_par::{par_map_outcomes_recorded, Outcome};
use nms_sim::{LongTermRunResult, SupervisedRun};
use nms_types::{FleetHealth, ShardHealth, ShardStage};

use crate::{FleetConfig, FleetError, FleetOptions, ShardSpec};

/// One shard's final deliverable.
#[derive(Debug)]
pub struct ShardReport {
    /// Shard index within the fleet.
    pub shard: usize,
    /// The community label, echoed from the spec.
    pub community: String,
    /// The run result. Complete for every non-quarantined shard; for a
    /// quarantined shard it is the best-effort result over the journaled
    /// prefix (its verdicts are degraded — see the shard's
    /// `suspect_floor_days`), or `None` when even recovery failed.
    pub result: Option<LongTermRunResult>,
}

/// What [`run_fleet`] returns: per-shard results plus the supervision
/// ledger. The fleet itself never fails at runtime — failure is data here.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-shard results, in spec order.
    pub shards: Vec<ShardReport>,
    /// The aggregated supervision ledger, in spec order.
    pub health: FleetHealth,
}

/// One shard's mutable supervision state. Lives behind a `Mutex` so the
/// isolating map's `Fn` closures can step it; each shard is touched by
/// exactly one worker per day, so the lock is uncontended — it exists for
/// the type system, not for blocking.
struct ShardSlot {
    index: usize,
    spec: ShardSpec,
    options: nms_sim::SupervisedOptions,
    health: ShardHealth,
    /// The live run. `None` between incarnations: the initial build, every
    /// retry, and every resume all lazily rebuild from the journal through
    /// the same path, so "fresh start" and "recovery" cannot drift apart.
    run: Option<SupervisedRun>,
    consecutive_deadline_breaches: usize,
    quarantined: bool,
}

impl ShardSlot {
    fn finished(&self) -> bool {
        self.health.days_completed >= self.spec.config.detection_days
    }
}

/// What a successful day close reports back to the supervisor.
struct DayClose {
    /// Wall-clock seconds the close took (build/rebuild included).
    secs: f64,
    /// The deadline watchdog's verdict, if it fired.
    breach: Option<String>,
    /// Days the shard has completed after this close.
    days_completed: usize,
}

/// Locks a slot, recovering from poisoning: a shard closure that panicked
/// poisons its mutex, but the supervisor's whole job is to keep going —
/// the in-memory run is discarded (rebuilt from the journal) anyway, and
/// the health ledger is plain counters.
fn lock(slot: &Mutex<ShardSlot>) -> MutexGuard<'_, ShardSlot> {
    slot.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Closes day `day` for one shard: lazily (re)build the run from its
/// journal, fire the chaos hook, step the day, and check the deadline.
///
/// This is the ONLY function the isolating map ever runs, for scheduled
/// days and ladder re-attempts alike — one code path, one containment
/// story. It may panic (the hook is allowed to, and so is any shard code);
/// the map converts that into `Outcome::Panicked`.
fn close_day(
    slot: &Mutex<ShardSlot>,
    day: usize,
    config: &FleetConfig,
    options: &FleetOptions,
) -> Result<DayClose, String> {
    let mut slot = lock(slot);
    let slot = &mut *slot;
    let watch = Instant::now();
    if slot.run.is_none() {
        let run = SupervisedRun::with_options(
            &slot.spec.scenario,
            &slot.spec.config,
            slot.spec.seed,
            &slot.spec.journal_path,
            slot.options.clone(),
        )
        .map_err(|err| format!("shard build failed: {err}"))?;
        slot.run = Some(run);
    }
    let index = slot.index;
    if let Some(hook) = &options.day_hook {
        hook(index, day);
    }
    let clock = match &options.clock_for {
        Some(factory) => factory(index, day, config.day_deadline),
        None => config.day_deadline.start(),
    };
    let run = slot
        .run
        .as_mut()
        .ok_or_else(|| "shard run vanished between build and step".to_string())?;
    run.step_day().map_err(|err| format!("day {day} failed: {err}"))?;
    Ok(DayClose {
        secs: watch.elapsed().as_secs_f64(),
        breach: clock.breach(0),
        days_completed: run.completed_days(),
    })
}

/// Runs the fleet to completion and reports.
///
/// Shard failures never propagate: panics are contained by the isolating
/// map, errors climb the ladder, and the worst case is a quarantined shard
/// with a best-effort partial result. The fleet's own contract is
/// "never panics, always reports".
///
/// # Errors
///
/// Only configuration problems surface as [`FleetError`]: an empty spec
/// list or invalid [`FleetConfig`] knobs.
pub fn run_fleet(
    specs: Vec<ShardSpec>,
    config: &FleetConfig,
    options: FleetOptions,
) -> Result<FleetReport, FleetError> {
    if specs.is_empty() {
        return Err(FleetError::NoShards);
    }
    config
        .validate()
        .map_err(|err| FleetError::Config(err.to_string()))?;

    let total_days = specs
        .iter()
        .map(|spec| spec.config.detection_days)
        .max()
        .unwrap_or(0);
    let slots: Vec<Mutex<ShardSlot>> = specs
        .into_iter()
        .enumerate()
        .map(|(index, spec)| {
            let health = ShardHealth::new(index, spec.community.clone());
            Mutex::new(ShardSlot {
                index,
                spec,
                options: options.options_for(index),
                health,
                run: None,
                consecutive_deadline_breaches: 0,
                quarantined: false,
            })
        })
        .collect();
    let rec = options.recorder.clone();

    for day in 0..total_days {
        let _day_span = span(rec.as_ref(), "fleet_day");
        let active: Vec<usize> = slots
            .iter()
            .map(|slot| lock(slot))
            .filter(|slot| !slot.quarantined && !slot.finished())
            .map(|slot| slot.index)
            .collect();
        rec.gauge(names::SHARDS_ACTIVE, active.len() as f64);
        if active.is_empty() {
            break;
        }

        // The parallel section: every active shard closes its day behind
        // the isolating map. The recorder only sees nms-par's own
        // post-join worker tallies here; fleet metrics are recorded in
        // the sequential ladder below, keeping events out of the
        // parallel region (the PR 4 contract).
        let outcomes = par_map_outcomes_recorded(
            config.parallelism.threads,
            &active,
            rec.as_ref(),
            |_, &index| close_day(&slots[index], day, config, &options),
        );

        // The sequential ladder: escalate each failed shard in spec order.
        for (&index, outcome) in active.iter().zip(outcomes) {
            let slot = &slots[index];
            match outcome {
                Outcome::Ok(close) => {
                    on_day_closed(slot, close, config, &options, rec.as_ref());
                }
                Outcome::Err(message) => {
                    lock(slot).health.last_error = Some(message);
                    climb_ladder(slot, day, config, &options, rec.as_ref(), true);
                }
                Outcome::Panicked(message) => {
                    rec.add(names::PANICS_CONTAINED, 1);
                    lock(slot).health.last_error = Some(message);
                    // A panic leaves the in-memory incarnation untrusted;
                    // skip the retry rung and resume from the journal.
                    climb_ladder(slot, day, config, &options, rec.as_ref(), false);
                }
            }
        }
        let quarantined = slots.iter().filter(|slot| lock(slot).quarantined).count();
        rec.gauge(names::SHARDS_QUARANTINED, quarantined as f64);

        // The day's quiescence point: workers joined, ladders settled,
        // gauges booked. Telemetry publishers snapshot here.
        if let Some(observer) = &options.on_day_close {
            let ledgers: Vec<ShardHealth> =
                slots.iter().map(|slot| lock(slot).health.clone()).collect();
            observer(day, &FleetHealth::new(ledgers));
        }
    }

    // Harvest: finish live runs; recover quarantined shards best-effort
    // from whatever prefix their journals hold.
    let _harvest_span = span(rec.as_ref(), "harvest");
    let mut reports = Vec::with_capacity(slots.len());
    let mut ledgers = Vec::with_capacity(slots.len());
    for slot in &slots {
        let mut slot = lock(slot);
        let result = if slot.quarantined {
            recover_quarantined(&mut slot)
        } else {
            finish_slot(&mut slot)
        };
        if let Some(result) = &result {
            slot.health.run = result.health.clone();
        }
        reports.push(ShardReport {
            shard: slot.index,
            community: slot.spec.community.clone(),
            result,
        });
        ledgers.push(slot.health.clone());
    }
    Ok(FleetReport {
        shards: reports,
        health: FleetHealth::new(ledgers),
    })
}

/// Books a successful close: ledger, metrics, and the deadline watchdog's
/// verdict (which can quarantine a chronically slow shard — *after* its
/// completed day is banked).
fn on_day_closed(
    slot: &Mutex<ShardSlot>,
    close: DayClose,
    config: &FleetConfig,
    options: &FleetOptions,
    rec: &dyn nms_obs::Recorder,
) {
    let mut slot = lock(slot);
    slot.health.days_completed = close.days_completed;
    rec.add(names::DAYS_CLOSED, 1);
    rec.observe(names::DAY_CLOSE_SECONDS, close.secs);
    match close.breach {
        Some(message) => {
            slot.health.deadline_breaches += 1;
            slot.consecutive_deadline_breaches += 1;
            slot.health.last_error = Some(message);
            rec.add(names::DEADLINE_BREACHES, 1);
            if slot.consecutive_deadline_breaches > config.ladder.max_deadline_breaches {
                quarantine(&mut slot, options, rec);
            }
        }
        None => slot.consecutive_deadline_breaches = 0,
    }
}

/// Escalates a failed shard-day: (optionally) the retry rung, then the
/// resume rung, then the breaker. Every re-attempt goes back through
/// [`close_day`] via a single-item isolating map, so ladder attempts enjoy
/// exactly the same panic containment as scheduled days.
fn climb_ladder(
    slot: &Mutex<ShardSlot>,
    day: usize,
    config: &FleetConfig,
    options: &FleetOptions,
    rec: &dyn nms_obs::Recorder,
    start_with_retries: bool,
) {
    // Whatever happened, the in-memory incarnation is no longer trusted:
    // a day that failed *after* mutating state (e.g. at the journal
    // append) would double-apply if stepped again in place. Rebuilding
    // from the journal is safe by construction.
    lock(slot).run = None;

    let mut resume_next = !start_with_retries;
    if start_with_retries {
        for attempt in 1..=config.ladder.max_day_retries {
            let _retry_span = span(rec, "ladder_retry");
            std::thread::sleep(std::time::Duration::from_millis(
                config.ladder.retry_backoff_ms.saturating_mul(attempt as u64),
            ));
            {
                let mut slot = lock(slot);
                slot.health.day_retries += 1;
                slot.health.escalate(ShardStage::Retried);
            }
            rec.add(names::DAY_RETRIES, 1);
            match attempt_once(slot, day, config, options, rec) {
                Attempt::Closed => return,
                // A panic mid-retry escalates straight out of the rung; a
                // plain failure burns the next attempt.
                Attempt::Panicked => break,
                Attempt::Failed => continue,
            }
        }
        resume_next = true;
    }

    if resume_next {
        loop {
            let resumes_used = {
                let slot = lock(slot);
                slot.health.resumes
            };
            if resumes_used >= config.ladder.max_resumes {
                break;
            }
            let _resume_span = span(rec, "ladder_resume");
            {
                let mut slot = lock(slot);
                slot.health.resumes += 1;
                slot.health.escalate(ShardStage::Resumed);
                slot.run = None;
            }
            rec.add(names::SHARD_RESTARTS, 1);
            if let Some(hook) = &options.before_resume {
                hook(lock(slot).index);
            }
            if let Attempt::Closed = attempt_once(slot, day, config, options, rec) {
                return;
            }
        }
    }

    let mut slot = lock(slot);
    quarantine(&mut slot, options, rec);
}

/// The verdict of one ladder re-attempt.
enum Attempt {
    Closed,
    Failed,
    Panicked,
}

/// Runs one ladder re-attempt through the same isolating map as scheduled
/// days (a single-item map: same capture path, zero thread spawns).
fn attempt_once(
    slot: &Mutex<ShardSlot>,
    day: usize,
    config: &FleetConfig,
    options: &FleetOptions,
    rec: &dyn nms_obs::Recorder,
) -> Attempt {
    let mut outcomes = par_map_outcomes_recorded(1, &[()], &nms_obs::NoopRecorder, |_, _item| {
        close_day(slot, day, config, options)
    });
    match outcomes.pop() {
        Some(Outcome::Ok(close)) => {
            on_day_closed(slot, close, config, options, rec);
            Attempt::Closed
        }
        Some(Outcome::Err(message)) => {
            lock(slot).health.last_error = Some(message);
            lock(slot).run = None;
            Attempt::Failed
        }
        Some(Outcome::Panicked(message)) => {
            rec.add(names::PANICS_CONTAINED, 1);
            lock(slot).health.last_error = Some(message);
            lock(slot).run = None;
            Attempt::Panicked
        }
        None => Attempt::Failed,
    }
}

/// Trips the breaker: the shard leaves the rotation, and every day it will
/// no longer really run is booked as a degraded suspect-floor verdict.
fn quarantine(slot: &mut ShardSlot, _options: &FleetOptions, rec: &dyn nms_obs::Recorder) {
    if slot.quarantined {
        return;
    }
    slot.quarantined = true;
    slot.run = None;
    slot.health.escalate(ShardStage::Quarantined);
    let remaining = slot
        .spec
        .config
        .detection_days
        .saturating_sub(slot.health.days_completed);
    slot.health.suspect_floor_days = remaining;
    rec.add(names::QUARANTINES, 1);
    rec.add(names::SUSPECT_FLOOR_DAYS, remaining as u64);
}

/// Finishes a live (non-quarantined) shard into its result.
fn finish_slot(slot: &mut ShardSlot) -> Option<LongTermRunResult> {
    let run = match slot.run.take() {
        Some(run) => Some(run),
        // A shard can reach harvest without a live run only if it never
        // got one (e.g. zero detection days) — build one so finish() has
        // something to summarize.
        None => SupervisedRun::with_options(
            &slot.spec.scenario,
            &slot.spec.config,
            slot.spec.seed,
            &slot.spec.journal_path,
            slot.options.clone(),
        )
        .map_err(|err| {
            slot.health.last_error = Some(format!("harvest build failed: {err}"));
        })
        .ok(),
    };
    match run.map(SupervisedRun::finish) {
        Some(Ok(result)) => Some(result),
        Some(Err(err)) => {
            slot.health.last_error = Some(format!("finish failed: {err}"));
            None
        }
        None => None,
    }
}

/// Best-effort recovery of a quarantined shard: rebuild from whatever
/// prefix the journal holds and summarize it. The rebuild itself runs
/// behind the isolating map — a quarantined shard's storage may be dead in
/// arbitrarily hostile ways, and recovery must not take the fleet down
/// either.
fn recover_quarantined(slot: &mut ShardSlot) -> Option<LongTermRunResult> {
    let scenario = slot.spec.scenario.clone();
    let config = slot.spec.config.clone();
    let seed = slot.spec.seed;
    let path = slot.spec.journal_path.clone();
    let options = slot.options.clone();
    let mut outcomes =
        par_map_outcomes_recorded(1, &[()], &nms_obs::NoopRecorder, move |_, _item| {
            SupervisedRun::with_options(&scenario, &config, seed, &path, options.clone())
                .and_then(SupervisedRun::finish)
                .map_err(|err| format!("quarantine recovery failed: {err}"))
        });
    match outcomes.pop() {
        Some(Outcome::Ok(result)) => Some(result),
        Some(Outcome::Err(message)) | Some(Outcome::Panicked(message)) => {
            slot.health.last_error = Some(message);
            None
        }
        None => None,
    }
}
