//! Supervised multi-community fleet: shard isolation, a typed failure
//! ladder, and quarantine circuit breakers (DESIGN.md §13).
//!
//! The paper evaluates detection for one community; the roadmap's resident
//! service shards across many. That shape is only viable if one
//! community's failure cannot take down the rest — so this crate drives K
//! communities as independent **shards**, each with its own
//! [`SupervisedRun`], journal path, per-`(community, seed, day)` ChaCha8
//! streams, and (via [`SupervisedOptions`]) its own storage and fault
//! ledger. Shards advance in day lockstep through
//! [`nms_par::par_map_outcomes`], the non-rethrowing map: a shard that
//! panics or errors yields a per-item verdict instead of killing the
//! process, and the supervisor escalates it up a typed ladder:
//!
//! 1. **Retry** the day (bounded linear backoff, rebuilding the shard from
//!    its journal so a half-applied day can never double-apply);
//! 2. **Resume** the shard wholesale from its journal (the PR 2/PR 6
//!    kill-and-resume machinery), optionally after a storage-revival hook;
//! 3. **Quarantine** the community: the breaker trips, remaining days are
//!    counted as degraded suspect-floor verdicts, and the fleet recovers
//!    whatever result the journaled prefix supports.
//!
//! A per-shard day-close deadline ([`SolveBudget`] via the injectable
//! [`BudgetClock`](nms_types::BudgetClock)) converts hangs into ladder
//! steps. Everything supervision does is tallied in a
//! [`FleetHealth`](nms_types::FleetHealth) ledger and mirrored to
//! [`nms_obs::names::fleet`] metrics.
//!
//! ## Determinism contract
//!
//! Shard streams are *derived*, never drawn: shard `i` seeds every day
//! from `(spec.seed, day)` alone, and [`shard_seed`] derives `spec.seed`
//! from `(fleet_seed, community_index)` by pure mixing. No shard's
//! schedule, failure, retry, resume, or quarantine consumes another
//! shard's randomness, so a healthy shard is bit-identical to the same
//! community run solo — at any thread count, with any subset of its
//! siblings panicking, stalling, or losing their disks
//! (`tests/fleet_chaos.rs` is the proof).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod supervisor;

use std::path::PathBuf;
use std::sync::Arc;

use nms_obs::{NoopRecorder, Recorder};
use nms_par::Parallelism;
use nms_sim::{LongTermRunConfig, PaperScenario, SupervisedOptions};
use nms_types::{BudgetClock, FleetHealth, SolveBudget, ValidateError};
use serde::{Deserialize, Serialize};

pub use supervisor::{run_fleet, FleetReport, ShardReport};

/// One community's slot in the fleet: what to run, under which seed, and
/// where its journal lives.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Human-readable community label (lands in the health ledger).
    pub community: String,
    /// The community to simulate.
    pub scenario: PaperScenario,
    /// The detection run configuration.
    pub config: LongTermRunConfig,
    /// The shard's own seed; derive it with [`shard_seed`] so communities
    /// stay decorrelated without sharing any RNG stream.
    pub seed: u64,
    /// Where this shard journals completed days. Every shard must get its
    /// own path (on its own [`SupervisedOptions::vfs`] if isolation from
    /// sibling storage faults matters).
    pub journal_path: PathBuf,
}

impl ShardSpec {
    /// Builds a spec with the seed derived from `(fleet_seed, index)`.
    pub fn derived(
        community: impl Into<String>,
        scenario: PaperScenario,
        config: LongTermRunConfig,
        fleet_seed: u64,
        index: usize,
        journal_path: impl Into<PathBuf>,
    ) -> Self {
        Self {
            community: community.into(),
            scenario,
            config,
            seed: shard_seed(fleet_seed, index),
            journal_path: journal_path.into(),
        }
    }
}

/// The per-shard seed for community `index` of a fleet seeded with
/// `fleet_seed`.
///
/// A splitmix64-style finalizer: seeds are *derived* by mixing, never drawn
/// from a shared RNG, so adding, removing, or quarantining one shard can
/// never shift a sibling's stream — the property the chaos harness's
/// healthy-shard-equals-solo-run assertion rests on.
pub fn shard_seed(fleet_seed: u64, index: usize) -> u64 {
    let mut z = fleet_seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((index as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The failure ladder's per-rung bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetLadder {
    /// Day-level retry attempts (rung 1) before escalating to a resume.
    /// Zero skips the rung entirely.
    #[serde(default)]
    pub max_day_retries: usize,
    /// Linear backoff unit in milliseconds: retry attempt `k` (1-based)
    /// sleeps `k · retry_backoff_ms` before re-attempting.
    #[serde(default)]
    pub retry_backoff_ms: u64,
    /// Full journal resumes (rung 2) allowed per shard across the whole
    /// run before the breaker trips. Zero escalates failures straight to
    /// quarantine.
    #[serde(default)]
    pub max_resumes: usize,
    /// Consecutive day-close deadline breaches tolerated before the shard
    /// is quarantined. The breached days themselves still close — the
    /// deadline converts *slowness* into ladder pressure, it does not
    /// discard completed work.
    #[serde(default)]
    pub max_deadline_breaches: usize,
}

impl Default for FleetLadder {
    fn default() -> Self {
        Self {
            max_day_retries: 2,
            retry_backoff_ms: 2,
            max_resumes: 2,
            max_deadline_breaches: 2,
        }
    }
}

impl FleetLadder {
    /// Checks the ladder is usable.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] for an unbounded backoff (over a minute
    /// per step — almost certainly a unit mistake).
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.retry_backoff_ms > 60_000 {
            return Err(ValidateError::new(
                "retry backoff over 60s per step — milliseconds expected",
            ));
        }
        Ok(())
    }
}

/// Fleet-wide supervision configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The failure ladder bounds.
    pub ladder: FleetLadder,
    /// Per-shard day-close deadline. Only `max_wall_secs` is meaningful
    /// here (a day close has no iteration count); [`SolveBudget::unlimited`]
    /// disables the watchdog.
    pub day_deadline: SolveBudget,
    /// Worker threads driving shards concurrently. Results are
    /// bit-identical at any setting.
    pub parallelism: Parallelism,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            ladder: FleetLadder::default(),
            day_deadline: SolveBudget::unlimited(),
            parallelism: Parallelism::default(),
        }
    }
}

impl FleetConfig {
    /// Validates every knob.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] from the first invalid component.
    pub fn validate(&self) -> Result<(), ValidateError> {
        self.ladder.validate()?;
        self.day_deadline.validate()?;
        self.parallelism
            .validate()
            .map_err(ValidateError::new)?;
        Ok(())
    }
}

/// A chaos/test hook observing `(shard_index, day)` just before the day is
/// stepped; panicking here simulates an arbitrary shard-code panic.
pub type DayHook = Arc<dyn Fn(usize, usize) + Send + Sync>;
/// A clock factory for the day-close deadline of `(shard_index, day)`;
/// tests inject [`BudgetClock::with_elapsed`] to make breaches
/// deterministic.
pub type ClockFor = Arc<dyn Fn(usize, usize, SolveBudget) -> BudgetClock + Send + Sync>;
/// A hook run before a shard resume (rung 2), e.g. to revive a killed
/// `FaultVfs` the way a reboot revives a disk.
pub type BeforeResume = Arc<dyn Fn(usize) + Send + Sync>;
/// An observer called from the **sequential** supervisor section after
/// each day's ladder settles, with `(day, fleet_health_snapshot)`. This is
/// the publication point for live telemetry (`nms-serve` snapshots): it
/// runs at a quiescence point — no shard worker is in flight — so a
/// publisher may render registries and health without racing the run, and
/// nothing it does can feed back into shard randomness.
pub type DayCloseObserver = Arc<dyn Fn(usize, &FleetHealth) + Send + Sync>;

/// Injectable fleet plumbing: per-shard supervised-run options, the fleet
/// recorder, and the chaos hooks. `Default` is production plumbing — real
/// filesystem per shard, no recorder, no hooks.
#[derive(Clone)]
pub struct FleetOptions {
    /// Per-shard [`SupervisedOptions`], indexed like the spec list. Shards
    /// beyond the vector's length (or all shards, when empty) get
    /// `SupervisedOptions::default()`. Each entry's clone is reused across
    /// every rebuild of its shard, so its storage-fault ledger accumulates
    /// across the shard's incarnations while staying invisible to
    /// siblings.
    pub shard_options: Vec<SupervisedOptions>,
    /// Fleet-level telemetry (ladder counters, day-close histograms,
    /// quarantine gauge — see [`nms_obs::names::fleet`]). Recorded only
    /// from the sequential supervisor section, never inside shard workers.
    pub recorder: Arc<dyn Recorder>,
    /// Chaos: observe (or panic inside) a shard's day closure.
    pub day_hook: Option<DayHook>,
    /// Chaos: replace the day-close deadline clock.
    pub clock_for: Option<ClockFor>,
    /// Chaos/recovery: run before a rung-2 resume of a shard.
    pub before_resume: Option<BeforeResume>,
    /// Telemetry: observe each day close from the sequential supervisor
    /// section (see [`DayCloseObserver`]).
    pub on_day_close: Option<DayCloseObserver>,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            shard_options: Vec::new(),
            recorder: Arc::new(NoopRecorder),
            day_hook: None,
            clock_for: None,
            before_resume: None,
            on_day_close: None,
        }
    }
}

impl std::fmt::Debug for FleetOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetOptions")
            .field("shard_options", &self.shard_options.len())
            .field("day_hook", &self.day_hook.is_some())
            .field("clock_for", &self.clock_for.is_some())
            .field("before_resume", &self.before_resume.is_some())
            .field("on_day_close", &self.on_day_close.is_some())
            .finish_non_exhaustive()
    }
}

impl FleetOptions {
    /// Production plumbing with a recorder attached.
    pub fn recorded(recorder: Arc<dyn Recorder>) -> Self {
        Self {
            recorder,
            ..Self::default()
        }
    }

    /// The options for shard `index` (a fresh default beyond the vector).
    pub(crate) fn options_for(&self, index: usize) -> SupervisedOptions {
        self.shard_options
            .get(index)
            .cloned()
            .unwrap_or_default()
    }
}

/// A fleet-level configuration error. Shard *runtime* failures never
/// surface here — they are contained by the ladder and reported in
/// [`FleetReport::health`](supervisor::FleetReport).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The fleet was asked to run zero shards.
    NoShards,
    /// A configuration knob failed validation.
    Config(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoShards => write!(f, "fleet needs at least one shard"),
            FleetError::Config(detail) => write!(f, "invalid fleet configuration: {detail}"),
        }
    }
}

impl std::error::Error for FleetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_seeds_are_decorrelated_and_stable() {
        let a = shard_seed(23, 0);
        let b = shard_seed(23, 1);
        let c = shard_seed(24, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, shard_seed(23, 0), "derivation must be pure");
        // Neighboring indices differ in many bits, not just the low ones.
        assert!((a ^ b).count_ones() > 8, "{a:#x} vs {b:#x}");
    }

    #[test]
    fn ladder_and_config_validate() {
        assert!(FleetLadder::default().validate().is_ok());
        let mut ladder = FleetLadder::default();
        ladder.retry_backoff_ms = 120_000;
        assert!(ladder.validate().is_err());
        assert!(FleetConfig::default().validate().is_ok());
        let mut config = FleetConfig::default();
        config.parallelism = Parallelism::new(0);
        assert!(config.validate().is_err());
    }

    #[test]
    fn ladder_serde_defaults_to_zeroed_rungs() {
        let ladder: FleetLadder = serde_json::from_str("{}").expect("empty ladder loads");
        assert_eq!(ladder.max_day_retries, 0);
        assert_eq!(ladder.max_resumes, 0);
        let roundtrip: FleetLadder =
            serde_json::from_str(&serde_json::to_string(&FleetLadder::default()).unwrap())
                .unwrap();
        assert_eq!(roundtrip, FleetLadder::default());
    }

    #[test]
    fn options_for_pads_with_defaults() {
        let options = FleetOptions::default();
        let first = options.options_for(0);
        let second = options.options_for(7);
        assert!(!first.storage.shares_with(&second.storage));
        let debug = format!("{options:?}");
        assert!(debug.contains("shard_options"), "{debug}");
    }
}
