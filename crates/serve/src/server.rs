//! The resident HTTP listener and the snapshot publisher feeding it.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use serde::Serialize;

use nms_obs::{seal_event, MetricsRegistry, Recorder, TraceEvent};
use nms_types::{FleetHealth, ShardStage, StorageFaultCounts};

use crate::http::{parse_request_line, parse_tail_count, render_response};
use crate::SharedRegistry;

/// Default number of sealed trace lines the tail ring retains.
const DEFAULT_TAIL_CAPACITY: usize = 256;

/// Default `n` for `/trace/tail` when the query does not set one.
const DEFAULT_TAIL_LINES: usize = 32;

/// Per-connection socket timeout: a wedged scraper must not hold the
/// single-threaded accept loop hostage.
const SOCKET_TIMEOUT: Duration = Duration::from_millis(2000);

/// What the server hands out: pre-rendered snapshot strings, written only
/// by the publisher at sequential quiescence points.
struct Published {
    metrics: String,
    health: String,
    trace_tail: VecDeque<String>,
}

impl Published {
    fn new() -> Self {
        Self {
            metrics: String::new(),
            // An operator scraping before the first publish sees an
            // explicitly-empty report, not a parse error.
            health: "{\"status\":\"starting\"}".to_string(),
            trace_tail: VecDeque::new(),
        }
    }
}

fn lock(state: &Mutex<Published>) -> std::sync::MutexGuard<'_, Published> {
    state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The `/health` payload: fleet aggregates, ladder rung counts, storage
/// fault tallies, and the full per-shard ledgers.
#[derive(Serialize)]
struct HealthBody {
    status: String,
    /// Most recently closed fleet day, when the publisher knows one.
    day: Option<usize>,
    worst_stage: String,
    shards_healthy: usize,
    shards_retried: usize,
    shards_resumed: usize,
    shards_quarantined: usize,
    restarts: usize,
    day_retries: usize,
    deadline_breaches: usize,
    suspect_floor_days: usize,
    storage: StorageFaultCounts,
    shards: Vec<nms_types::ShardHealth>,
}

/// The write side of the telemetry plane. Clones share the same server
/// state. Publish calls belong in **sequential** sections only (day-close,
/// harvest) — that placement, not any lock, is what makes scraped counters
/// monotone and keeps the server off the bit-identity path.
#[derive(Clone)]
pub struct SnapshotPublisher {
    state: Arc<Mutex<Published>>,
    tail_capacity: usize,
}

impl SnapshotPublisher {
    /// Publishes an already-rendered Prometheus exposition.
    pub fn publish_metrics_text(&self, text: String) {
        lock(&self.state).metrics = text;
    }

    /// Renders and publishes `registry`'s exposition.
    pub fn publish_metrics(&self, registry: &MetricsRegistry) {
        self.publish_metrics_text(registry.render_prometheus());
    }

    /// Renders and publishes the merged exposition of a striped registry.
    pub fn publish_shared(&self, registry: &SharedRegistry) {
        self.publish_metrics_text(registry.render_prometheus());
    }

    /// Publishes the `/health` snapshot: per-shard stage and ledgers from
    /// `fleet`, plus the aggregated storage-fault tally (pass
    /// `StorageFaultCounts::default()` when no ledger is wired). `day` is
    /// the most recently closed fleet day, when known.
    pub fn publish_health(
        &self,
        day: Option<usize>,
        fleet: &FleetHealth,
        storage: StorageFaultCounts,
    ) {
        let body = HealthBody {
            status: if fleet.degraded() { "degraded" } else { "ok" }.to_string(),
            day,
            worst_stage: fleet.worst_stage().as_str().to_string(),
            shards_healthy: fleet.healthy(),
            shards_retried: fleet.count_at(ShardStage::Retried),
            shards_resumed: fleet.count_at(ShardStage::Resumed),
            shards_quarantined: fleet.quarantined(),
            restarts: fleet.restarts(),
            day_retries: fleet.day_retries(),
            deadline_breaches: fleet.deadline_breaches(),
            suspect_floor_days: fleet.suspect_floor_days(),
            storage,
            shards: fleet.shards.clone(),
        };
        let json = serde_json::to_string(&body)
            .unwrap_or_else(|err| format!("{{\"status\":\"render_error\",\"detail\":{:?}}}", err.to_string()));
        lock(&self.state).health = json;
    }

    /// Appends one sealed trace line to the tail ring (oldest lines fall
    /// off past the ring's capacity).
    pub fn push_trace_line(&self, line: String) {
        let mut state = lock(&self.state);
        if state.trace_tail.len() >= self.tail_capacity {
            state.trace_tail.pop_front();
        }
        state.trace_tail.push_back(line);
    }

    /// The currently published exposition (what `/metrics` serves).
    pub fn metrics_text(&self) -> String {
        lock(&self.state).metrics.clone()
    }

    /// The currently published health JSON (what `/health` serves).
    pub fn health_text(&self) -> String {
        lock(&self.state).health.clone()
    }
}

/// A [`Recorder`] event sink that mirrors sealed trace lines into the
/// server's tail ring. Tee it next to a [`JsonlTrace`](nms_obs::JsonlTrace)
/// writing the same events: a tailed line is byte-identical to the file's
/// line (same seal), so `/trace/tail` is a window onto the real trace.
pub struct TraceTail {
    publisher: SnapshotPublisher,
}

impl TraceTail {
    /// A tail sink feeding `publisher`'s ring.
    pub fn new(publisher: SnapshotPublisher) -> Self {
        Self { publisher }
    }
}

impl Recorder for TraceTail {
    fn enabled(&self) -> bool {
        true
    }

    fn event(&self, event: &TraceEvent) {
        if let Some(line) = seal_event(event) {
            self.publisher.push_trace_line(line);
        }
    }
}

/// The resident HTTP/1.0 scrape server. Binding spawns one listener
/// thread; dropping the server (or calling [`TelemetryServer::shutdown`])
/// stops it. Handlers only ever read the published snapshots.
pub struct TelemetryServer {
    addr: SocketAddr,
    state: Arc<Mutex<Published>>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9600"`; port 0 picks a free port)
    /// and starts serving.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(Mutex::new(Published::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("nms-serve".to_string())
                .spawn(move || serve_loop(&listener, &state, &stop))?
        };
        Ok(Self {
            addr,
            state,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A publisher handle writing to this server's snapshot state.
    pub fn publisher(&self) -> SnapshotPublisher {
        SnapshotPublisher {
            state: Arc::clone(&self.state),
            tail_capacity: DEFAULT_TAIL_CAPACITY,
        }
    }

    /// Stops the listener thread and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_loop(listener: &TcpListener, state: &Mutex<Published>, stop: &AtomicBool) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // One connection at a time: scrape requests are tiny, and a
        // serial loop cannot be amplified into a thread bomb.
        let _ = handle_connection(stream, state);
    }
}

fn handle_connection(stream: TcpStream, state: &Mutex<Published>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let response = respond(line.trim_end(), state);
    let mut stream = reader.into_inner();
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Routes one request line to its response. Pure string-to-string, which
/// is what makes the endpoints unit-testable without sockets.
fn respond(request_line: &str, state: &Mutex<Published>) -> String {
    let Some(request) = parse_request_line(request_line) else {
        return render_response(400, "Bad Request", "text/plain", "malformed request line\n");
    };
    if request.method != "GET" {
        return render_response(405, "Method Not Allowed", "text/plain", "GET only\n");
    }
    match request.path.as_str() {
        "/metrics" => {
            let body = lock(state).metrics.clone();
            render_response(200, "OK", "text/plain; version=0.0.4", &body)
        }
        "/health" => {
            let body = lock(state).health.clone();
            render_response(200, "OK", "application/json", &body)
        }
        "/trace/tail" => match parse_tail_count(request.query.as_deref(), DEFAULT_TAIL_LINES) {
            Ok(n) => {
                let state = lock(state);
                let skip = state.trace_tail.len().saturating_sub(n);
                let mut body = String::new();
                for line in state.trace_tail.iter().skip(skip) {
                    body.push_str(line);
                    body.push('\n');
                }
                render_response(200, "OK", "application/x-ndjson", &body)
            }
            Err(detail) => render_response(400, "Bad Request", "text/plain", &format!("{detail}\n")),
        },
        _ => render_response(404, "Not Found", "text/plain", "unknown path\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn scrape(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {target} HTTP/1.0\r\n\r\n").as_bytes())
            .expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let status = response
            .split_whitespace()
            .nth(1)
            .and_then(|code| code.parse().ok())
            .expect("status code");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, body)| body.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn endpoints_serve_published_snapshots() {
        let server = TelemetryServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let publisher = server.publisher();

        let (_, body) = scrape(addr, "/metrics");
        assert_eq!(body, "", "nothing published yet");
        let (_, body) = scrape(addr, "/health");
        assert!(body.contains("starting"), "{body}");

        let registry = MetricsRegistry::new();
        registry.add_counter("fleet_days_closed", 3);
        publisher.publish_metrics(&registry);
        publisher.publish_health(Some(2), &FleetHealth::default(), StorageFaultCounts::default());
        publisher.push_trace_line("{\"hash\":\"00\",\"body\":\"{}\"}".to_string());

        let (status, body) = scrape(addr, "/metrics");
        assert_eq!(status, 200);
        assert_eq!(body, registry.render_prometheus());
        let (status, body) = scrape(addr, "/health");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"day\":2"), "{body}");
        let (status, body) = scrape(addr, "/trace/tail?n=1");
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 1);

        let (status, _) = scrape(addr, "/nope");
        assert_eq!(status, 404);
        let (status, _) = scrape(addr, "/trace/tail?n=zero");
        assert_eq!(status, 400);
        server.shutdown();
    }

    #[test]
    fn non_get_and_garbage_requests_are_rejected() {
        let state = Mutex::new(Published::new());
        assert!(respond("POST /metrics HTTP/1.0", &state).starts_with("HTTP/1.0 405"));
        assert!(respond("complete garbage", &state).starts_with("HTTP/1.0 400"));
        assert!(respond("GET /metrics HTTP/1.0", &state).starts_with("HTTP/1.0 200"));
    }

    #[test]
    fn tail_ring_is_bounded_and_ordered() {
        let server = TelemetryServer::bind("127.0.0.1:0").expect("bind");
        let publisher = server.publisher();
        for index in 0..(DEFAULT_TAIL_CAPACITY + 10) {
            publisher.push_trace_line(format!("line-{index}"));
        }
        let state = lock(&server.state);
        assert_eq!(state.trace_tail.len(), DEFAULT_TAIL_CAPACITY);
        assert_eq!(
            state.trace_tail.back().map(String::as_str),
            Some(format!("line-{}", DEFAULT_TAIL_CAPACITY + 9).as_str())
        );
        assert_eq!(state.trace_tail.front().map(String::as_str), Some("line-10"));
    }

    #[test]
    fn trace_tail_recorder_mirrors_sealed_lines() {
        let server = TelemetryServer::bind("127.0.0.1:0").expect("bind");
        let publisher = server.publisher();
        let tail = TraceTail::new(publisher.clone());
        assert!(tail.enabled());
        let event = TraceEvent::new("day_phases").day(1);
        tail.event(&event);
        let state = lock(&server.state);
        assert_eq!(
            state.trace_tail.back().cloned(),
            seal_event(&event),
            "tail lines must be byte-identical to file lines"
        );
    }
}
