//! Minimal HTTP/1.0 request parsing and response rendering — just enough
//! protocol for a scrape endpoint, with no dependency beyond `std`.

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Request {
    pub method: String,
    pub path: String,
    pub query: Option<String>,
}

/// Parses `"GET /metrics?x=1 HTTP/1.0"` into a [`Request`]. `None` for
/// anything that is not a three-part HTTP request line.
pub(crate) fn parse_request_line(line: &str) -> Option<Request> {
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if parts.next().is_some() || !version.starts_with("HTTP/") {
        return None;
    }
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, Some(query.to_string())),
        None => (target, None),
    };
    Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
    })
}

/// Extracts `n` from a `/trace/tail` query string, defaulting to
/// `default` when the query (or the `n` key) is absent.
///
/// # Errors
///
/// Returns a message when `n` is present but not a positive integer.
pub(crate) fn parse_tail_count(query: Option<&str>, default: usize) -> Result<usize, String> {
    let Some(query) = query else {
        return Ok(default);
    };
    for pair in query.split('&') {
        let Some((key, value)) = pair.split_once('=') else {
            continue;
        };
        if key != "n" {
            continue;
        }
        return match value.parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(format!("n must be a positive integer, got {value:?}")),
        };
    }
    Ok(default)
}

/// Renders a complete HTTP/1.0 response with `Connection: close`.
pub(crate) fn render_response(status: u16, reason: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_parse_with_and_without_query() {
        let request = parse_request_line("GET /metrics HTTP/1.0").unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/metrics");
        assert_eq!(request.query, None);

        let request = parse_request_line("GET /trace/tail?n=12 HTTP/1.1").unwrap();
        assert_eq!(request.path, "/trace/tail");
        assert_eq!(request.query.as_deref(), Some("n=12"));

        assert!(parse_request_line("").is_none());
        assert!(parse_request_line("GET /metrics").is_none());
        assert!(parse_request_line("GET /a b HTTP/1.0").is_none(), "four parts");
        assert!(parse_request_line("GET /metrics SPDY/3").is_none());
    }

    #[test]
    fn tail_counts_default_and_validate() {
        assert_eq!(parse_tail_count(None, 32), Ok(32));
        assert_eq!(parse_tail_count(Some("n=5"), 32), Ok(5));
        assert_eq!(parse_tail_count(Some("other=1"), 32), Ok(32));
        assert_eq!(parse_tail_count(Some("other=1&n=7"), 32), Ok(7));
        assert!(parse_tail_count(Some("n=0"), 32).is_err());
        assert!(parse_tail_count(Some("n=-3"), 32).is_err());
        assert!(parse_tail_count(Some("n=many"), 32).is_err());
    }

    #[test]
    fn responses_carry_length_and_close() {
        let response = render_response(200, "OK", "text/plain", "hello\n");
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        assert!(response.contains("Content-Length: 6\r\n"));
        assert!(response.contains("Connection: close\r\n"));
        assert!(response.ends_with("\r\n\r\nhello\n"));
    }
}
