//! The live telemetry plane (DESIGN.md §14): a resident, zero-dependency
//! HTTP exposition of what a running fleet is doing.
//!
//! PR 4's observability layer snapshots its Prometheus exposition only
//! *after* a run finishes; a multi-day fleet is a black box exactly when
//! an operator needs it least to be. This crate closes that gap with
//! three pieces, all `std::net` only (vendored-stub compatible — no
//! hyper, no tokio):
//!
//! - [`TelemetryServer`] — a hand-rolled HTTP/1.0 listener serving
//!   `GET /metrics` (Prometheus text), `GET /health` (fleet health JSON),
//!   and `GET /trace/tail?n=K` (the last K sealed trace lines);
//! - [`SharedRegistry`] — a lock-striped [`MetricsRegistry`] wrapper for
//!   fleets whose shard workers record concurrently: each metric name
//!   hashes to exactly one stripe, so stripes merge disjointly into one
//!   deterministic exposition;
//! - [`SnapshotPublisher`] — the write side of the server's state. The
//!   fleet's **sequential** supervisor section publishes a pre-rendered
//!   snapshot after each day-close; scrapes read only published
//!   snapshots.
//!
//! ## The determinism argument
//!
//! The PR 4 contract says telemetry must never change results. The server
//! preserves it structurally:
//!
//! 1. Workers never touch the server. Only the supervisor's sequential
//!    section calls [`SnapshotPublisher::publish`]*, at day-close
//!    quiescence points where no shard worker is running.
//! 2. The server never touches the registries. Scrape handlers read
//!    pre-rendered strings from the published snapshot; no request can
//!    observe (or perturb) a half-recorded day, which is also why mid-run
//!    counters are **monotone**: each published snapshot is a quiescent
//!    prefix of the next.
//! 3. Nothing flows back. The serving thread shares no state with the
//!    pipeline except the snapshot strings, so a slow, hostile, or absent
//!    scraper cannot shift a single RNG draw — with `--serve` or without,
//!    results are bit-identical (`tests/serve_live.rs` asserts it).
//!
//! [`MetricsRegistry`]: nms_obs::MetricsRegistry

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod http;
mod registry;
mod server;

pub use registry::SharedRegistry;
pub use server::{SnapshotPublisher, TelemetryServer, TraceTail};
