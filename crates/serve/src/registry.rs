//! The lock-striped metrics registry for concurrently recording fleets.
//!
//! A single [`MetricsRegistry`] is one mutex; K shard workers all landing
//! their solver tallies on it serialize on that lock. [`SharedRegistry`]
//! splits the namespace across a fixed set of stripes by FNV-1a hash of
//! the metric *name*: the same name always lands on the same stripe, so
//! workers recording different metrics proceed in parallel, and the
//! stripes hold **disjoint** name sets — merging them back into one
//! registry is a plain fold with no double counting, and the merged
//! exposition is deterministic (names render in `BTreeMap` order
//! regardless of which stripe held them).

use std::sync::Arc;

use nms_obs::trace::fnv1a64;
use nms_obs::{MetricsRegistry, Recorder, TraceEvent};

/// Default stripe count: enough to keep an 8–16 shard fleet's workers off
/// each other's locks without materializing dozens of registries.
const DEFAULT_STRIPES: usize = 8;

/// A lock-striped [`MetricsRegistry`] wrapper. Cloning shares the stripes
/// (like cloning a `MetricsRegistry` shares its storage), so one handle
/// can be teed to every shard worker and another kept for rendering.
#[derive(Debug, Clone)]
pub struct SharedRegistry {
    stripes: Arc<Vec<MetricsRegistry>>,
}

impl Default for SharedRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedRegistry {
    /// A registry with the default stripe count.
    pub fn new() -> Self {
        Self::with_stripes(DEFAULT_STRIPES)
    }

    /// A registry striped `stripes` ways (clamped to at least one).
    pub fn with_stripes(stripes: usize) -> Self {
        let stripes = stripes.max(1);
        Self {
            stripes: Arc::new((0..stripes).map(|_| MetricsRegistry::new()).collect()),
        }
    }

    /// The stripe owning `name`. Same name, same stripe — always.
    fn stripe(&self, name: &str) -> &MetricsRegistry {
        let index = (fnv1a64(name.as_bytes()) % self.stripes.len() as u64) as usize;
        &self.stripes[index]
    }

    /// Current value of counter `name` (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.stripe(name).counter(name)
    }

    /// Current value of gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.stripe(name).gauge_value(name)
    }

    /// A snapshot of histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<nms_obs::Histogram> {
        self.stripe(name).histogram(name)
    }

    /// Folds every stripe into one standalone [`MetricsRegistry`]
    /// snapshot. Stripes own disjoint name sets, so the fold never merges
    /// two partial views of the same metric.
    pub fn merged(&self) -> MetricsRegistry {
        let merged = MetricsRegistry::new();
        for stripe in self.stripes.iter() {
            merged.merge_from(stripe);
        }
        merged
    }

    /// Renders the merged exposition — byte-identical to calling
    /// [`MetricsRegistry::render_prometheus`] on [`SharedRegistry::merged`].
    pub fn render_prometheus(&self) -> String {
        self.merged().render_prometheus()
    }
}

impl Recorder for SharedRegistry {
    // `enabled` stays false: like the plain registry, stripes ignore
    // events; an event sink belongs in a `Tee` next to this.
    fn event(&self, event: &TraceEvent) {
        let _ = event;
    }

    fn add(&self, name: &str, by: u64) {
        self.stripe(name).add_counter(name, by);
    }

    fn gauge(&self, name: &str, value: f64) {
        self.stripe(name).set_gauge(name, value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.stripe(name).observe_value(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_routes_to_the_same_stripe() {
        let shared = SharedRegistry::with_stripes(4);
        shared.add(
            "fleet_days_closed",
            1,
        );
        shared.add("fleet_days_closed", 2);
        assert_eq!(shared.counter("fleet_days_closed"), 3);
        assert!(std::ptr::eq(
            shared.stripe("fleet_days_closed"),
            shared.stripe("fleet_days_closed"),
        ));
    }

    #[test]
    fn merged_exposition_matches_an_unstriped_registry() {
        let shared = SharedRegistry::with_stripes(5);
        let flat = MetricsRegistry::new();
        let names = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
        for (index, name) in names.iter().enumerate() {
            shared.add(name, index as u64 + 1);
            flat.add_counter(name, index as u64 + 1);
            shared.observe(&format!("{name}_secs"), index as f64);
            flat.observe_value(&format!("{name}_secs"), index as f64);
        }
        shared.gauge("level", 0.5);
        flat.set_gauge("level", 0.5);
        assert_eq!(shared.render_prometheus(), flat.render_prometheus());
    }

    #[test]
    fn clones_share_stripes_and_single_stripe_degenerates_cleanly() {
        let shared = SharedRegistry::with_stripes(0);
        let worker = shared.clone();
        worker.add("hits", 7);
        assert_eq!(shared.counter("hits"), 7);
        assert_eq!(shared.merged().counter("hits"), 7);
        assert_eq!(shared.gauge_value("absent"), None);
        assert!(shared.histogram("absent").is_none());
    }

    #[test]
    fn concurrent_workers_tally_commutatively() {
        let shared = SharedRegistry::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    for index in 0..100u64 {
                        shared.add("solver_rounds", 1);
                        shared.observe("solver_secs", index as f64 % 3.0);
                    }
                })
            })
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
        assert_eq!(shared.counter("solver_rounds"), 400);
        let histogram = shared.histogram("solver_secs").expect("recorded");
        assert_eq!(histogram.count(), 400);
    }
}
