//! Attacker behavior over time: who gets hacked, and when.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use nms_types::{MeterId, ValidateError};

use crate::{CompromiseSet, PriceAttack};

/// Parameters of a stochastic attacker that compromises meters over a
/// multi-slot simulation (the long-term-detection setting of §4.2/Fig 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackerConfig {
    /// Probability that a new intrusion campaign starts at any given slot.
    pub intrusion_probability: f64,
    /// Number of meters compromised per campaign (capped by the fleet).
    pub meters_per_intrusion: usize,
    /// Ceiling on simultaneously compromised meters.
    pub max_compromised: usize,
    /// The price manipulation installed on every compromised meter.
    pub attack: PriceAttack,
}

impl AttackerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when the probability is outside `[0, 1]`
    /// or the campaign size is zero.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if !(0.0..=1.0).contains(&self.intrusion_probability)
            || !self.intrusion_probability.is_finite()
        {
            return Err(ValidateError::new(
                "intrusion probability must be in [0, 1]",
            ));
        }
        if self.meters_per_intrusion == 0 {
            return Err(ValidateError::new("campaign must hack at least one meter"));
        }
        Ok(())
    }
}

impl Default for AttackerConfig {
    fn default() -> Self {
        Self {
            intrusion_probability: 0.25,
            meters_per_intrusion: 25,
            max_compromised: 150,
            attack: PriceAttack::ZeroWindow {
                from_hour: 16.0,
                to_hour: 18.0,
            },
        }
    }
}

/// A stochastic attacker driven by an [`AttackerConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StochasticAttacker {
    config: AttackerConfig,
    fleet_size: usize,
}

impl StochasticAttacker {
    /// Creates an attacker against a fleet of `fleet_size` meters.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] on an invalid config or an empty fleet.
    pub fn new(config: AttackerConfig, fleet_size: usize) -> Result<Self, ValidateError> {
        config.validate()?;
        if fleet_size == 0 {
            return Err(ValidateError::new("fleet must have at least one meter"));
        }
        Ok(Self { config, fleet_size })
    }

    /// The attacker's configuration.
    #[inline]
    pub fn config(&self) -> &AttackerConfig {
        &self.config
    }

    /// Advances one slot: possibly launches a campaign, mutating
    /// `compromised` and returning the newly hacked meters.
    pub fn step(&self, compromised: &mut CompromiseSet, rng: &mut impl Rng) -> Vec<MeterId> {
        if compromised.count() >= self.config.max_compromised {
            return Vec::new();
        }
        if !rng.gen_bool(self.config.intrusion_probability) {
            return Vec::new();
        }
        let mut healthy: Vec<MeterId> = (0..self.fleet_size)
            .map(MeterId::new)
            .filter(|m| !compromised.is_hacked(*m))
            .collect();
        healthy.shuffle(rng);
        let budget = self.config.meters_per_intrusion.min(
            self.config
                .max_compromised
                .saturating_sub(compromised.count()),
        );
        let newly: Vec<MeterId> = healthy.into_iter().take(budget).collect();
        compromised.extend(newly.iter().copied());
        newly
    }
}

/// A deterministic, scripted attack timeline: at each listed slot, the given
/// number of additional meters is compromised. Used by reproducible
/// experiments (Fig 6 / Table 1) where the ground truth must be identical
/// across detector configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackTimeline {
    /// `(slot, meters_to_hack)` events, sorted by slot.
    events: Vec<(usize, usize)>,
    /// The manipulation installed on compromised meters.
    attack: PriceAttack,
}

impl AttackTimeline {
    /// Builds a timeline from `(slot, meters_to_hack)` events.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] if any event hacks zero meters.
    pub fn new(
        mut events: Vec<(usize, usize)>,
        attack: PriceAttack,
    ) -> Result<Self, ValidateError> {
        if events.iter().any(|&(_, n)| n == 0) {
            return Err(ValidateError::new(
                "timeline events must hack at least one meter",
            ));
        }
        events.sort_by_key(|&(slot, _)| slot);
        Ok(Self { events, attack })
    }

    /// The manipulation compromised meters apply.
    #[inline]
    pub fn attack(&self) -> &PriceAttack {
        &self.attack
    }

    /// The scripted events, sorted by slot.
    #[inline]
    pub fn events(&self) -> &[(usize, usize)] {
        &self.events
    }

    /// Executes the events scheduled for `slot`: compromises the
    /// lowest-indexed healthy meters (deterministic), returning them.
    pub fn step(
        &self,
        slot: usize,
        compromised: &mut CompromiseSet,
        fleet_size: usize,
    ) -> Vec<MeterId> {
        let mut newly = Vec::new();
        for &(event_slot, count) in &self.events {
            if event_slot != slot {
                continue;
            }
            let mut remaining = count;
            for index in 0..fleet_size {
                if remaining == 0 {
                    break;
                }
                let meter = MeterId::new(index);
                if compromised.hack(meter) {
                    newly.push(meter);
                    remaining -= 1;
                }
            }
        }
        newly
    }

    /// Total meters the timeline attempts to hack.
    pub fn total_meters(&self) -> usize {
        self.events.iter().map(|&(_, n)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn config_validation() {
        assert!(AttackerConfig::default().validate().is_ok());
        let bad = AttackerConfig {
            intrusion_probability: 1.5,
            ..AttackerConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = AttackerConfig {
            meters_per_intrusion: 0,
            ..AttackerConfig::default()
        };
        assert!(bad.validate().is_err());
        assert!(StochasticAttacker::new(AttackerConfig::default(), 0).is_err());
    }

    #[test]
    fn stochastic_attacker_respects_cap() {
        let config = AttackerConfig {
            intrusion_probability: 1.0,
            meters_per_intrusion: 40,
            max_compromised: 60,
            ..AttackerConfig::default()
        };
        let attacker = StochasticAttacker::new(config, 100).unwrap();
        let mut compromised = CompromiseSet::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10 {
            attacker.step(&mut compromised, &mut rng);
        }
        assert!(compromised.count() <= 60);
        assert_eq!(compromised.count(), 60);
    }

    #[test]
    fn stochastic_attacker_is_deterministic_under_seed() {
        let attacker = StochasticAttacker::new(AttackerConfig::default(), 50).unwrap();
        let run = |seed| {
            let mut compromised = CompromiseSet::new();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for _ in 0..20 {
                attacker.step(&mut compromised, &mut rng);
            }
            compromised
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn timeline_hacks_scripted_counts() {
        let timeline = AttackTimeline::new(
            vec![(5, 3), (2, 2)],
            PriceAttack::zero_window(16.0, 17.0).unwrap(),
        )
        .unwrap();
        // Events get sorted.
        assert_eq!(timeline.events()[0].0, 2);
        assert_eq!(timeline.total_meters(), 5);

        let mut compromised = CompromiseSet::new();
        assert!(timeline.step(0, &mut compromised, 10).is_empty());
        let at2 = timeline.step(2, &mut compromised, 10);
        assert_eq!(at2.len(), 2);
        let at5 = timeline.step(5, &mut compromised, 10);
        assert_eq!(at5.len(), 3);
        assert_eq!(compromised.count(), 5);
        // Deterministic: lowest ids first.
        assert!(compromised.is_hacked(MeterId::new(0)));
        assert!(compromised.is_hacked(MeterId::new(4)));
        assert!(!compromised.is_hacked(MeterId::new(5)));
    }

    #[test]
    fn timeline_saturates_at_fleet_size() {
        let timeline = AttackTimeline::new(vec![(0, 10)], PriceAttack::InvertAroundMean).unwrap();
        let mut compromised = CompromiseSet::new();
        let newly = timeline.step(0, &mut compromised, 4);
        assert_eq!(newly.len(), 4);
        assert_eq!(compromised.count(), 4);
    }

    #[test]
    fn timeline_rejects_empty_events() {
        assert!(AttackTimeline::new(vec![(0, 0)], PriceAttack::InvertAroundMean).is_err());
    }
}
