//! Attack impact assessment: what the attacker gains and what the
//! community loses when schedules respond to a manipulated price but are
//! billed at the real one.
//!
//! The companion attacks of \[8\] target either the victims' *bills* (honest
//! homes pay more) or the grid's *PAR* (stability damage); both are
//! quantified here from a clean/attacked schedule pair.

use serde::{Deserialize, Serialize};

use nms_pricing::{BillingEngine, NetMeteringTariff, PriceSignal};
use nms_smarthome::CommunitySchedule;
use nms_types::{Dollars, HorizonMismatchError};

use crate::CompromiseSet;

/// The measured impact of a pricing attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackImpact {
    /// Clean grid PAR.
    pub clean_par: f64,
    /// Attacked grid PAR.
    pub attacked_par: f64,
    /// Relative PAR increase (`(attacked − clean) / clean`).
    pub par_increase: f64,
    /// Relative peak-demand increase.
    pub peak_increase: f64,
    /// Net bill change of the compromised homes (negative = they saved —
    /// a successful bill attack from the hacker's clients' viewpoint).
    pub hacked_bill_change: Dollars,
    /// Net bill change of the honest homes (positive = collateral cost).
    pub honest_bill_change: Dollars,
    /// Change in the community's total billed amount.
    pub community_bill_change: Dollars,
}

impl AttackImpact {
    /// Compares a clean and an attacked schedule of the *same* community,
    /// billing both at the real broadcast price.
    ///
    /// # Errors
    ///
    /// Returns [`HorizonMismatchError`] when the schedules and the price
    /// signal disagree on slot count.
    ///
    /// # Panics
    ///
    /// Panics if the two schedules cover different customer counts.
    pub fn assess(
        clean: &CommunitySchedule,
        attacked: &CommunitySchedule,
        real_price: &PriceSignal,
        tariff: NetMeteringTariff,
        compromised: &CompromiseSet,
    ) -> Result<Self, HorizonMismatchError> {
        assert_eq!(
            clean.customer_schedules().len(),
            attacked.customer_schedules().len(),
            "schedules cover different communities"
        );
        let engine = BillingEngine::new(real_price.clone(), tariff);
        let clean_bills = engine.bill(clean)?;
        let attacked_bills = engine.bill(attacked)?;

        let mut hacked_bill_change = Dollars::ZERO;
        let mut honest_bill_change = Dollars::ZERO;
        for (before, after) in clean_bills.iter().zip(&attacked_bills) {
            let delta = after.net() - before.net();
            if compromised.is_hacked(before.customer.meter()) {
                hacked_bill_change += delta;
            } else {
                honest_bill_change += delta;
            }
        }

        let clean_demand = clean.grid_demand_clamped();
        let attacked_demand = attacked.grid_demand_clamped();
        let clean_par = clean_demand.par().unwrap_or(1.0);
        let attacked_par = attacked_demand.par().unwrap_or(1.0);
        let clean_peak = clean_demand.peak().max(1e-9);

        Ok(Self {
            clean_par,
            attacked_par,
            par_increase: (attacked_par - clean_par) / clean_par.max(1e-9),
            peak_increase: (attacked_demand.peak() - clean_peak) / clean_peak,
            hacked_bill_change,
            honest_bill_change,
            community_bill_change: hacked_bill_change + honest_bill_change,
        })
    }

    /// `true` when the attack succeeded as a PAR (grid-stability) attack at
    /// threshold `delta` (relative PAR increase).
    pub fn is_par_attack(&self, delta: f64) -> bool {
        self.par_increase > delta
    }

    /// `true` when the attack succeeded as a bill attack: the compromised
    /// homes' bills dropped while the honest homes picked up cost.
    pub fn is_bill_attack(&self) -> bool {
        self.hacked_bill_change.value() < 0.0 && self.honest_bill_change.value() > 0.0
    }
}

impl std::fmt::Display for AttackImpact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PAR {:.4} → {:.4} ({:+.1}%), hacked bills {:+.3}, honest bills {:+.3}",
            self.clean_par,
            self.attacked_par,
            self.par_increase * 100.0,
            self.hacked_bill_change,
            self.honest_bill_change
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nms_smarthome::{
        Appliance, ApplianceKind, ApplianceSchedule, Customer, CustomerSchedule, PowerLevels,
        TaskSpec,
    };
    use nms_types::{ApplianceId, CustomerId, Horizon, Kw, Kwh, MeterId, TimeSeries};

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    /// Two customers; schedules differ in which slot the flexible load
    /// lands.
    fn schedule_pair() -> (CommunitySchedule, CommunitySchedule) {
        let appliance = Appliance::new(
            ApplianceId::new(0),
            ApplianceKind::WaterHeater,
            PowerLevels::on_off(Kw::new(2.0)).unwrap(),
            TaskSpec::new(Kwh::new(2.0), 0, 23).unwrap(),
        );
        let build = |slots: [usize; 2]| -> CommunitySchedule {
            let schedules: Vec<CustomerSchedule> = (0..2)
                .map(|i| {
                    let customer = Customer::builder(CustomerId::new(i), day())
                        .appliance(appliance.clone())
                        .build()
                        .unwrap();
                    let mut energy = TimeSeries::filled(day(), 0.0);
                    energy[slots[i]] = 2.0;
                    let plan = ApplianceSchedule::new(&appliance, day(), energy).unwrap();
                    CustomerSchedule::with_idle_battery(&customer, vec![plan]).unwrap()
                })
                .collect();
            CommunitySchedule::new(day(), schedules).unwrap()
        };
        // Clean: spread over slots 2 and 14. Attacked: both pile on 16.
        (build([2, 14]), build([16, 16]))
    }

    #[test]
    fn par_attack_detected() {
        let (clean, attacked) = schedule_pair();
        let price = PriceSignal::flat(day(), 0.1).unwrap();
        let impact = AttackImpact::assess(
            &clean,
            &attacked,
            &price,
            NetMeteringTariff::default(),
            &CompromiseSet::new(),
        )
        .unwrap();
        assert!(impact.attacked_par > impact.clean_par);
        assert!(impact.is_par_attack(0.1));
        assert!(impact.peak_increase > 0.5);
        assert!(impact.to_string().contains("PAR"));
    }

    #[test]
    fn bill_changes_split_by_compromise() {
        let (clean, attacked) = schedule_pair();
        let price = PriceSignal::flat(day(), 0.1).unwrap();
        let compromised: CompromiseSet = [MeterId::new(0)].into_iter().collect();
        let impact = AttackImpact::assess(
            &clean,
            &attacked,
            &price,
            NetMeteringTariff::default(),
            &compromised,
        )
        .unwrap();
        // Piling both loads into one slot raises the quadratic unit price:
        // everyone pays more, so this is not a successful bill attack.
        assert!(impact.community_bill_change.value() > 0.0);
        assert!(!impact.is_bill_attack());
        assert!(
            (impact.community_bill_change
                - (impact.hacked_bill_change + impact.honest_bill_change))
                .abs()
                .value()
                < 1e-9
        );
    }

    #[test]
    fn identical_schedules_have_zero_impact() {
        let (clean, _) = schedule_pair();
        let price = PriceSignal::flat(day(), 0.1).unwrap();
        let impact = AttackImpact::assess(
            &clean,
            &clean,
            &price,
            NetMeteringTariff::default(),
            &CompromiseSet::new(),
        )
        .unwrap();
        assert!(impact.par_increase.abs() < 1e-12);
        assert_eq!(impact.community_bill_change, Dollars::ZERO);
        assert!(!impact.is_par_attack(0.0));
    }

    #[test]
    fn horizon_mismatch_is_an_error() {
        let (clean, attacked) = schedule_pair();
        let wrong = PriceSignal::flat(Horizon::hourly(48), 0.1).unwrap();
        assert!(AttackImpact::assess(
            &clean,
            &attacked,
            &wrong,
            NetMeteringTariff::default(),
            &CompromiseSet::new()
        )
        .is_err());
    }
}
