//! Manipulations a hacker applies to the received guideline price.

use serde::{Deserialize, Serialize};

use nms_pricing::PriceSignal;
use nms_types::ValidateError;

/// A guideline-price manipulation (paper §4, \[8\]).
///
/// All variants are *pure* transformations of the broadcast signal; the
/// hacked meter shows the manipulated signal to its smart controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PriceAttack {
    /// Set the price to zero inside a daily wall-clock window — the
    /// paper's Fig 5 attack, which drags all flexible load into the window
    /// (a PAR attack).
    ZeroWindow {
        /// Window start (hour of day, inclusive).
        from_hour: f64,
        /// Window end (hour of day, exclusive).
        to_hour: f64,
    },
    /// Multiply the price by a factor inside a window: factors < 1 attract
    /// load (PAR attack), factors > 1 repel it (bill attack when applied to
    /// cheap hours).
    ScaleWindow {
        /// Window start (hour of day, inclusive).
        from_hour: f64,
        /// Window end (hour of day, exclusive).
        to_hour: f64,
        /// Multiplicative factor (≥ 0).
        factor: f64,
    },
    /// Scale the entire signal (a bill-increase attack when > 1: the
    /// scheduler sees inflated prices everywhere and loses the incentive
    /// structure).
    ScaleAll {
        /// Multiplicative factor (≥ 0).
        factor: f64,
    },
    /// Invert the signal around its mean: peaks become valleys, so the
    /// scheduler moves load *into* the true peak hours.
    InvertAroundMean,
}

impl PriceAttack {
    /// Convenience constructor for [`PriceAttack::ZeroWindow`].
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when the hours are outside `[0, 24]` or
    /// non-finite.
    pub fn zero_window(from_hour: f64, to_hour: f64) -> Result<Self, ValidateError> {
        validate_window(from_hour, to_hour)?;
        Ok(Self::ZeroWindow { from_hour, to_hour })
    }

    /// Convenience constructor for [`PriceAttack::ScaleWindow`].
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] on invalid hours or a negative/non-finite
    /// factor.
    pub fn scale_window(from_hour: f64, to_hour: f64, factor: f64) -> Result<Self, ValidateError> {
        validate_window(from_hour, to_hour)?;
        validate_factor(factor)?;
        Ok(Self::ScaleWindow {
            from_hour,
            to_hour,
            factor,
        })
    }

    /// Convenience constructor for [`PriceAttack::ScaleAll`].
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] on a negative/non-finite factor.
    pub fn scale_all(factor: f64) -> Result<Self, ValidateError> {
        validate_factor(factor)?;
        Ok(Self::ScaleAll { factor })
    }

    /// Applies the manipulation, producing what the hacked meter reports.
    pub fn apply(&self, received: &PriceSignal) -> PriceSignal {
        let horizon = received.horizon();
        let series = match *self {
            Self::ZeroWindow { from_hour, to_hour } => received.as_series().map({
                let mut slot = 0;
                move |&p| {
                    let v = if horizon.slot_in_daily_window(slot, from_hour, to_hour) {
                        0.0
                    } else {
                        p
                    };
                    slot += 1;
                    v
                }
            }),
            Self::ScaleWindow {
                from_hour,
                to_hour,
                factor,
            } => received.as_series().map({
                let mut slot = 0;
                move |&p| {
                    let v = if horizon.slot_in_daily_window(slot, from_hour, to_hour) {
                        p * factor
                    } else {
                        p
                    };
                    slot += 1;
                    v
                }
            }),
            Self::ScaleAll { factor } => received.as_series().scaled(factor),
            Self::InvertAroundMean => {
                let mean = received.as_series().mean();
                received.as_series().map(|&p| (2.0 * mean - p).max(0.0))
            }
        };
        PriceSignal::new(series).expect("attacks preserve non-negativity")
    }

    /// A short human-readable label for reports.
    pub fn label(&self) -> String {
        match *self {
            Self::ZeroWindow { from_hour, to_hour } => {
                format!("zero-price {from_hour:02.0}:00-{to_hour:02.0}:00")
            }
            Self::ScaleWindow {
                from_hour,
                to_hour,
                factor,
            } => format!("scale×{factor} {from_hour:02.0}:00-{to_hour:02.0}:00"),
            Self::ScaleAll { factor } => format!("scale-all×{factor}"),
            Self::InvertAroundMean => "invert-around-mean".into(),
        }
    }
}

fn validate_window(from_hour: f64, to_hour: f64) -> Result<(), ValidateError> {
    for h in [from_hour, to_hour] {
        if !h.is_finite() || !(0.0..=24.0).contains(&h) {
            return Err(ValidateError::new(format!(
                "attack window hour {h} outside [0, 24]"
            )));
        }
    }
    Ok(())
}

fn validate_factor(factor: f64) -> Result<(), ValidateError> {
    if !factor.is_finite() || factor < 0.0 {
        return Err(ValidateError::new(format!(
            "attack factor must be finite and non-negative, got {factor}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nms_types::Horizon;

    fn tou() -> PriceSignal {
        PriceSignal::time_of_use(Horizon::hourly_day(), 0.05, 0.2).unwrap()
    }

    #[test]
    fn zero_window_zeroes_only_the_window() {
        let attack = PriceAttack::zero_window(16.0, 18.0).unwrap();
        let hacked = attack.apply(&tou());
        assert_eq!(hacked.at(16).value(), 0.0);
        assert_eq!(hacked.at(17).value(), 0.0);
        assert_eq!(hacked.at(18).value(), tou().at(18).value());
        assert_eq!(hacked.at(0).value(), tou().at(0).value());
    }

    #[test]
    fn zero_window_repeats_daily_on_multiday_horizons() {
        let signal = PriceSignal::flat(Horizon::hourly(48), 0.1).unwrap();
        let attack = PriceAttack::zero_window(16.0, 17.0).unwrap();
        let hacked = attack.apply(&signal);
        assert_eq!(hacked.at(16).value(), 0.0);
        assert_eq!(hacked.at(40).value(), 0.0);
        assert_eq!(hacked.at(15).value(), 0.1);
    }

    #[test]
    fn scale_window_and_scale_all() {
        let attack = PriceAttack::scale_window(7.0, 10.0, 0.5).unwrap();
        let hacked = attack.apply(&tou());
        assert!((hacked.at(8).value() - 0.1).abs() < 1e-12);
        assert_eq!(hacked.at(12).value(), tou().at(12).value());

        let attack = PriceAttack::scale_all(2.0).unwrap();
        let hacked = attack.apply(&tou());
        assert!((hacked.at(3).value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn invert_swaps_peaks_and_valleys() {
        let signal = tou();
        let hacked = PriceAttack::InvertAroundMean.apply(&signal);
        // Former peak hour is now below the former valley hour.
        assert!(hacked.at(19).value() < hacked.at(3).value());
        // Prices stay non-negative.
        assert!(hacked.as_series().iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn constructors_validate() {
        assert!(PriceAttack::zero_window(-1.0, 5.0).is_err());
        assert!(PriceAttack::zero_window(0.0, 25.0).is_err());
        assert!(PriceAttack::scale_window(0.0, 5.0, -1.0).is_err());
        assert!(PriceAttack::scale_all(f64::NAN).is_err());
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(
            PriceAttack::zero_window(16.0, 17.0).unwrap().label(),
            "zero-price 16:00-17:00"
        );
        assert!(PriceAttack::scale_all(2.0).unwrap().label().contains("2"));
        assert_eq!(PriceAttack::InvertAroundMean.label(), "invert-around-mean");
    }

    #[test]
    fn attacks_never_produce_negative_prices() {
        for attack in [
            PriceAttack::zero_window(0.0, 24.0).unwrap(),
            PriceAttack::scale_all(0.0).unwrap(),
            PriceAttack::InvertAroundMean,
        ] {
            let hacked = attack.apply(&tou());
            assert!(hacked.as_series().iter().all(|&p| p >= 0.0));
        }
    }
}
