//! Tracking which smart meters are currently compromised.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use nms_types::MeterId;

/// The set of currently hacked smart meters — the ground-truth state `s_i`
/// of the paper's POMDP ("there are totally `i` smart meters hacked").
///
/// # Examples
///
/// ```
/// use nms_attack::CompromiseSet;
/// use nms_types::MeterId;
///
/// let mut compromised = CompromiseSet::new();
/// compromised.hack(MeterId::new(3));
/// compromised.hack(MeterId::new(7));
/// assert_eq!(compromised.count(), 2);
/// assert!(compromised.is_hacked(MeterId::new(3)));
/// let repaired = compromised.repair_all();
/// assert_eq!(repaired, 2);
/// assert_eq!(compromised.count(), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompromiseSet {
    hacked: BTreeSet<MeterId>,
}

impl CompromiseSet {
    /// An empty (fully healthy) fleet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a meter as hacked; returns `true` if it was newly compromised.
    pub fn hack(&mut self, meter: MeterId) -> bool {
        self.hacked.insert(meter)
    }

    /// Repairs a single meter; returns `true` if it was compromised.
    pub fn repair(&mut self, meter: MeterId) -> bool {
        self.hacked.remove(&meter)
    }

    /// Repairs every compromised meter ("checking and fixing the hacked
    /// smart meters", the POMDP's `a_1`), returning how many were fixed —
    /// the driver of the paper's labor cost.
    pub fn repair_all(&mut self) -> usize {
        let fixed = self.hacked.len();
        self.hacked.clear();
        fixed
    }

    /// Whether a specific meter is currently hacked.
    pub fn is_hacked(&self, meter: MeterId) -> bool {
        self.hacked.contains(&meter)
    }

    /// Number of currently hacked meters (the POMDP state index).
    pub fn count(&self) -> usize {
        self.hacked.len()
    }

    /// `true` when no meter is compromised.
    pub fn is_empty(&self) -> bool {
        self.hacked.is_empty()
    }

    /// Iterator over the hacked meters in id order.
    pub fn iter(&self) -> impl Iterator<Item = MeterId> + '_ {
        self.hacked.iter().copied()
    }
}

impl FromIterator<MeterId> for CompromiseSet {
    fn from_iter<I: IntoIterator<Item = MeterId>>(iter: I) -> Self {
        Self {
            hacked: iter.into_iter().collect(),
        }
    }
}

impl Extend<MeterId> for CompromiseSet {
    fn extend<I: IntoIterator<Item = MeterId>>(&mut self, iter: I) {
        self.hacked.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hack_and_repair_lifecycle() {
        let mut set = CompromiseSet::new();
        assert!(set.is_empty());
        assert!(set.hack(MeterId::new(1)));
        assert!(!set.hack(MeterId::new(1))); // already hacked
        assert!(set.hack(MeterId::new(2)));
        assert_eq!(set.count(), 2);
        assert!(set.repair(MeterId::new(1)));
        assert!(!set.repair(MeterId::new(1)));
        assert_eq!(set.count(), 1);
        assert_eq!(set.repair_all(), 1);
        assert!(set.is_empty());
    }

    #[test]
    fn collect_and_extend() {
        let mut set: CompromiseSet = (0..3).map(MeterId::new).collect();
        assert_eq!(set.count(), 3);
        set.extend([MeterId::new(3), MeterId::new(0)]);
        assert_eq!(set.count(), 4);
        let ids: Vec<usize> = set.iter().map(|m| m.index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
