//! Pricing cyberattacks against smart meters (paper §4, following \[8\]).
//!
//! A hacker who compromises a smart meter cannot change what the customer
//! *pays* — billing is on the utility side — but can manipulate the
//! *received guideline price* that the home's scheduler optimizes against.
//! That is enough to herd flexible load: zeroing the price over a window
//! pulls every compromised home's deferrable demand into that window,
//! spiking the community's peak-to-average ratio (Fig 5).
//!
//! # Examples
//!
//! ```
//! use nms_attack::PriceAttack;
//! use nms_pricing::PriceSignal;
//! use nms_types::Horizon;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let received = PriceSignal::flat(Horizon::hourly_day(), 0.1)?;
//! // The paper's Fig 5 attack: price zeroed between 16:00 and 18:00.
//! let attack = PriceAttack::zero_window(16.0, 18.0)?;
//! let manipulated = attack.apply(&received);
//! assert_eq!(manipulated.at(16).value(), 0.0);
//! assert_eq!(manipulated.at(15).value(), 0.1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compromise;
mod impact;
mod price_attack;
mod scenario;

pub use compromise::CompromiseSet;
pub use impact::AttackImpact;
pub use price_attack::PriceAttack;
pub use scenario::{AttackTimeline, AttackerConfig, StochasticAttacker};
