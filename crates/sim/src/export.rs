//! CSV export of experiment artifacts, for plotting the paper's figures
//! with external tools.
//!
//! The writers take any `io::Write`, so callers decide whether the data
//! lands in a file, a buffer, or stdout (C-RW-VALUE: pass `&mut file`).
//!
//! For durable files, every writer also has a `*_to_path` twin that
//! renders the full artifact in memory and lands it through
//! [`nms_vfs::write_atomic`] — staged in a `.tmp` sibling, renamed into
//! place, retried under a bounded [`StoragePolicy`] — so a crash or an
//! injected fault leaves either the old artifact or the new one, never a
//! torn CSV. Exhausted retries surface as a typed
//! [`StorageError`] the supervision layer ticks into
//! `RunHealth::storage`.

use std::io::{self, Write};
use std::path::Path;

use nms_vfs::{write_atomic, StorageError, StoragePolicy, StorageReport, Vfs};

use crate::experiments::{AccuracyExperiment, AttackExperiment, PredictionExperiment};
use crate::sweeps::{AttackWindowPoint, FaultTolerancePoint, SweepPoint};
use crate::LongTermRunResult;

/// Escapes one CSV cell (quotes fields containing separators or quotes).
fn cell(value: &str) -> String {
    if value.contains([',', '"', '\n']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

/// Writes a header plus rows of `f64` columns.
fn write_csv<W: Write>(
    mut writer: W,
    header: &[&str],
    rows: impl Iterator<Item = Vec<f64>>,
) -> io::Result<()> {
    writeln!(
        writer,
        "{}",
        header.iter().map(|h| cell(h)).collect::<Vec<_>>().join(",")
    )?;
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(writer, "{}", line.join(","))?;
    }
    Ok(())
}

/// Exports a Fig 3/4 prediction experiment: one row per slot with the
/// received price, predicted price, and predicted load.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn export_prediction<W: Write>(
    writer: W,
    experiment: &PredictionExperiment,
) -> io::Result<()> {
    let slots = experiment.received_price.len();
    write_csv(
        writer,
        &["slot", "received_price", "predicted_price", "predicted_load"],
        (0..slots).map(|h| {
            vec![
                h as f64,
                experiment.received_price[h],
                experiment.predicted_price[h],
                experiment.predicted_load[h],
            ]
        }),
    )
}

/// Exports a Fig 5 attack experiment: one row per slot with the
/// manipulated price and attacked load.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn export_attack<W: Write>(writer: W, experiment: &AttackExperiment) -> io::Result<()> {
    let slots = experiment.manipulated_price.len();
    write_csv(
        writer,
        &["slot", "manipulated_price", "attacked_load"],
        (0..slots).map(|h| {
            vec![
                h as f64,
                experiment.manipulated_price[h],
                experiment.attacked_load[h],
            ]
        }),
    )
}

/// Exports a Fig 6 accuracy experiment: one row per slot with both
/// detectors' running accuracies.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn export_accuracy<W: Write>(writer: W, experiment: &AccuracyExperiment) -> io::Result<()> {
    let slots = experiment.aware_running.len().min(experiment.naive_running.len());
    write_csv(
        writer,
        &["slot", "aware_running_accuracy", "naive_running_accuracy"],
        (0..slots).map(|h| {
            vec![
                h as f64,
                experiment.aware_running[h],
                experiment.naive_running[h],
            ]
        }),
    )
}

/// Exports a long-term run trace: one row per slot with realized demand,
/// true bucket, and (when a detector ran) the observed bucket and whether a
/// fix was dispatched.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn export_long_term<W: Write>(writer: W, result: &LongTermRunResult) -> io::Result<()> {
    let slots = result.realized_demand.len();
    write_csv(
        writer,
        &["slot", "realized_demand", "true_bucket", "observed_bucket", "fix"],
        (0..slots).map(|h| {
            vec![
                h as f64,
                result.realized_demand[h],
                result.true_buckets.get(h).copied().unwrap_or(0) as f64,
                result
                    .observed_buckets
                    .get(h)
                    .map(|&o| o as f64)
                    .unwrap_or(f64::NAN),
                f64::from(u8::from(result.fixes_at.contains(&h))),
            ]
        }),
    )
}

/// Exports a fault-tolerance sweep: one row per fault rate with both
/// detectors' accuracy and PAR plus the degradation tallies.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn export_fault_tolerance<W: Write>(
    writer: W,
    points: &[FaultTolerancePoint],
) -> io::Result<()> {
    write_csv(
        writer,
        &[
            "fault_rate",
            "aware_accuracy",
            "naive_accuracy",
            "aware_par",
            "naive_par",
            "slots_imputed",
            "faults_injected",
        ],
        points.iter().map(|p| {
            vec![
                p.fault_rate,
                p.aware_accuracy,
                p.naive_accuracy,
                p.aware_par,
                p.naive_par,
                p.slots_imputed as f64,
                p.faults_injected as f64,
            ]
        }),
    )
}

/// Exports a tariff or PV-ownership sweep: one row per swept value with the
/// cleared grid shape plus the point's solver telemetry (rounds,
/// convergence, memo-cache tallies).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn export_sweep<W: Write>(writer: W, points: &[SweepPoint]) -> io::Result<()> {
    write_csv(
        writer,
        &[
            "parameter",
            "par",
            "energy_sold",
            "midday_draw",
            "solver_rounds",
            "solver_converged",
            "cache_hits",
            "cache_misses",
        ],
        points.iter().map(|p| {
            vec![
                p.parameter,
                p.par,
                p.energy_sold,
                p.midday_draw,
                p.solver_rounds as f64,
                f64::from(u8::from(p.solver_converged)),
                p.cache_hits as f64,
                p.cache_misses as f64,
            ]
        }),
    )
}

/// Exports an attack-window sweep: one row per window start with the
/// attacked PAR, peak slot, and solver rounds.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn export_attack_window<W: Write>(writer: W, points: &[AttackWindowPoint]) -> io::Result<()> {
    write_csv(
        writer,
        &[
            "from_hour",
            "attacked_par",
            "peak_slot",
            "solver_rounds",
            "cache_hits",
            "cache_misses",
        ],
        points.iter().map(|p| {
            vec![
                p.from_hour,
                p.attacked_par,
                p.peak_slot as f64,
                p.solver_rounds as f64,
                p.cache_hits as f64,
                p.cache_misses as f64,
            ]
        }),
    )
}

/// Exports a long-term run's per-day fault/degradation timeline: a
/// `training` row for the calibration epoch, then one row per detection
/// day with that day's fault counts, imputations, retries, fallbacks,
/// budget breaches, and quarantine transitions.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn export_health_timeline<W: Write>(
    mut writer: W,
    result: &LongTermRunResult,
) -> io::Result<()> {
    writeln!(
        writer,
        "day,dropped,non_finite,garbage,stuck,skewed,unreported,slots_imputed,\
         retries,fallbacks,budget_breaches,quarantine_trips,quarantine_recoveries,\
         meters_quarantined"
    )?;
    let rows = std::iter::once(("training".to_string(), &result.training_health)).chain(
        result
            .day_health
            .iter()
            .map(|d| (d.day.to_string(), d)),
    );
    for (label, d) in rows {
        writeln!(
            writer,
            "{label},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            d.faults.dropped,
            d.faults.non_finite,
            d.faults.garbage,
            d.faults.stuck,
            d.faults.skewed,
            d.faults.unreported,
            d.slots_imputed,
            d.retries,
            d.fallbacks,
            d.budget_breaches,
            d.quarantine_trips,
            d.quarantine_recoveries,
            d.meters_quarantined,
        )?;
    }
    Ok(())
}

/// Exports a long-term run's quarantine breaker transitions: one row per
/// trip/probation/re-trip/recovery event, in day then meter order.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn export_quarantine_events<W: Write>(
    mut writer: W,
    result: &LongTermRunResult,
) -> io::Result<()> {
    writeln!(writer, "day,meter,transition")?;
    for event in &result.quarantine_events {
        writeln!(writer, "{},{},{:?}", event.day, event.meter, event.transition)?;
    }
    Ok(())
}

/// Renders an artifact in memory and lands it at `path` atomically: the
/// shared file-level wrapper behind every `export_*_to_path` twin.
///
/// # Errors
///
/// [`StorageError::Render`] if the in-memory render fails (no bytes touch
/// storage), [`StorageError::Exhausted`] once the policy's bounded retries
/// run out (the destination is untouched — staged bytes only ever live in
/// the `.tmp` sibling).
pub fn export_atomic<F>(
    vfs: &dyn Vfs,
    path: &Path,
    policy: &StoragePolicy,
    render: F,
) -> Result<StorageReport, StorageError>
where
    F: FnOnce(&mut Vec<u8>) -> io::Result<()>,
{
    let mut buffer = Vec::new();
    render(&mut buffer).map_err(StorageError::Render)?;
    write_atomic(vfs, path, &buffer, policy)
}

macro_rules! to_path_twin {
    ($(#[$doc:meta])* $name:ident, $writer:ident, $data:ty) => {
        $(#[$doc])*
        ///
        /// # Errors
        ///
        /// As [`export_atomic`].
        pub fn $name(
            vfs: &dyn Vfs,
            path: &Path,
            data: $data,
            policy: &StoragePolicy,
        ) -> Result<StorageReport, StorageError> {
            export_atomic(vfs, path, policy, |buffer| $writer(buffer, data))
        }
    };
}

to_path_twin!(
    /// Atomic file-level [`export_prediction`].
    export_prediction_to_path, export_prediction, &PredictionExperiment);
to_path_twin!(
    /// Atomic file-level [`export_attack`].
    export_attack_to_path, export_attack, &AttackExperiment);
to_path_twin!(
    /// Atomic file-level [`export_accuracy`].
    export_accuracy_to_path, export_accuracy, &AccuracyExperiment);
to_path_twin!(
    /// Atomic file-level [`export_long_term`].
    export_long_term_to_path, export_long_term, &LongTermRunResult);
to_path_twin!(
    /// Atomic file-level [`export_fault_tolerance`].
    export_fault_tolerance_to_path, export_fault_tolerance, &[FaultTolerancePoint]);
to_path_twin!(
    /// Atomic file-level [`export_sweep`].
    export_sweep_to_path, export_sweep, &[SweepPoint]);
to_path_twin!(
    /// Atomic file-level [`export_attack_window`].
    export_attack_window_to_path, export_attack_window, &[AttackWindowPoint]);
to_path_twin!(
    /// Atomic file-level [`export_health_timeline`].
    export_health_timeline_to_path, export_health_timeline, &LongTermRunResult);
to_path_twin!(
    /// Atomic file-level [`export_quarantine_events`].
    export_quarantine_events_to_path, export_quarantine_events, &LongTermRunResult);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{experiments, PaperScenario};

    #[test]
    fn cell_escaping() {
        assert_eq!(cell("plain"), "plain");
        assert_eq!(cell("a,b"), "\"a,b\"");
        assert_eq!(cell("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn prediction_export_shape() {
        let mut scenario = PaperScenario::small(8, 3);
        scenario.training_days = 3;
        let experiment = experiments::run_fig3(&scenario).unwrap();
        let mut buffer = Vec::new();
        export_prediction(&mut buffer, &experiment).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 25); // header + 24 slots
        assert!(lines[0].starts_with("slot,received_price"));
        assert_eq!(lines[1].split(',').count(), 4);
    }

    #[test]
    fn attack_export_shape() {
        let mut scenario = PaperScenario::small(8, 3);
        scenario.training_days = 3;
        let experiment = experiments::run_fig5(&scenario).unwrap();
        let mut buffer = Vec::new();
        export_attack(&mut buffer, &experiment).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert_eq!(text.lines().count(), 25);
    }

    #[test]
    fn sweep_export_includes_solver_columns() {
        let points = vec![SweepPoint {
            parameter: 1.0,
            par: 1.4,
            energy_sold: 3.0,
            midday_draw: 2.0,
            solver_rounds: 5,
            solver_converged: true,
            cache_hits: 7,
            cache_misses: 13,
        }];
        let mut buffer = Vec::new();
        export_sweep(&mut buffer, &points).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].ends_with("solver_rounds,solver_converged,cache_hits,cache_misses"));
        assert_eq!(lines[1], "1,1.4,3,2,5,1,7,13");

        let windows = vec![AttackWindowPoint {
            from_hour: 16.0,
            attacked_par: 2.1,
            peak_slot: 16,
            solver_rounds: 4,
            cache_hits: 0,
            cache_misses: 9,
        }];
        let mut buffer = Vec::new();
        export_attack_window(&mut buffer, &windows).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert_eq!(
            text,
            "from_hour,attacked_par,peak_slot,solver_rounds,cache_hits,cache_misses\n\
             16,2.1,16,4,0,9\n"
        );
    }

    #[test]
    fn fault_tolerance_export_shape() {
        let points = vec![
            FaultTolerancePoint {
                fault_rate: 0.0,
                aware_accuracy: 0.95,
                naive_accuracy: 0.66,
                aware_par: 1.5,
                naive_par: 1.8,
                slots_imputed: 0,
                faults_injected: 0,
            },
            FaultTolerancePoint {
                fault_rate: 0.1,
                aware_accuracy: 0.9,
                naive_accuracy: 0.6,
                aware_par: 1.6,
                naive_par: 1.9,
                slots_imputed: 7,
                faults_injected: 120,
            },
        ];
        let mut buffer = Vec::new();
        export_fault_tolerance(&mut buffer, &points).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("fault_rate,aware_accuracy"));
        assert_eq!(lines[2].split(',').count(), 7);
    }

    #[test]
    fn long_term_export_includes_fixes_column() {
        use crate::experiments::paper_timeline;
        use crate::{run_long_term_detection, LongTermRunConfig};
        use rand::SeedableRng;

        let mut scenario = PaperScenario::small(8, 5);
        scenario.training_days = 3;
        let config = LongTermRunConfig {
            detection_days: 1,
            detector: None,
            timeline: paper_timeline(8),
            buckets: 4,
            bucket_fraction_step: 0.15,
            labor_per_fix: 10.0,
            labor_per_meter: 1.0,
            faults: None,
            sanitize: Default::default(),
            retry: Default::default(),
            budget: nms_types::SolveBudget::unlimited(),
            quarantine: Default::default(),
            parallelism: Default::default(),
            clearing_iterations: 2,
        };
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let result = run_long_term_detection(&scenario, &config, &mut rng).unwrap();
        let mut buffer = Vec::new();
        export_long_term(&mut buffer, &result).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.lines().next().unwrap().ends_with("fix"));
        assert_eq!(text.lines().count(), 25);
        // No detector: observed buckets are NaN in the CSV.
        assert!(text.contains("NaN"));

        // The same run exports a health timeline: training row + 1 day.
        let mut buffer = Vec::new();
        export_health_timeline(&mut buffer, &result).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("day,dropped"));
        assert!(lines[0].ends_with("meters_quarantined"));
        assert!(lines[1].starts_with("training,"));
        assert!(lines[2].starts_with("0,"));
        assert_eq!(lines[1].split(',').count(), 14);

        // No faults → no quarantine events, header only.
        let mut buffer = Vec::new();
        export_quarantine_events(&mut buffer, &result).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert_eq!(text, "day,meter,transition\n");
    }

    #[test]
    fn quarantine_event_export_lists_transitions() {
        use nms_core::{QuarantineEvent, QuarantineTransition};
        use nms_types::DayHealth;

        // Synthesize a minimal result; only the event/timeline fields
        // matter to these writers.
        let result = LongTermRunResult {
            accuracy: nms_core::AccuracyTracker::new(),
            labor: nms_core::LaborTracker::new(1.0, 1.0),
            realized_demand: vec![1.0; 24],
            par: 1.0,
            true_buckets: vec![0; 24],
            observed_buckets: Vec::new(),
            fixes_at: Vec::new(),
            health: nms_types::RunHealth::new(),
            training_health: DayHealth::default(),
            day_health: vec![DayHealth::default()],
            quarantine_events: vec![
                QuarantineEvent {
                    day: 5,
                    meter: 1,
                    transition: QuarantineTransition::Tripped,
                },
                QuarantineEvent {
                    day: 6,
                    meter: 1,
                    transition: QuarantineTransition::Probation,
                },
            ],
            quarantine: None,
            final_belief: None,
        };
        let mut buffer = Vec::new();
        export_quarantine_events(&mut buffer, &result).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["day,meter,transition", "5,1,Tripped", "6,1,Probation"]);
    }
}
