//! The multi-day attack/detection simulation behind Fig 6 and Table 1.
//!
//! Per detection day the market clears a clean guideline price; a scripted
//! attacker compromises meters over time, and compromised homes schedule
//! against the manipulated signal. Every slot the detector compares the
//! realized grid demand against its own day-ahead prediction using the
//! *peak relative demand deviation* — the localized form of §4.1's PAR
//! comparison, which stays informative at small compromise fractions where
//! the attack spike has not yet overtaken the natural evening peak. The
//! statistic is mapped to an observed hacked-meter bucket through a
//! calibration table built in the detector's own world model, and the
//! observation feeds the POMDP which decides between monitoring and a
//! check-&-fix dispatch.
//!
//! Hacked homes are modeled as *unilateral deviators*: the day-ahead game
//! has already closed when the manipulated signal takes effect, so honest
//! homes keep their committed schedules while each compromised home
//! re-optimizes alone against the committed aggregate. The realization is
//! recomputed whenever the compromise set changes.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use nms_attack::{AttackTimeline, CompromiseSet};
use nms_core::{
    sanitize_series, AccuracyTracker, DetectorAction, FrameworkConfig, LaborTracker,
    LongTermDetector, ParObservationMap, PredictedResponse, PricePredictor, SanitizeConfig,
};
use nms_forecast::PriceHistory;
use nms_types::{RunHealth, TimeSeries, ValidateError};

use crate::calibrate::{calibrate_detector, peak_deviation};
use crate::faults::{corrupt_day, FaultPlan};
use crate::{Market, PaperScenario, SimError};

/// Configuration for [`run_long_term_detection`].
#[derive(Debug, Clone)]
pub struct LongTermRunConfig {
    /// Days simulated after the training epoch (the paper uses 2 → 48 h).
    pub detection_days: usize,
    /// The detector under test; `None` runs the no-detection baseline.
    pub detector: Option<FrameworkConfig>,
    /// The scripted attacker.
    pub timeline: AttackTimeline,
    /// Hacked-meter buckets for state/observation (bucket `i` ≈
    /// `i · bucket_fraction_step` of the fleet compromised).
    pub buckets: usize,
    /// Fleet fraction per bucket.
    pub bucket_fraction_step: f64,
    /// Labor cost per check-&-fix dispatch.
    pub labor_per_fix: f64,
    /// Labor cost per meter actually repaired.
    pub labor_per_meter: f64,
    /// Telemetry fault injection; `None` (or a no-op plan) leaves the
    /// detector's view pristine.
    pub faults: Option<FaultPlan>,
}

impl LongTermRunConfig {
    /// Validates the run configuration against a scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] for zero days/buckets, a fraction step
    /// outside `(0, 1]`, negative labor costs, or an invalid detector
    /// configuration.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.detection_days == 0 {
            return Err(ValidateError::new("need at least one detection day"));
        }
        if self.buckets < 2 {
            return Err(ValidateError::new("need at least two buckets"));
        }
        if !(self.bucket_fraction_step > 0.0 && self.bucket_fraction_step <= 1.0) {
            return Err(ValidateError::new("bucket fraction step must be in (0, 1]"));
        }
        for (name, c) in [
            ("labor_per_fix", self.labor_per_fix),
            ("labor_per_meter", self.labor_per_meter),
        ] {
            if !c.is_finite() || c < 0.0 {
                return Err(ValidateError::new(format!("{name} must be non-negative")));
            }
        }
        if let Some(detector) = &self.detector {
            detector.validate()?;
        }
        if let Some(faults) = &self.faults {
            faults.validate()?;
        }
        Ok(())
    }
}

/// Result of one long-term run.
#[derive(Debug, Clone)]
pub struct LongTermRunResult {
    /// Per-slot observation accuracy (empty for the no-detection baseline).
    pub accuracy: AccuracyTracker,
    /// Labor spent on fixes.
    pub labor: LaborTracker,
    /// Realized community grid demand, slot by slot across all detection
    /// days.
    pub realized_demand: Vec<f64>,
    /// PAR of the realized demand over the whole run (Table 1's metric).
    pub par: f64,
    /// True hacked bucket per slot.
    pub true_buckets: Vec<usize>,
    /// Observed bucket per slot (empty for the no-detection baseline).
    pub observed_buckets: Vec<usize>,
    /// Global slots at which a fix was dispatched.
    pub fixes_at: Vec<usize>,
    /// Degradation ledger: faults seen, slots imputed, retries and
    /// fallbacks consumed anywhere in the pipeline.
    pub health: RunHealth,
}

fn bucket_of(count: usize, fleet: usize, buckets: usize, step: f64) -> usize {
    let fraction = count as f64 / fleet as f64;
    ((fraction / step).round() as usize).min(buckets - 1)
}

/// Builds the detector's telemetry view of one realized day: corrupt the
/// per-meter reports under `plan`, then sanitize the re-aggregated series
/// against the detector's own prediction. Fault and imputation tallies are
/// recorded once per day (rebuilds within a day redraw the identical
/// faults).
fn faulted_view(
    plan: &FaultPlan,
    day: usize,
    realization: &PredictedResponse,
    predicted: &TimeSeries<f64>,
    health: &mut RunHealth,
    day_recorded: &mut bool,
) -> Result<TimeSeries<f64>, SimError> {
    let corrupted = corrupt_day(plan, day, &realization.schedule);
    let report = sanitize_series(&corrupted.observed, predicted, &SanitizeConfig::default())
        .map_err(|err| SimError::Telemetry {
            detail: err.to_string(),
        })?;
    if !*day_recorded {
        health.faults_injected.merge(&corrupted.injected);
        health.slots_imputed += report.imputed_slots;
        *day_recorded = true;
    }
    Ok(report.cleaned)
}

/// Runs the long-term attack/detection simulation.
///
/// # Errors
///
/// Returns [`SimError`] on invalid configurations or solver failures.
pub fn run_long_term_detection(
    scenario: &PaperScenario,
    config: &LongTermRunConfig,
    rng: &mut impl Rng,
) -> Result<LongTermRunResult, SimError> {
    scenario.validate()?;
    config.validate()?;

    let mut health = RunHealth::new();
    let fault_plan = config.faults.as_ref().filter(|plan| !plan.is_noop());
    let market = Market::new(scenario)?;
    let generator = scenario.generator();
    let slots_per_day = 24usize;
    let fleet = scenario.customers;

    // --- Training epoch: bootstrap history, train the price predictor, ---
    // --- calibrate the observation map, solve the POMDP.               ---
    let mut history: PriceHistory =
        market.bootstrap_history(&generator, scenario.training_days, rng)?;

    struct DetectorState {
        framework: FrameworkConfig,
        price_predictor: PricePredictor,
        observation_map: ParObservationMap,
        long_term: LongTermDetector,
    }

    let mut detector_state = match &config.detector {
        None => None,
        Some(framework) => {
            let calibration = calibrate_detector(
                scenario,
                framework,
                &config.timeline,
                config.buckets,
                config.bucket_fraction_step,
                &market,
                &generator,
                &history,
                rng,
            )?;
            health.merge(&calibration.health);
            let mut long_term_config = framework.long_term;
            long_term_config.buckets = config.buckets;
            let long_term = LongTermDetector::with_observation_matrix(
                long_term_config,
                calibration.observation_matrix.clone(),
            )?;
            Some(DetectorState {
                framework: framework.clone(),
                price_predictor: calibration.price_predictor,
                observation_map: calibration.observation_map,
                long_term,
            })
        }
    };

    // --- Detection epoch. ---
    let total_days = scenario.training_days + config.detection_days;
    let weather = scenario.weather_factors(total_days);
    let mut compromised = CompromiseSet::new();
    let mut accuracy = AccuracyTracker::new();
    let mut labor = LaborTracker::new(config.labor_per_fix, config.labor_per_meter);
    let mut realized_demand = Vec::with_capacity(config.detection_days * slots_per_day);
    let mut true_buckets = Vec::new();
    let mut observed_buckets = Vec::new();
    let mut fixes_at = Vec::new();

    for day_offset in 0..config.detection_days {
        let day = scenario.training_days + day_offset;
        let community = generator.community_for_day(day, weather[day]);
        let clean = market.clear_day(&community, 2, rng)?;
        let manipulated = config.timeline.attack().apply(&clean.price);
        let realization_seed: u64 = rng.gen();

        // The detector's day-ahead view.
        let day_prediction = match detector_state.as_mut() {
            None => None,
            Some(state) => {
                let theta = community.total_generation();
                let generation_forecast = state
                    .price_predictor
                    .features()
                    .target_generation
                    .then_some(&theta);
                let predicted_price = state.price_predictor.predict_day(
                    &history,
                    community.horizon(),
                    generation_forecast,
                )?;
                let mut predicted_rng = ChaCha8Rng::seed_from_u64(realization_seed);
                let predicted = state.framework.load.predict(
                    &community,
                    &predicted_price,
                    &mut predicted_rng,
                )?;
                Some(predicted)
            }
        };

        // Realize the day's response for the current compromise set: the
        // committed (clean) plan with hacked homes deviating unilaterally.
        let realize =
            |compromised: &CompromiseSet| -> Result<nms_core::PredictedResponse, SimError> {
                if compromised.is_empty() {
                    return Ok(clean.response.clone());
                }
                let meters: Vec<nms_types::MeterId> = compromised.iter().collect();
                let mut child = ChaCha8Rng::seed_from_u64(realization_seed);
                Ok(market.truth_model().respond_unilaterally(
                    &community,
                    &clean.response,
                    &manipulated,
                    &meters,
                    &mut child,
                )?)
            };
        let mut realization = realize(&compromised)?;
        // The telemetry view of the current realization, rebuilt lazily
        // whenever the realization changes mid-day.
        let mut observed_view: Option<TimeSeries<f64>> = None;
        let mut day_faults_recorded = false;

        for slot in 0..slots_per_day {
            let global_slot = day_offset * slots_per_day + slot;
            let newly = config.timeline.step(global_slot, &mut compromised, fleet);
            if !newly.is_empty() {
                realization = realize(&compromised)?;
                observed_view = None;
            }

            let true_bucket = bucket_of(
                compromised.count(),
                fleet,
                config.buckets,
                config.bucket_fraction_step,
            );
            true_buckets.push(true_bucket);

            if let (Some(state), Some(predicted)) =
                (detector_state.as_mut(), day_prediction.as_ref())
            {
                if fault_plan.is_some() && observed_view.is_none() {
                    if let Some(plan) = fault_plan {
                        observed_view = Some(faulted_view(
                            plan,
                            day,
                            &realization,
                            &predicted.grid_demand,
                            &mut health,
                            &mut day_faults_recorded,
                        )?);
                    }
                }
                let telemetry: &TimeSeries<f64> =
                    observed_view.as_ref().unwrap_or(&realization.grid_demand);
                let statistic = peak_deviation(telemetry, &predicted.grid_demand);
                health.slots_observed += 1;
                let observed = state.observation_map.observe(statistic);
                if std::env::var("NMS_DEBUG_CALIBRATION").is_ok() {
                    eprintln!(
                        "slot {global_slot}: stat {statistic:.4} true {true_bucket} obs {observed}"
                    );
                }
                observed_buckets.push(observed);
                accuracy.record(true_bucket, observed);

                if state.long_term.observe_and_act(observed) == DetectorAction::Fix {
                    let repaired = compromised.repair_all();
                    labor.record_fix(repaired);
                    fixes_at.push(global_slot);
                    realization = realize(&compromised)?;
                    observed_view = None;
                }
            }

            realized_demand.push(realization.grid_demand[slot]);
        }

        // Roll the realized day into the history (the detector keeps
        // learning from what actually happened). The demand series records
        // consumption `L_h`, matching the bootstrap epoch's convention.
        let theta = community.total_generation();
        for h in 0..slots_per_day {
            history.push(
                clean.price.at(h).value(),
                theta[h],
                realization.load().at(h).value(),
            );
        }
    }

    let par = {
        let series = TimeSeries::from_values(
            nms_types::Horizon::hourly(realized_demand.len()),
            realized_demand.clone(),
        )
        .map_err(|err| SimError::Config(ValidateError::new(err.to_string())))?;
        series.par().unwrap_or(1.0)
    };

    Ok(LongTermRunResult {
        accuracy,
        labor,
        realized_demand,
        par,
        true_buckets,
        observed_buckets,
        fixes_at,
        health,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nms_attack::PriceAttack;
    use nms_core::DetectorMode;

    fn timeline() -> AttackTimeline {
        AttackTimeline::new(
            vec![(4, 3), (20, 3)],
            PriceAttack::zero_window(16.0, 18.0).unwrap(),
        )
        .unwrap()
    }

    fn run_config(detector: Option<FrameworkConfig>) -> LongTermRunConfig {
        LongTermRunConfig {
            detection_days: 1,
            detector,
            timeline: timeline(),
            buckets: 4,
            bucket_fraction_step: 0.15,
            labor_per_fix: 10.0,
            labor_per_meter: 1.0,
            faults: None,
        }
    }

    #[test]
    fn config_validation() {
        assert!(run_config(None).validate().is_ok());
        let mut c = run_config(None);
        c.detection_days = 0;
        assert!(c.validate().is_err());
        let mut c = run_config(None);
        c.buckets = 1;
        assert!(c.validate().is_err());
        let mut c = run_config(None);
        c.bucket_fraction_step = 0.0;
        assert!(c.validate().is_err());
        let mut c = run_config(None);
        c.labor_per_fix = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn bucket_mapping() {
        assert_eq!(bucket_of(0, 100, 6, 0.1), 0);
        assert_eq!(bucket_of(10, 100, 6, 0.1), 1);
        assert_eq!(bucket_of(14, 100, 6, 0.1), 1);
        assert_eq!(bucket_of(16, 100, 6, 0.1), 2);
        assert_eq!(bucket_of(90, 100, 6, 0.1), 5); // clamped to top bucket
    }

    #[test]
    fn no_detection_baseline_runs() {
        let mut scenario = PaperScenario::small(10, 31);
        scenario.training_days = 3;
        let config = run_config(None);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let result = run_long_term_detection(&scenario, &config, &mut rng).unwrap();
        assert_eq!(result.realized_demand.len(), 24);
        assert!(result.accuracy.accuracy().is_none());
        assert_eq!(result.labor.fixes(), 0);
        assert!(result.par >= 1.0);
        // Attacker hacked meters and nobody fixed them.
        assert_eq!(result.true_buckets.len(), 24);
        assert!(*result.true_buckets.last().unwrap() > 0);
    }

    #[test]
    fn aware_detector_tracks_and_fixes() {
        let mut scenario = PaperScenario::small(10, 33);
        scenario.training_days = 4;
        let detector = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
        let config = run_config(Some(detector));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let result = run_long_term_detection(&scenario, &config, &mut rng).unwrap();
        assert_eq!(result.observed_buckets.len(), 24);
        // A 10-home fleet is far below the paper's scale, so the absolute
        // accuracy is noisy; this is a smoke test that the full pipeline
        // (calibration → observation → POMDP action) runs and produces a
        // coherent trace. Shape assertions live in tests/paper_shapes.rs.
        assert!(result.accuracy.accuracy().is_some());
        assert_eq!(result.true_buckets.len(), 24);
        assert!(result.observed_buckets.iter().all(|&o| o < config.buckets));
    }
}
