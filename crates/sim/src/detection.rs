//! The multi-day attack/detection simulation behind Fig 6 and Table 1.
//!
//! Per detection day the market clears a clean guideline price; a scripted
//! attacker compromises meters over time, and compromised homes schedule
//! against the manipulated signal. Every slot the detector compares the
//! realized grid demand against its own day-ahead prediction using the
//! *peak relative demand deviation* — the localized form of §4.1's PAR
//! comparison, which stays informative at small compromise fractions where
//! the attack spike has not yet overtaken the natural evening peak. The
//! statistic is mapped to an observed hacked-meter bucket through a
//! calibration table built in the detector's own world model, and the
//! observation feeds the POMDP which decides between monitoring and a
//! check-&-fix dispatch.
//!
//! Hacked homes are modeled as *unilateral deviators*: the day-ahead game
//! has already closed when the manipulated signal takes effect, so honest
//! homes keep their committed schedules while each compromised home
//! re-optimizes alone against the committed aggregate. The realization is
//! recomputed whenever the compromise set changes.
//!
//! Two drivers share the same per-day stepper:
//!
//! - [`run_long_term_detection`] — the original single-RNG run, kept
//!   bit-identical with its pre-supervision behavior;
//! - [`SupervisedRun`] / [`run_long_term_supervised`] — the crash-safe
//!   variant: every day draws from its own `(seed, day)`-derived stream
//!   and is journaled on completion, so a killed run resumes
//!   bit-identically from the journal (see `journal` and DESIGN.md §8).

use std::path::Path;
use std::sync::Arc;

use nms_obs::{span, NoopRecorder, Recorder, Stopwatch, TraceEvent};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use nms_attack::{AttackTimeline, CompromiseSet};
use nms_core::{
    meter_day_failed, sanitize_series, AccuracyTracker, DetectorAction, FrameworkConfig,
    LaborTracker, LongTermDetector, MeterQuarantine, ParObservationMap, PredictedResponse,
    PricePredictor, QuarantineConfig, QuarantineEvent, QuarantineTransition, SanitizeConfig,
};
use nms_forecast::PriceHistory;
use nms_par::Parallelism;
use nms_pricing::PriceSignal;
use nms_smarthome::Community;
use nms_solver::{CacheStats, PersistentCache};
use nms_types::{
    DayHealth, MeterId, RetryPolicy, RunHealth, SolveBudget, StorageFaultCounts,
    StorageFaultLedger, TimeSeries,
    ValidateError,
};
use nms_vfs::{StdVfs, StoragePolicy, Vfs};

use crate::calibrate::{calibrate_detector, peak_deviation};
use crate::faults::{corrupt_day_meters, FaultPlan};
use crate::journal::{
    DayRecord, FixRecord, HistoryRow, JournalError, JournalHeader, RunJournal, JOURNAL_VERSION,
};
use crate::{CommunityGenerator, DayOutcome, Market, PaperScenario, SimError};

/// Slots per simulated day (the paper's hourly horizon).
const SLOTS_PER_DAY: usize = 24;

/// Configuration for [`run_long_term_detection`].
///
/// Serializable; the robustness knobs (`sanitize`, `retry`, `budget`,
/// `quarantine`) all default, so configurations serialized before they
/// existed still deserialize.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LongTermRunConfig {
    /// Days simulated after the training epoch (the paper uses 2 → 48 h).
    pub detection_days: usize,
    /// The detector under test; `None` runs the no-detection baseline.
    pub detector: Option<FrameworkConfig>,
    /// The scripted attacker.
    pub timeline: AttackTimeline,
    /// Hacked-meter buckets for state/observation (bucket `i` ≈
    /// `i · bucket_fraction_step` of the fleet compromised).
    pub buckets: usize,
    /// Fleet fraction per bucket.
    pub bucket_fraction_step: f64,
    /// Labor cost per check-&-fix dispatch.
    pub labor_per_fix: f64,
    /// Labor cost per meter actually repaired.
    pub labor_per_meter: f64,
    /// Telemetry fault injection; `None` (or a no-op plan) leaves the
    /// detector's view pristine.
    pub faults: Option<FaultPlan>,
    /// Telemetry screening thresholds for the detector's view.
    #[serde(default)]
    pub sanitize: SanitizeConfig,
    /// Retry schedule for the trainers behind calibration.
    #[serde(default)]
    pub retry: RetryPolicy,
    /// Watchdog budget for iterative solves/training (default unlimited).
    #[serde(default)]
    pub budget: SolveBudget,
    /// Per-meter quarantine breaker thresholds (active only with fault
    /// injection, which is when per-meter telemetry exists).
    #[serde(default)]
    pub quarantine: QuarantineConfig,
    /// Worker threads for the calibration backtest (defaults to
    /// sequential, which is bit-identical to every parallel setting).
    #[serde(default)]
    pub parallelism: Parallelism,
    /// Fixed-point rounds of `price ← design(demand(price))` per cleared
    /// detection day (see [`Market::clear_day`]). The historical value — and
    /// what configurations serialized before this knob existed load as — is
    /// 2. Higher values iterate the market to (often bitwise) convergence;
    /// once the price repeats exactly, the remaining rounds are exact
    /// re-solves a [`DayCacheConfig`] persistent cache answers wholesale.
    #[serde(default = "default_clearing_iterations")]
    pub clearing_iterations: usize,
}

fn default_clearing_iterations() -> usize {
    2
}

impl LongTermRunConfig {
    /// Validates the run configuration against a scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] for zero days/buckets, a fraction step
    /// outside `(0, 1]`, negative labor costs, or an invalid detector,
    /// fault, retry, budget, or quarantine configuration.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.detection_days == 0 {
            return Err(ValidateError::new("need at least one detection day"));
        }
        if self.buckets < 2 {
            return Err(ValidateError::new("need at least two buckets"));
        }
        if !(self.bucket_fraction_step > 0.0 && self.bucket_fraction_step <= 1.0) {
            return Err(ValidateError::new("bucket fraction step must be in (0, 1]"));
        }
        for (name, c) in [
            ("labor_per_fix", self.labor_per_fix),
            ("labor_per_meter", self.labor_per_meter),
        ] {
            if !c.is_finite() || c < 0.0 {
                return Err(ValidateError::new(format!("{name} must be non-negative")));
            }
        }
        if let Some(detector) = &self.detector {
            detector.validate()?;
        }
        if let Some(faults) = &self.faults {
            faults.validate()?;
        }
        self.retry.validate()?;
        self.budget.validate()?;
        self.quarantine.validate()?;
        self.parallelism.validate().map_err(ValidateError::new)?;
        Ok(())
    }
}

/// Result of one long-term run.
#[derive(Debug, Clone)]
pub struct LongTermRunResult {
    /// Per-slot observation accuracy (empty for the no-detection baseline).
    pub accuracy: AccuracyTracker,
    /// Labor spent on fixes.
    pub labor: LaborTracker,
    /// Realized community grid demand, slot by slot across all detection
    /// days.
    pub realized_demand: Vec<f64>,
    /// PAR of the realized demand over the whole run (Table 1's metric).
    pub par: f64,
    /// True hacked bucket per slot.
    pub true_buckets: Vec<usize>,
    /// Observed bucket per slot (empty for the no-detection baseline).
    pub observed_buckets: Vec<usize>,
    /// Global slots at which a fix was dispatched.
    pub fixes_at: Vec<usize>,
    /// Degradation ledger: faults seen, slots imputed, retries and
    /// fallbacks consumed anywhere in the pipeline, budget breaches, and
    /// quarantine transitions.
    pub health: RunHealth,
    /// The training/calibration epoch's slice of the ledger (exported as
    /// the `training` row of the health timeline).
    pub training_health: DayHealth,
    /// Per-detection-day health timeline rows.
    pub day_health: Vec<DayHealth>,
    /// Every quarantine breaker transition, in day then meter order.
    pub quarantine_events: Vec<QuarantineEvent>,
    /// Final quarantine tracker state (`None` without fault injection).
    pub quarantine: Option<MeterQuarantine>,
    /// Final POMDP belief over hacked-meter buckets (`None` for the
    /// no-detection baseline).
    pub final_belief: Option<Vec<f64>>,
}

fn bucket_of(count: usize, fleet: usize, buckets: usize, step: f64) -> usize {
    let fraction = count as f64 / fleet as f64;
    ((fraction / step).round() as usize).min(buckets - 1)
}

/// Shannon entropy (nats) of a belief vector; zero entries contribute
/// nothing. A collapsing belief → entropy falling toward zero, the
/// telemetry signature of the POMDP locking onto a bucket.
fn belief_entropy(belief: &[f64]) -> f64 {
    -belief
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.ln())
        .sum::<f64>()
}

// ---------------------------------------------------------------------------
// Shared run machinery
// ---------------------------------------------------------------------------

/// Immutable per-run context built once from the scenario.
pub(crate) struct RunSetup {
    market: Market,
    generator: CommunityGenerator,
    weather: Vec<f64>,
    fleet: usize,
}

/// Everything the trained detector carries between days.
struct DetectorState {
    framework: FrameworkConfig,
    price_predictor: PricePredictor,
    observation_map: ParObservationMap,
    long_term: LongTermDetector,
}

/// All evolving state of a long-term run between days — exactly what the
/// journal's day records let a resume reconstruct.
pub(crate) struct RunState {
    health: RunHealth,
    training_health: DayHealth,
    history: PriceHistory,
    detector: Option<DetectorState>,
    compromised: CompromiseSet,
    accuracy: AccuracyTracker,
    labor: LaborTracker,
    realized_demand: Vec<f64>,
    true_buckets: Vec<usize>,
    observed_buckets: Vec<usize>,
    fixes_at: Vec<usize>,
    quarantine: Option<MeterQuarantine>,
    day_health: Vec<DayHealth>,
    quarantine_events: Vec<QuarantineEvent>,
}

pub(crate) fn prepare(
    scenario: &PaperScenario,
    config: &LongTermRunConfig,
) -> Result<RunSetup, SimError> {
    scenario.validate()?;
    config.validate()?;
    let market = Market::new(scenario)?;
    let generator = scenario.generator();
    let total_days = scenario.training_days + config.detection_days;
    let weather = scenario.weather_factors(total_days);
    Ok(RunSetup {
        market,
        generator,
        weather,
        fleet: scenario.customers,
    })
}

/// Training epoch: bootstrap history, train the price predictor, calibrate
/// the observation map, solve the POMDP, arm the quarantine breakers.
fn train(
    scenario: &PaperScenario,
    config: &LongTermRunConfig,
    setup: &RunSetup,
    rng: &mut impl Rng,
    rec: &dyn Recorder,
) -> Result<RunState, SimError> {
    let watch = Stopwatch::start();
    let _span = span(rec, "training");
    let mut health = RunHealth::new();
    let history =
        setup
            .market
            .bootstrap_history_recorded(&setup.generator, scenario.training_days, rng, rec)?;

    let detector = match &config.detector {
        None => None,
        Some(framework) => {
            let calibration = calibrate_detector(
                scenario,
                framework,
                &config.timeline,
                config.buckets,
                config.bucket_fraction_step,
                &config.retry,
                &config.budget,
                &setup.market,
                &setup.generator,
                &history,
                &config.parallelism,
                rng,
                rec,
            )?;
            health.merge(&calibration.health);
            let mut long_term_config = framework.long_term;
            long_term_config.buckets = config.buckets;
            let long_term = LongTermDetector::with_observation_matrix(
                long_term_config,
                calibration.observation_matrix.clone(),
            )?;
            Some(DetectorState {
                framework: framework.clone(),
                price_predictor: calibration.price_predictor,
                observation_map: calibration.observation_map,
                long_term,
            })
        }
    };

    // Per-meter quarantine needs per-meter telemetry, which only exists
    // under fault injection.
    let quarantine = match config.faults.as_ref().filter(|plan| !plan.is_noop()) {
        Some(_) => Some(MeterQuarantine::new(setup.fleet, config.quarantine)?),
        None => None,
    };

    rec.observe("detect_training_seconds", watch.secs());
    if rec.enabled() {
        rec.event(
            &TraceEvent::new("training")
                .field("training_days", scenario.training_days as f64)
                .field("detector", f64::from(u8::from(detector.is_some())))
                .field("seconds", watch.secs()),
        );
    }

    let training_health = DayHealth::delta(0, &RunHealth::new(), &health, 0);
    Ok(RunState {
        health,
        training_health,
        history,
        detector,
        compromised: CompromiseSet::new(),
        accuracy: AccuracyTracker::new(),
        labor: LaborTracker::new(config.labor_per_fix, config.labor_per_meter),
        realized_demand: Vec::with_capacity(config.detection_days * SLOTS_PER_DAY),
        true_buckets: Vec::new(),
        observed_buckets: Vec::new(),
        fixes_at: Vec::new(),
        quarantine,
        day_health: Vec::with_capacity(config.detection_days),
        quarantine_events: Vec::new(),
    })
}

/// Builds the detector's telemetry view of one realized day: corrupt the
/// per-meter reports under `plan`, drop quarantined meters from the
/// re-aggregation, then sanitize against the detector's own prediction.
/// Fault and imputation tallies are recorded once per day (rebuilds within
/// a day redraw the identical faults); the per-meter failure verdicts that
/// feed the quarantine breakers are captured on the first build.
#[allow(clippy::too_many_arguments)]
fn faulted_view(
    plan: &FaultPlan,
    day: usize,
    realization: &PredictedResponse,
    predicted: &TimeSeries<f64>,
    sanitize: &SanitizeConfig,
    quarantine: Option<&MeterQuarantine>,
    health: &mut RunHealth,
    day_recorded: &mut bool,
    day_failed: &mut Option<Vec<bool>>,
    rec: &dyn Recorder,
) -> Result<TimeSeries<f64>, SimError> {
    let per_meter = corrupt_day_meters(plan, day, &realization.schedule);
    let excluded: Vec<bool> = (0..per_meter.fleet())
        .map(|m| quarantine.is_some_and(|q| q.is_excluded(m)))
        .collect();
    let observed = per_meter.aggregate_excluding(&excluded);
    let report =
        sanitize_series(&observed, predicted, sanitize).map_err(|err| SimError::Telemetry {
            detail: err.to_string(),
        })?;
    if !*day_recorded {
        health.faults_injected.merge(&per_meter.injected);
        health.slots_imputed += report.imputed_slots;
        rec.add("sim_faults_injected", per_meter.injected.total() as u64);
        rec.add("sim_slots_imputed", report.imputed_slots as u64);
        if rec.enabled() {
            rec.event(
                &TraceEvent::new("sanitize")
                    .day(day)
                    .field("faults_injected", per_meter.injected.total() as f64)
                    .field("slots_imputed", report.imputed_slots as f64)
                    .field(
                        "meters_excluded",
                        excluded.iter().filter(|&&e| e).count() as f64,
                    ),
            );
        }
        *day_recorded = true;
    }
    if day_failed.is_none() {
        if let Some(quarantine) = quarantine {
            // Expected per-meter reading magnitude: the predicted community
            // demand shared across the fleet.
            let fleet = per_meter.fleet().max(1);
            let scale = predicted.mean().max(0.0) / fleet as f64;
            *day_failed = Some(
                (0..per_meter.fleet())
                    .map(|m| {
                        meter_day_failed(
                            per_meter.meter_readings(m),
                            scale,
                            sanitize,
                            quarantine.config(),
                        )
                    })
                    .collect(),
            );
        }
    }
    Ok(report.cleaned)
}

/// The sorted meter indices of a compromise set — the canonical form the
/// speculation commit check compares.
fn compromised_indices(set: &CompromiseSet) -> Vec<usize> {
    let mut indices: Vec<usize> = set.iter().map(|m| m.index()).collect();
    indices.sort_unstable();
    indices
}

/// Realizes one day's response for a compromise set: the committed (clean)
/// plan with hacked homes deviating unilaterally. Pure in
/// `(community, clean, manipulated, realization_seed, compromised)` — the
/// property that lets a speculating worker compute it ahead of time.
fn realize_day(
    setup: &RunSetup,
    community: &Community,
    clean: &DayOutcome,
    manipulated: &PriceSignal,
    realization_seed: u64,
    compromised: &CompromiseSet,
    rec: &dyn Recorder,
) -> Result<PredictedResponse, SimError> {
    if compromised.is_empty() {
        return Ok(clean.response.clone());
    }
    let meters: Vec<MeterId> = compromised.iter().collect();
    let mut child = ChaCha8Rng::seed_from_u64(realization_seed);
    Ok(setup.market.truth_model().respond_unilaterally_recorded(
        community,
        &clean.response,
        manipulated,
        &meters,
        &mut child,
        rec,
    )?)
}

/// The belief-independent front half of one detection day: everything that
/// is a pure function of `(scenario, config, day_offset, day RNG stream,
/// assumed compromise set)` and can therefore be computed ahead of time by
/// a speculating worker (DESIGN.md §15). The back half
/// ([`simulate_day_with_inputs`]) consumes this plus the run state.
pub(crate) struct DayInputs {
    /// Which detection day these inputs belong to.
    pub(crate) day_offset: usize,
    /// The day's community (weather-scaled PV, per-day task jitter).
    pub(crate) community: Community,
    /// The cleanly cleared market day.
    pub(crate) clean: DayOutcome,
    /// The attacker-manipulated price signal derived from `clean`.
    pub(crate) manipulated: PriceSignal,
    /// Seed for the realization / prediction child RNGs.
    pub(crate) realization_seed: u64,
    /// Sorted meter indices the `realization` was computed for. The commit
    /// check: inputs apply only to a run whose compromise set at day start
    /// equals this assumption.
    pub(crate) assumed: Vec<usize>,
    /// The realized response under `assumed`.
    pub(crate) realization: PredictedResponse,
    /// Wall-clock spent clearing (telemetry only).
    pub(crate) clearing_secs: f64,
}

/// Computes one day's [`DayInputs`], consuming the day RNG exactly as
/// [`simulate_day`] historically did: one draw inside the market clearing,
/// then one draw for the realization seed. Nothing else in the day touches
/// `rng`, so precomputing these inputs from the day's seeded stream is
/// bit-identical to computing them inline.
#[allow(clippy::too_many_arguments)]
pub(crate) fn prepare_day_inputs(
    scenario: &PaperScenario,
    config: &LongTermRunConfig,
    setup: &RunSetup,
    day_offset: usize,
    assumed: &CompromiseSet,
    rng: &mut impl Rng,
    clearing_cache: Option<&mut PersistentCache>,
    rec: &dyn Recorder,
) -> Result<DayInputs, SimError> {
    let day = scenario.training_days + day_offset;
    let community = setup.generator.community_for_day(day, setup.weather[day]);
    let clearing_watch = Stopwatch::start();
    let clean = {
        let _span = span(rec, "clearing");
        match clearing_cache {
            Some(cache) => setup.market.clear_day_cached_recorded(
                &community,
                config.clearing_iterations,
                rng,
                cache,
                rec,
            )?,
            None => setup.market.clear_day_recorded(
                &community,
                config.clearing_iterations,
                rng,
                rec,
            )?,
        }
    };
    let clearing_secs = clearing_watch.secs();
    let manipulated = config.timeline.attack().apply(&clean.price);
    let realization_seed: u64 = rng.gen();
    let realization = realize_day(
        setup,
        &community,
        &clean,
        &manipulated,
        realization_seed,
        assumed,
        rec,
    )?;
    Ok(DayInputs {
        day_offset,
        community,
        clean,
        manipulated,
        realization_seed,
        assumed: compromised_indices(assumed),
        realization,
        clearing_secs,
    })
}

/// Simulates one detection day, mutating `state` and returning the day's
/// journalable transcript. Both run drivers call exactly this, so a
/// supervised run and the legacy run behave identically given identical
/// RNG draws.
fn simulate_day(
    scenario: &PaperScenario,
    config: &LongTermRunConfig,
    setup: &RunSetup,
    state: &mut RunState,
    day_offset: usize,
    rng: &mut impl Rng,
    rec: &dyn Recorder,
) -> Result<DayRecord, SimError> {
    simulate_day_cached(
        scenario, config, setup, state, day_offset, rng, None, None, rec,
    )
}

/// [`simulate_day`] with optional cross-day solver caches for the market
/// clearing and the detector's load prediction. `None` for both is exactly
/// the historical path; supplied caches change wall-clock only (hits are
/// exact-verified — see [`PersistentCache`]).
#[allow(clippy::too_many_arguments)]
fn simulate_day_cached(
    scenario: &PaperScenario,
    config: &LongTermRunConfig,
    setup: &RunSetup,
    state: &mut RunState,
    day_offset: usize,
    rng: &mut impl Rng,
    clearing_cache: Option<&mut PersistentCache>,
    prediction_cache: Option<&mut PersistentCache>,
    rec: &dyn Recorder,
) -> Result<DayRecord, SimError> {
    let _day_span = span(rec, "detect_day");
    let inputs = prepare_day_inputs(
        scenario,
        config,
        setup,
        day_offset,
        &state.compromised,
        rng,
        clearing_cache,
        rec,
    )?;
    simulate_day_with_inputs(scenario, config, setup, state, inputs, prediction_cache, rec)
}

/// The stateful back half of one detection day: prediction, slot loop,
/// detector actions, quarantine, history roll-in. Requires
/// `inputs.assumed` to equal the run's compromise set at day start — the
/// speculation commit check; [`simulate_day`] satisfies it trivially by
/// preparing inputs from the live set.
pub(crate) fn simulate_day_with_inputs(
    scenario: &PaperScenario,
    config: &LongTermRunConfig,
    setup: &RunSetup,
    state: &mut RunState,
    inputs: DayInputs,
    prediction_cache: Option<&mut PersistentCache>,
    rec: &dyn Recorder,
) -> Result<DayRecord, SimError> {
    let DayInputs {
        day_offset,
        community,
        clean,
        manipulated,
        realization_seed,
        assumed,
        realization: initial_realization,
        clearing_secs,
    } = inputs;
    if assumed != compromised_indices(&state.compromised) {
        return Err(SimError::Config(ValidateError::new(
            "day inputs were speculated for a different compromise set than the run holds",
        )));
    }
    let fault_plan = config.faults.as_ref().filter(|plan| !plan.is_noop());
    let fleet = setup.fleet;
    let day = scenario.training_days + day_offset;
    let health_before = state.health.clone();
    let true_start = state.true_buckets.len();
    let observed_start = state.observed_buckets.len();
    let demand_start = state.realized_demand.len();

    // The detector's day-ahead view.
    let prediction_watch = Stopwatch::start();
    let prediction_span = span(rec, "prediction");
    let day_prediction = match state.detector.as_mut() {
        None => None,
        Some(det) => {
            let theta = community.total_generation();
            let generation_forecast = det
                .price_predictor
                .features()
                .target_generation
                .then_some(&theta);
            let predicted_price = det.price_predictor.predict_day(
                &state.history,
                community.horizon(),
                generation_forecast,
            )?;
            let mut predicted_rng = ChaCha8Rng::seed_from_u64(realization_seed);
            let predicted = match prediction_cache {
                Some(cache) => det.framework.load.predict_cached_recorded(
                    &community,
                    &predicted_price,
                    &mut predicted_rng,
                    cache,
                    rec,
                )?,
                None => det.framework.load.predict_recorded(
                    &community,
                    &predicted_price,
                    &mut predicted_rng,
                    rec,
                )?,
            };
            Some(predicted)
        }
    };
    drop(prediction_span);
    let prediction_secs = prediction_watch.secs();

    // Quarantined suspects feed the observation: a breaker the detector has
    // opened is a meter it already distrusts, so the observed bucket can
    // never report less compromise than the quarantine census implies.
    let suspect_bucket = state.quarantine.as_ref().map_or(0, |q| {
        bucket_of(
            q.open_count(),
            fleet,
            config.buckets,
            config.bucket_fraction_step,
        )
    });

    // Re-realize the day whenever the compromise set changes mid-day; the
    // day-start realization arrived precomputed in `inputs`.
    let realize = |compromised: &CompromiseSet| -> Result<PredictedResponse, SimError> {
        realize_day(
            setup,
            &community,
            &clean,
            &manipulated,
            realization_seed,
            compromised,
            rec,
        )
    };
    let mut realization = initial_realization;
    // The telemetry view of the current realization, rebuilt lazily
    // whenever the realization changes mid-day.
    let mut observed_view: Option<TimeSeries<f64>> = None;
    let mut day_faults_recorded = false;
    let mut day_failed: Option<Vec<bool>> = None;
    let mut fixes: Vec<FixRecord> = Vec::new();
    // Wall-clock spent in the PAR statistic vs the POMDP update, summed
    // over the day's slots. Timings flow only into telemetry, never back
    // into the simulation (the nms-obs determinism contract).
    let mut par_secs = 0.0;
    let mut pomdp_secs = 0.0;

    let slots_span = span(rec, "slots");
    for slot in 0..SLOTS_PER_DAY {
        let global_slot = day_offset * SLOTS_PER_DAY + slot;
        let newly = config
            .timeline
            .step(global_slot, &mut state.compromised, fleet);
        if !newly.is_empty() {
            realization = realize(&state.compromised)?;
            observed_view = None;
        }

        let true_bucket = bucket_of(
            state.compromised.count(),
            fleet,
            config.buckets,
            config.bucket_fraction_step,
        );
        state.true_buckets.push(true_bucket);

        if let (Some(det), Some(predicted)) = (state.detector.as_mut(), day_prediction.as_ref()) {
            if fault_plan.is_some() && observed_view.is_none() {
                if let Some(plan) = fault_plan {
                    observed_view = Some(faulted_view(
                        plan,
                        day,
                        &realization,
                        &predicted.grid_demand,
                        &config.sanitize,
                        state.quarantine.as_ref(),
                        &mut state.health,
                        &mut day_faults_recorded,
                        &mut day_failed,
                        rec,
                    )?);
                }
            }
            let par_watch = Stopwatch::start();
            let telemetry: &TimeSeries<f64> =
                observed_view.as_ref().unwrap_or(&realization.grid_demand);
            let statistic = peak_deviation(telemetry, &predicted.grid_demand);
            state.health.slots_observed += 1;
            let observed = det.observation_map.observe(statistic).max(suspect_bucket);
            par_secs += par_watch.secs();
            if std::env::var("NMS_DEBUG_CALIBRATION").is_ok() {
                eprintln!(
                    "slot {global_slot}: stat {statistic:.4} true {true_bucket} obs {observed}"
                );
            }
            state.observed_buckets.push(observed);
            state.accuracy.record(true_bucket, observed);
            if observed != true_bucket {
                rec.add("detect_bucket_error", 1);
            }
            if rec.enabled() {
                rec.event(
                    &TraceEvent::new("slot")
                        .day(day_offset)
                        .field("slot", global_slot as f64)
                        .field("statistic", statistic)
                        .field("true_bucket", true_bucket as f64)
                        .field("observed_bucket", observed as f64),
                );
            }

            let pomdp_watch = Stopwatch::start();
            let action = det.long_term.observe_and_act(observed);
            pomdp_secs += pomdp_watch.secs();
            if action == DetectorAction::Fix {
                let repaired = state.compromised.repair_all();
                state.labor.record_fix(repaired);
                state.fixes_at.push(global_slot);
                fixes.push(FixRecord {
                    slot: global_slot,
                    repaired,
                });
                if rec.enabled() {
                    rec.event(
                        &TraceEvent::new("fix")
                            .day(day_offset)
                            .field("slot", global_slot as f64)
                            .field("repaired", repaired as f64),
                    );
                }
                realization = realize(&state.compromised)?;
                observed_view = None;
            }
        }

        state.realized_demand.push(realization.grid_demand[slot]);
    }
    drop(slots_span);

    // End of day: advance the quarantine breakers on the day's per-meter
    // verdicts. Exclusions take effect from the next day's aggregation.
    let mut events = Vec::new();
    if let (Some(quarantine), Some(failed)) = (state.quarantine.as_mut(), day_failed.as_ref()) {
        events = quarantine.observe_day(day, failed);
        for event in &events {
            match event.transition {
                QuarantineTransition::Tripped | QuarantineTransition::Retripped => {
                    state.health.quarantine_trips += 1;
                    rec.add("sim_quarantine_trips", 1);
                }
                QuarantineTransition::Recovered => {
                    state.health.quarantine_recoveries += 1;
                    rec.add("sim_quarantine_recoveries", 1);
                }
                QuarantineTransition::Probation => {}
            }
            if rec.enabled() {
                rec.event(
                    &TraceEvent::new("quarantine")
                        .day(day_offset)
                        .field("meter", event.meter as f64)
                        .label("transition", format!("{:?}", event.transition)),
                );
            }
        }
    }
    state.quarantine_events.extend(events.iter().copied());

    // Roll the realized day into the history (the detector keeps learning
    // from what actually happened). The demand series records consumption
    // `L_h`, matching the bootstrap epoch's convention.
    let theta = community.total_generation();
    let mut history_rows = Vec::with_capacity(SLOTS_PER_DAY);
    for h in 0..SLOTS_PER_DAY {
        let row = HistoryRow {
            price: clean.price.at(h).value(),
            generation: theta[h],
            demand: realization.load().at(h).value(),
        };
        state.history.push(row.price, row.generation, row.demand);
        history_rows.push(row);
    }

    let meters_quarantined = state.quarantine.as_ref().map_or(0, MeterQuarantine::open_count);
    let day_health = DayHealth::delta(day_offset, &health_before, &state.health, meters_quarantined);
    state.day_health.push(day_health);

    // Per-day phase timings and belief telemetry. Everything recorded here
    // is either wall-clock (never fed back into the run) or a value the
    // simulation already produced.
    rec.observe("detect_clearing_seconds", clearing_secs);
    rec.observe("detect_prediction_seconds", prediction_secs);
    rec.observe("detect_par_seconds", par_secs);
    rec.observe("detect_pomdp_seconds", pomdp_secs);
    if let Some(det) = state.detector.as_ref() {
        rec.gauge("detect_belief_entropy", belief_entropy(det.long_term.belief().as_slice()));
    }
    if rec.enabled() {
        let mut event = TraceEvent::new("day_phases")
            .day(day_offset)
            .field("clearing_seconds", clearing_secs)
            .field("prediction_seconds", prediction_secs)
            .field("par_seconds", par_secs)
            .field("pomdp_seconds", pomdp_secs)
            .field("meters_compromised", state.compromised.count() as f64)
            .field("meters_quarantined", meters_quarantined as f64);
        if let Some(det) = state.detector.as_ref() {
            event = event.field(
                "belief_entropy",
                belief_entropy(det.long_term.belief().as_slice()),
            );
        }
        rec.event(&event);
    }

    Ok(DayRecord {
        day: day_offset,
        true_buckets: state.true_buckets[true_start..].to_vec(),
        observed_buckets: state.observed_buckets[observed_start..].to_vec(),
        realized_demand: state.realized_demand[demand_start..].to_vec(),
        fixes,
        history_rows,
        compromised: state.compromised.iter().map(|m| m.index()).collect(),
        belief: state
            .detector
            .as_ref()
            .map(|det| det.long_term.belief().as_slice().to_vec()),
        health: state.health.clone(),
        day_health,
        quarantine: state.quarantine.clone(),
        events,
    })
}

/// Re-applies one journaled day to the run state without re-simulating it.
fn replay_day(state: &mut RunState, record: &DayRecord) -> Result<(), SimError> {
    state.true_buckets.extend_from_slice(&record.true_buckets);
    state
        .observed_buckets
        .extend_from_slice(&record.observed_buckets);
    state
        .realized_demand
        .extend_from_slice(&record.realized_demand);
    for (&true_bucket, &observed) in record.true_buckets.iter().zip(&record.observed_buckets) {
        state.accuracy.record(true_bucket, observed);
    }
    for fix in &record.fixes {
        state.labor.record_fix(fix.repaired);
        state.fixes_at.push(fix.slot);
    }
    for row in &record.history_rows {
        state.history.push(row.price, row.generation, row.demand);
    }
    state.compromised = record.compromised.iter().map(|&m| MeterId::new(m)).collect();
    if let (Some(det), Some(belief)) = (state.detector.as_mut(), record.belief.as_ref()) {
        det.long_term.restore_belief(belief)?;
    }
    state.health = record.health.clone();
    state.quarantine = record.quarantine.clone();
    state.day_health.push(record.day_health);
    state.quarantine_events.extend(record.events.iter().copied());
    Ok(())
}

fn finalize(state: RunState) -> Result<LongTermRunResult, SimError> {
    let par = {
        let series = TimeSeries::from_values(
            nms_types::Horizon::hourly(state.realized_demand.len()),
            state.realized_demand.clone(),
        )
        .map_err(|err| SimError::Config(ValidateError::new(err.to_string())))?;
        series.par().unwrap_or(1.0)
    };

    Ok(LongTermRunResult {
        final_belief: state
            .detector
            .as_ref()
            .map(|det| det.long_term.belief().as_slice().to_vec()),
        accuracy: state.accuracy,
        labor: state.labor,
        realized_demand: state.realized_demand,
        par,
        true_buckets: state.true_buckets,
        observed_buckets: state.observed_buckets,
        fixes_at: state.fixes_at,
        health: state.health,
        training_health: state.training_health,
        day_health: state.day_health,
        quarantine_events: state.quarantine_events,
        quarantine: state.quarantine,
    })
}

/// Runs the long-term attack/detection simulation.
///
/// # Errors
///
/// Returns [`SimError`] on invalid configurations or solver failures.
pub fn run_long_term_detection(
    scenario: &PaperScenario,
    config: &LongTermRunConfig,
    rng: &mut impl Rng,
) -> Result<LongTermRunResult, SimError> {
    run_long_term_detection_recorded(scenario, config, rng, &NoopRecorder)
}

/// [`run_long_term_detection`] with observability routed into `rec`.
///
/// The recorder sees per-day phase timings, solver convergence telemetry,
/// sanitize/quarantine events, and belief entropy; it never feeds anything
/// back, so results are bit-identical to the unrecorded run
/// (`tests/obs_determinism.rs` asserts this).
///
/// # Errors
///
/// Same as [`run_long_term_detection`].
pub fn run_long_term_detection_recorded(
    scenario: &PaperScenario,
    config: &LongTermRunConfig,
    rng: &mut impl Rng,
    rec: &dyn Recorder,
) -> Result<LongTermRunResult, SimError> {
    let setup = prepare(scenario, config)?;
    let mut state = train(scenario, config, &setup, rng, rec)?;
    for day_offset in 0..config.detection_days {
        simulate_day(scenario, config, &setup, &mut state, day_offset, rng, rec)?;
    }
    finalize(state)
}

// ---------------------------------------------------------------------------
// Supervised (crash-safe) runner
// ---------------------------------------------------------------------------

/// Stream tag decorrelating the training epoch from the day streams.
const TRAINING_STREAM: u64 = 0x7472_6169_6e69_6e67; // "training"

/// The seeded stream for detection day `day_offset` of a supervised run.
pub(crate) fn day_stream_seed(seed: u64, day_offset: usize) -> u64 {
    seed.wrapping_add((day_offset as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Fingerprints a configuration through its `Debug` rendering — stable
/// enough to catch a journal being resumed with a different scenario or
/// config, without requiring every nested type to serialize.
fn fingerprint(debug: impl std::fmt::Debug) -> u64 {
    crate::journal::fnv1a64(format!("{debug:?}").as_bytes())
}

/// A crash-safe long-horizon detection run: training replays from a seeded
/// stream, each detection day draws from its own `(seed, day)` stream and
/// is journaled on completion, and [`SupervisedRun::new`] resumes from
/// whatever complete prefix of days the journal holds.
///
/// A supervised run with seed `s` is **not** sample-identical to
/// `run_long_term_detection` with an RNG seeded to `s` — the legacy run
/// threads one RNG through everything, which cannot be checkpointed
/// without serializing RNG state. It *is* bit-identical to itself across
/// kill/resume at any day boundary, which is the property the journal
/// guarantees (and `tests/fault_robustness.rs` asserts).
pub struct SupervisedRun {
    scenario: PaperScenario,
    config: LongTermRunConfig,
    seed: u64,
    setup: RunSetup,
    state: RunState,
    journal: RunJournal,
    next_day: usize,
    recorder: Arc<dyn Recorder>,
    /// Per-run storage-fault ledger, shared with (cloned from) the
    /// [`SupervisedOptions`] that built this run. Deliberately NOT part of
    /// `state.health`: journaled day records and exported CSVs must stay
    /// bit-identical whether or not this process weathered storage faults,
    /// so the tally is merged into the *result's* ledger only at
    /// [`SupervisedRun::finish`]. Owning the ledger in the options (rather
    /// than a plain field) means a supervisor that tears a run down and
    /// rebuilds it from its journal keeps the same tally across rebuilds,
    /// while two runs built from independent options can never see each
    /// other's faults.
    storage: StorageFaultLedger,
    /// The cache knob this run was built with (handed to the speculative
    /// pipeline's worker so it caches the same way).
    cache: DayCacheConfig,
    /// Cross-day memo cache for the market clearing's truth-model solves.
    clearing_cache: Option<PersistentCache>,
    /// Cross-day memo cache for the detector's load-prediction solves.
    prediction_cache: Option<PersistentCache>,
}

/// Cross-day solver cache knob for a [`SupervisedRun`] (DESIGN.md §15).
///
/// When enabled, the runner carries two [`PersistentCache`]s across day
/// boundaries — one for the market clearing's truth model, one for the
/// detector's load prediction (they solve under different game
/// configurations, so sharing one cache would thrash its invalidation).
/// Purely a wall-clock knob: cached days are bit-identical to cold days,
/// which is why this lives in the options and not in the journaled
/// [`LongTermRunConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayCacheConfig {
    /// Whether cross-day caches are carried at all (default off).
    pub enabled: bool,
    /// Bucketing quantum (kWh) for the caches' quantized lookup buckets.
    pub quantum: f64,
}

impl Default for DayCacheConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            quantum: 1e-9,
        }
    }
}

impl DayCacheConfig {
    /// The enabled configuration at the default quantum.
    #[must_use]
    pub fn on() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Builds one cache under this configuration (`None` when disabled).
    pub(crate) fn build(&self) -> Result<Option<PersistentCache>, SimError> {
        if !self.enabled {
            return Ok(None);
        }
        Ok(Some(
            PersistentCache::new(self.quantum).map_err(SimError::Config)?,
        ))
    }
}

/// Injectable plumbing for a [`SupervisedRun`]: which storage the journal
/// writes through, which recorder sees telemetry, and the journal-append
/// degradation policy. `Default` is production plumbing — the real
/// filesystem, no recorder, 3 attempts with 2 ms linear backoff.
#[derive(Clone)]
pub struct SupervisedOptions {
    /// Storage the journal (and any sweep-driven exports) lives on.
    pub vfs: Arc<dyn Vfs>,
    /// Telemetry sink for training and every stepped day.
    pub recorder: Arc<dyn Recorder>,
    /// Journal append degradation policy (rollback + retry-with-backoff,
    /// then a hard [`SimError::Journal`]).
    pub policy: StoragePolicy,
    /// The run's storage-fault tally. Cloning the options shares the
    /// underlying ledger (every rebuild of one shard keeps accumulating
    /// into the same tally); `Default` starts a fresh, independent one, so
    /// concurrent runs built from separate options cannot cross-contaminate.
    pub storage: StorageFaultLedger,
    /// Cross-day solver caching (off by default; results are bit-identical
    /// either way, so this is deliberately not journaled or fingerprinted).
    pub cache: DayCacheConfig,
}

impl Default for SupervisedOptions {
    fn default() -> Self {
        Self {
            vfs: Arc::new(StdVfs),
            recorder: Arc::new(NoopRecorder),
            policy: StoragePolicy::default(),
            storage: StorageFaultLedger::new(),
            cache: DayCacheConfig::default(),
        }
    }
}

impl std::fmt::Debug for SupervisedOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisedOptions")
            .field("policy", &self.policy)
            .field("cache", &self.cache)
            .finish_non_exhaustive()
    }
}

impl SupervisedRun {
    /// Starts (or resumes) a supervised run journaled at `journal_path`.
    ///
    /// When the journal already holds complete days for the same
    /// `(seed, scenario, config)` triple, they are replayed instead of
    /// re-simulated; a torn final record is dropped and its day re-runs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Journal`] for a journal that is interior-corrupt
    /// or belongs to a different run, and any error
    /// [`run_long_term_detection`] could produce.
    pub fn new(
        scenario: &PaperScenario,
        config: &LongTermRunConfig,
        seed: u64,
        journal_path: impl AsRef<Path>,
    ) -> Result<Self, SimError> {
        Self::new_recorded(scenario, config, seed, journal_path, Arc::new(NoopRecorder))
    }

    /// [`SupervisedRun::new`] with observability routed into `recorder` for
    /// the training epoch and every subsequent [`SupervisedRun::step_day`].
    ///
    /// The recorder is telemetry-only: an active recorder produces a run
    /// bit-identical to a [`SupervisedRun::new`] run with the same
    /// `(seed, scenario, config)` triple.
    ///
    /// # Errors
    ///
    /// Same as [`SupervisedRun::new`].
    pub fn new_recorded(
        scenario: &PaperScenario,
        config: &LongTermRunConfig,
        seed: u64,
        journal_path: impl AsRef<Path>,
        recorder: Arc<dyn Recorder>,
    ) -> Result<Self, SimError> {
        Self::with_options(
            scenario,
            config,
            seed,
            journal_path.as_ref(),
            SupervisedOptions {
                recorder,
                ..SupervisedOptions::default()
            },
        )
    }

    /// [`SupervisedRun::new_recorded`] with every piece of plumbing
    /// injectable — notably the [`Vfs`] the journal lives on, which is how
    /// the crash-point sweep (`tests/crash_sweep.rs`) kills a run at an
    /// arbitrary I/O operation and resumes it from the surviving bytes.
    ///
    /// # Errors
    ///
    /// Same as [`SupervisedRun::new`].
    pub fn with_options(
        scenario: &PaperScenario,
        config: &LongTermRunConfig,
        seed: u64,
        journal_path: &Path,
        options: SupervisedOptions,
    ) -> Result<Self, SimError> {
        let SupervisedOptions {
            vfs,
            recorder,
            policy,
            storage,
            cache,
        } = options;
        let setup = prepare(scenario, config)?;
        let mut training_rng = ChaCha8Rng::seed_from_u64(seed ^ TRAINING_STREAM);
        let mut state = train(scenario, config, &setup, &mut training_rng, recorder.as_ref())?;

        let header = JournalHeader {
            version: JOURNAL_VERSION,
            seed,
            detection_days: config.detection_days,
            fleet: setup.fleet,
            scenario_fingerprint: fingerprint(scenario),
            config_fingerprint: fingerprint(config),
        };
        let loaded = RunJournal::load_on(vfs.as_ref(), journal_path)?;
        let (journal, next_day) = match loaded.header {
            None => (
                RunJournal::create_on(Arc::clone(&vfs), journal_path, &header)?,
                0,
            ),
            Some(found) => {
                found.ensure_matches(&header)?;
                let mut next_day = 0;
                for record in &loaded.days {
                    if record.day != next_day {
                        return Err(JournalError::Gap {
                            expected: next_day,
                            found: record.day,
                        }
                        .into());
                    }
                    replay_day(&mut state, record)?;
                    next_day += 1;
                }
                (RunJournal::reopen_on(Arc::clone(&vfs), journal_path)?, next_day)
            }
        };
        let journal = journal.with_policy(policy);
        let clearing_cache = cache.build()?;
        let prediction_cache = cache.build()?;

        Ok(Self {
            scenario: scenario.clone(),
            config: config.clone(),
            seed,
            setup,
            state,
            journal,
            next_day,
            recorder,
            storage,
            cache,
            clearing_cache,
            prediction_cache,
        })
    }

    /// Days already completed (journaled or replayed).
    pub fn completed_days(&self) -> usize {
        self.next_day
    }

    /// `true` once every detection day has been simulated.
    pub fn is_finished(&self) -> bool {
        self.next_day >= self.config.detection_days
    }

    /// Where the journal lives.
    pub fn journal_path(&self) -> &Path {
        self.journal.path()
    }

    /// Simulates the next detection day and journals it. A no-op once the
    /// run is finished.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors; [`SimError::Journal`] when the
    /// completed day cannot be persisted (the day's state changes are kept
    /// in memory but will re-run on resume).
    pub fn step_day(&mut self) -> Result<(), SimError> {
        if self.is_finished() {
            return Ok(());
        }
        let mut rng = ChaCha8Rng::seed_from_u64(day_stream_seed(self.seed, self.next_day));
        let rec = self.recorder.as_ref();
        let record = simulate_day_cached(
            &self.scenario,
            &self.config,
            &self.setup,
            &mut self.state,
            self.next_day,
            &mut rng,
            self.clearing_cache.as_mut(),
            self.prediction_cache.as_mut(),
            rec,
        )?;
        self.commit_day(record)
    }

    /// Journals one completed day and advances the day counter — the tail
    /// every stepping path (sequential and speculative) shares.
    fn commit_day(&mut self, record: DayRecord) -> Result<(), SimError> {
        let rec = self.recorder.as_ref();
        let append_watch = Stopwatch::start();
        {
            let _span = span(rec, "journal_append");
            match self.journal.append_day(&record) {
                Ok(report) => {
                    let retries = report.retries();
                    self.storage.record(|tally| tally.journal_retries += retries);
                }
                Err(err) => {
                    self.storage.record(|tally| tally.journal_append_failures += 1);
                    return Err(err.into());
                }
            }
        }
        rec.observe("journal_append_seconds", append_watch.secs());
        if rec.enabled() {
            rec.event(
                &TraceEvent::new("journal_append")
                    .day(self.next_day)
                    .field("seconds", append_watch.secs()),
            );
        }
        self.next_day += 1;
        Ok(())
    }

    /// Steps the next day from precomputed [`DayInputs`] — the speculative
    /// pipeline's commit path. The inputs' assumed compromise set must
    /// match the run's (checked again inside, returning
    /// [`SimError::Config`] on a protocol violation).
    pub(crate) fn step_day_with_speculated(&mut self, inputs: DayInputs) -> Result<(), SimError> {
        debug_assert_eq!(inputs.day_offset, self.next_day);
        let rec = self.recorder.as_ref();
        let record = {
            let _day_span = span(rec, "detect_day");
            simulate_day_with_inputs(
                &self.scenario,
                &self.config,
                &self.setup,
                &mut self.state,
                inputs,
                self.prediction_cache.as_mut(),
                rec,
            )?
        };
        self.commit_day(record)
    }

    /// Everything a speculating worker needs to rebuild this run's
    /// per-day computation independently: the scenario/config pair, the
    /// run seed (day RNG streams derive from it), and the cache knob.
    pub(crate) fn speculation_parts(
        &self,
    ) -> (PaperScenario, LongTermRunConfig, u64, DayCacheConfig) {
        (
            self.scenario.clone(),
            self.config.clone(),
            self.seed,
            self.cache,
        )
    }

    /// The run's compromise set right now, in canonical sorted-index form.
    pub(crate) fn current_compromised(&self) -> Vec<usize> {
        compromised_indices(&self.state.compromised)
    }

    /// The compromise set expected at the *start* of day `day_offset + 1`,
    /// assuming the detector dispatches no fix during day `day_offset`:
    /// the current set plus every scripted timeline event in that day's
    /// slots. This is the speculation's assumption — a fix mid-day makes
    /// it diverge, which the commit check catches.
    pub(crate) fn project_compromised_after(&self, day_offset: usize) -> Vec<usize> {
        let mut projected = self.state.compromised.clone();
        for slot in 0..SLOTS_PER_DAY {
            let global_slot = day_offset * SLOTS_PER_DAY + slot;
            let _ = self
                .config
                .timeline
                .step(global_slot, &mut projected, self.setup.fleet);
        }
        compromised_indices(&projected)
    }

    /// The run's recorder (shared with the speculative driver's counters).
    pub(crate) fn rec(&self) -> &dyn Recorder {
        self.recorder.as_ref()
    }

    /// Cumulative persistent-cache statistics across the run's clearing and
    /// prediction caches so far (all zero when [`DayCacheConfig`] caching is
    /// disabled). Telemetry only — never journaled.
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        for cache in [self.clearing_cache.as_ref(), self.prediction_cache.as_ref()]
            .into_iter()
            .flatten()
        {
            stats.hits += cache.hits() as usize;
            stats.misses += cache.misses() as usize;
        }
        stats
    }

    /// Storage faults this run's ledger absorbed so far (never part of the
    /// journaled state — see the field's invariant). When the run was built
    /// from cloned options, this covers every earlier incarnation of the
    /// run that shared the ledger, not just this value.
    pub fn storage_faults(&self) -> StorageFaultCounts {
        self.storage.snapshot()
    }

    /// Ticks externally observed storage faults (e.g. a trace sink's
    /// dropped-event count, or export retries made by the caller) into the
    /// ledger this run will fold into its result.
    pub fn note_storage_faults(&mut self, faults: StorageFaultCounts) {
        self.storage.absorb(&faults);
    }

    /// Consumes the run and produces the final result (valid at any point;
    /// covers the completed days).
    ///
    /// The process-local storage-fault ledger is merged into the result's
    /// `health.storage` here — and only here, so journaled state stays
    /// identical across fault-free and fault-weathering processes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] when no day produced demand samples.
    pub fn finish(self) -> Result<LongTermRunResult, SimError> {
        let mut result = finalize(self.state)?;
        result.health.storage.merge(&self.storage.snapshot());
        Ok(result)
    }

    /// Runs every remaining day, then finishes.
    ///
    /// # Errors
    ///
    /// Same as [`SupervisedRun::step_day`] and [`SupervisedRun::finish`].
    pub fn run(mut self) -> Result<LongTermRunResult, SimError> {
        while !self.is_finished() {
            self.step_day()?;
        }
        self.finish()
    }
}

/// Convenience wrapper: start-or-resume a supervised run at `journal_path`
/// and drive it to completion.
///
/// # Errors
///
/// Same as [`SupervisedRun::new`] and [`SupervisedRun::run`].
pub fn run_long_term_supervised(
    scenario: &PaperScenario,
    config: &LongTermRunConfig,
    seed: u64,
    journal_path: impl AsRef<Path>,
) -> Result<LongTermRunResult, SimError> {
    SupervisedRun::new(scenario, config, seed, journal_path)?.run()
}

/// [`run_long_term_supervised`] with observability routed into `recorder`.
///
/// # Errors
///
/// Same as [`run_long_term_supervised`].
pub fn run_long_term_supervised_recorded(
    scenario: &PaperScenario,
    config: &LongTermRunConfig,
    seed: u64,
    journal_path: impl AsRef<Path>,
    recorder: Arc<dyn Recorder>,
) -> Result<LongTermRunResult, SimError> {
    SupervisedRun::new_recorded(scenario, config, seed, journal_path, recorder)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nms_attack::PriceAttack;
    use nms_core::DetectorMode;

    fn timeline() -> AttackTimeline {
        AttackTimeline::new(
            vec![(4, 3), (20, 3)],
            PriceAttack::zero_window(16.0, 18.0).unwrap(),
        )
        .unwrap()
    }

    fn run_config(detector: Option<FrameworkConfig>) -> LongTermRunConfig {
        LongTermRunConfig {
            detection_days: 1,
            detector,
            timeline: timeline(),
            buckets: 4,
            bucket_fraction_step: 0.15,
            labor_per_fix: 10.0,
            labor_per_meter: 1.0,
            faults: None,
            sanitize: SanitizeConfig::default(),
            retry: RetryPolicy::default(),
            budget: SolveBudget::unlimited(),
            quarantine: QuarantineConfig::default(),
            parallelism: Default::default(),
            clearing_iterations: 2,
        }
    }

    #[test]
    fn config_validation() {
        assert!(run_config(None).validate().is_ok());
        let mut c = run_config(None);
        c.detection_days = 0;
        assert!(c.validate().is_err());
        let mut c = run_config(None);
        c.buckets = 1;
        assert!(c.validate().is_err());
        let mut c = run_config(None);
        c.bucket_fraction_step = 0.0;
        assert!(c.validate().is_err());
        let mut c = run_config(None);
        c.labor_per_fix = -1.0;
        assert!(c.validate().is_err());
        // The new robustness knobs validate too.
        let mut c = run_config(None);
        c.budget.max_iterations = Some(0);
        assert!(c.validate().is_err());
        let mut c = run_config(None);
        c.retry.max_attempts = 0;
        assert!(c.validate().is_err());
        let mut c = run_config(None);
        c.quarantine.trip_after = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_without_robustness_fields_still_deserializes() {
        let full = serde_json::to_string(&run_config(None)).unwrap();
        // Strip the new fields to emulate a pre-supervision config file.
        let legacy: String = full
            .split(",\"sanitize\"")
            .next()
            .map(|prefix| format!("{prefix}}}"))
            .unwrap();
        assert!(legacy.contains("detection_days"));
        assert!(!legacy.contains("quarantine"));
        let parsed: LongTermRunConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(parsed.sanitize, SanitizeConfig::default());
        assert_eq!(parsed.retry, RetryPolicy::default());
        assert_eq!(parsed.budget, SolveBudget::unlimited());
        assert_eq!(parsed.quarantine, QuarantineConfig::default());
        assert_eq!(parsed.detection_days, 1);
        assert_eq!(
            parsed.clearing_iterations, 2,
            "configs serialized before the knob existed must load as the \
             historical 2 clearing rounds, not usize::default()"
        );
    }

    #[test]
    fn bucket_mapping() {
        assert_eq!(bucket_of(0, 100, 6, 0.1), 0);
        assert_eq!(bucket_of(10, 100, 6, 0.1), 1);
        assert_eq!(bucket_of(14, 100, 6, 0.1), 1);
        assert_eq!(bucket_of(16, 100, 6, 0.1), 2);
        assert_eq!(bucket_of(90, 100, 6, 0.1), 5); // clamped to top bucket
    }

    #[test]
    fn no_detection_baseline_runs() {
        let mut scenario = PaperScenario::small(10, 31);
        scenario.training_days = 3;
        let config = run_config(None);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let result = run_long_term_detection(&scenario, &config, &mut rng).unwrap();
        assert_eq!(result.realized_demand.len(), 24);
        assert!(result.accuracy.accuracy().is_none());
        assert_eq!(result.labor.fixes(), 0);
        assert!(result.par >= 1.0);
        // Attacker hacked meters and nobody fixed them.
        assert_eq!(result.true_buckets.len(), 24);
        assert!(*result.true_buckets.last().unwrap() > 0);
        // No detector → no belief; no faults → no quarantine, and the one
        // day has a health timeline row.
        assert!(result.final_belief.is_none());
        assert!(result.quarantine.is_none());
        assert_eq!(result.day_health.len(), 1);
        assert!(!result.day_health[0].degraded());
    }

    #[test]
    fn aware_detector_tracks_and_fixes() {
        let mut scenario = PaperScenario::small(10, 33);
        scenario.training_days = 4;
        let detector = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
        let config = run_config(Some(detector));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let result = run_long_term_detection(&scenario, &config, &mut rng).unwrap();
        assert_eq!(result.observed_buckets.len(), 24);
        // A 10-home fleet is far below the paper's scale, so the absolute
        // accuracy is noisy; this is a smoke test that the full pipeline
        // (calibration → observation → POMDP action) runs and produces a
        // coherent trace. Shape assertions live in tests/paper_shapes.rs.
        assert!(result.accuracy.accuracy().is_some());
        assert_eq!(result.true_buckets.len(), 24);
        assert!(result.observed_buckets.iter().all(|&o| o < config.buckets));
        // The detector carries a belief over exactly the configured buckets.
        let belief = result.final_belief.expect("detector keeps a belief");
        assert_eq!(belief.len(), config.buckets);
        assert!((belief.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn supervised_run_steps_and_finishes() {
        let mut scenario = PaperScenario::small(8, 41);
        scenario.training_days = 3;
        let config = run_config(None);
        let mut path = std::env::temp_dir();
        path.push(format!(
            "nms-supervised-smoke-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        let mut run = SupervisedRun::new(&scenario, &config, 5, &path).unwrap();
        assert_eq!(run.completed_days(), 0);
        run.step_day().unwrap();
        assert!(run.is_finished());
        let result = run.finish().unwrap();
        assert_eq!(result.realized_demand.len(), 24);
        assert_eq!(result.day_health.len(), 1);

        // Re-opening the finished journal replays rather than re-simulates.
        let resumed = SupervisedRun::new(&scenario, &config, 5, &path).unwrap();
        assert!(resumed.is_finished());
        let replayed = resumed.finish().unwrap();
        assert_eq!(replayed.realized_demand, result.realized_demand);
        assert_eq!(replayed.true_buckets, result.true_buckets);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn supervised_run_rejects_foreign_journal() {
        let mut scenario = PaperScenario::small(8, 41);
        scenario.training_days = 3;
        let config = run_config(None);
        let mut path = std::env::temp_dir();
        path.push(format!("nms-supervised-foreign-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut run = SupervisedRun::new(&scenario, &config, 5, &path).unwrap();
        run.step_day().unwrap();
        // A different seed must refuse the same journal.
        match SupervisedRun::new(&scenario, &config, 6, &path) {
            Err(SimError::Journal(JournalError::HeaderMismatch { detail })) => {
                assert!(detail.contains("seed"), "{detail}");
            }
            Err(other) => panic!("expected HeaderMismatch, got {other:?}"),
            Ok(_) => panic!("expected HeaderMismatch, got a resumed run"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_under_changed_config_fails_typed() {
        // Header-drift negative path: a shard restarted under a changed
        // `LongTermRunConfig` must refuse its journal with a typed error,
        // not silently diverge from the journaled run.
        use nms_vfs::FaultVfs;
        let mut scenario = PaperScenario::small(8, 41);
        scenario.training_days = 3;
        let config = run_config(None);
        let vfs = FaultVfs::new(nms_vfs::IoFaultPlan::none());
        let path = Path::new("/drift/journal.jsonl");
        let options = |vfs: &FaultVfs| SupervisedOptions {
            vfs: Arc::new(vfs.clone()),
            ..SupervisedOptions::default()
        };

        let mut run =
            SupervisedRun::with_options(&scenario, &config, 5, path, options(&vfs)).unwrap();
        run.step_day().unwrap();
        drop(run);

        // Any config knob that changes behavior changes the fingerprint.
        let mut tweaked = config.clone();
        tweaked.labor_per_fix += 1.0;
        match SupervisedRun::with_options(&scenario, &tweaked, 5, path, options(&vfs)) {
            Err(SimError::Journal(JournalError::HeaderMismatch { detail })) => {
                assert!(detail.contains("configuration fingerprint"), "{detail}");
            }
            Err(other) => panic!("expected HeaderMismatch, got {other:?}"),
            Ok(_) => panic!("expected HeaderMismatch, got a resumed run"),
        }

        // The horizon is checked field-for-field, not just by fingerprint.
        let mut longer = config.clone();
        longer.detection_days += 1;
        match SupervisedRun::with_options(&scenario, &longer, 5, path, options(&vfs)) {
            Err(SimError::Journal(JournalError::HeaderMismatch { detail })) => {
                assert!(detail.contains("detection_days"), "{detail}");
            }
            Err(other) => panic!("expected HeaderMismatch, got {other:?}"),
            Ok(_) => panic!("expected HeaderMismatch, got a resumed run"),
        }

        // The unchanged config still resumes.
        let resumed =
            SupervisedRun::with_options(&scenario, &config, 5, path, options(&vfs)).unwrap();
        assert_eq!(resumed.completed_days(), 1);
    }

    #[test]
    fn storage_ledger_is_per_run_and_survives_rebuild() {
        // Regression for concurrent-shard fault aggregation: each run's
        // absorbed-fault tally lives in a ledger owned by its options, so
        // (a) a supervisor that rebuilds a failed run from its journal with
        // cloned options keeps the earlier incarnation's tally, and (b) a
        // second run built from independent options never sees it.
        use nms_vfs::{FaultVfs, IoFaultPlan};
        let mut scenario = PaperScenario::small(8, 41);
        scenario.training_days = 3;
        let config = run_config(None);
        let path = Path::new("/ledger/journal.jsonl");

        // Probe the op index of the first journal append on a clean VFS so
        // the kill point can be aimed at it deterministically.
        let probe = FaultVfs::new(IoFaultPlan::none());
        let probe_options = SupervisedOptions {
            vfs: Arc::new(probe.clone()),
            ..SupervisedOptions::default()
        };
        let run =
            SupervisedRun::with_options(&scenario, &config, 5, path, probe_options).unwrap();
        let first_append_op = probe.ops();
        drop(run);

        // Shard A: storage dies mid-append. The step fails and the failure
        // lands on A's ledger.
        let vfs_a = FaultVfs::new(IoFaultPlan::kill_at(first_append_op));
        let options_a = SupervisedOptions {
            vfs: Arc::new(vfs_a.clone()),
            ..SupervisedOptions::default()
        };
        let mut run_a =
            SupervisedRun::with_options(&scenario, &config, 5, path, options_a.clone()).unwrap();
        assert!(run_a.step_day().is_err(), "append through a dead disk must fail");
        assert_eq!(run_a.storage_faults().journal_append_failures, 1);
        drop(run_a);

        // Shard B runs concurrently from independent options: its ledger
        // must stay clean no matter what A absorbed.
        let vfs_b = FaultVfs::new(IoFaultPlan::none());
        let options_b = SupervisedOptions {
            vfs: Arc::new(vfs_b.clone()),
            ..SupervisedOptions::default()
        };
        let result_b = SupervisedRun::with_options(&scenario, &config, 6, path, options_b.clone())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(options_b.storage.snapshot().total(), 0, "shard A leaked into B");
        assert_eq!(result_b.health.storage.total(), 0);

        // Storage comes back; the supervisor rebuilds A from its journal
        // with the SAME options. The rebuilt run completes, and its result
        // still reports the failure the earlier incarnation absorbed.
        vfs_a.revive();
        let result_a = SupervisedRun::with_options(&scenario, &config, 5, path, options_a.clone())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(result_a.health.storage.journal_append_failures, 1);
        assert!(options_a.storage.shares_with(&options_a.clone().storage));
        assert!(!options_a.storage.shares_with(&options_b.storage));
    }
}
