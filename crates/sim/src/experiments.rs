//! Runners for every figure and table of the paper's evaluation (§5).
//!
//! Each runner is deterministic given the scenario's seed and returns a
//! typed result with a `render()` method producing paper-style terminal
//! output. Absolute numbers depend on the synthetic setup; the *shape*
//! (who wins, direction and rough magnitude of the gaps) reproduces the
//! paper — see EXPERIMENTS.md for the side-by-side record.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use nms_attack::{AttackTimeline, PriceAttack};
use nms_core::{DetectionReport, DetectorMode, FrameworkConfig, QuarantineConfig, SanitizeConfig};
use nms_types::{RetryPolicy, SolveBudget};

use crate::{
    render_series, render_table, run_long_term_detection, LongTermRunConfig, Market, PaperScenario,
    SimError,
};

/// The paper's Fig 5 attack: the guideline price is "manipulated to be
/// zero between 16:00 and 17:00".
pub fn paper_attack() -> PriceAttack {
    PriceAttack::zero_window(16.0, 17.0).expect("static window is valid")
}

/// The default 48-hour intrusion script used by Fig 6 / Table 1: campaigns
/// compromising ~10–15% of the fleet at a time.
pub fn paper_timeline(fleet: usize) -> AttackTimeline {
    let tenth = ((fleet as f64) * 0.10).round().max(1.0) as usize;
    let fifteenth = ((fleet as f64) * 0.15).round().max(1.0) as usize;
    AttackTimeline::new(
        vec![(5, tenth), (18, tenth), (29, fifteenth), (40, tenth)],
        paper_attack(),
    )
    .expect("static events are valid")
}

/// Result of the Fig 3 / Fig 4 prediction experiments.
#[derive(Debug, Clone)]
pub struct PredictionExperiment {
    /// Which figure this reproduces ("Fig 3" or "Fig 4").
    pub figure: &'static str,
    /// The received (true, no-attack) guideline price per slot.
    pub received_price: Vec<f64>,
    /// The predicted guideline price per slot.
    pub predicted_price: Vec<f64>,
    /// The predicted grid demand under the predicted price, per slot.
    pub predicted_load: Vec<f64>,
    /// PAR of the predicted load (the paper reports 1.4700 for Fig 3 and
    /// 1.3986 for Fig 4).
    pub par: f64,
    /// RMSE between predicted and received price (prediction quality).
    pub price_rmse: f64,
}

impl PredictionExperiment {
    /// Paper-style terminal rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} — predicted-load PAR {:.4}, price RMSE {:.5}\n",
            self.figure, self.par, self.price_rmse
        );
        out.push_str(&render_series("received price ", &self.received_price));
        out.push_str(&render_series("predicted price", &self.predicted_price));
        out.push_str(&render_series("predicted load ", &self.predicted_load));
        out
    }
}

fn run_prediction(
    scenario: &PaperScenario,
    mode: DetectorMode,
    figure: &'static str,
) -> Result<PredictionExperiment, SimError> {
    let market = Market::new(scenario)?;
    let generator = scenario.generator();
    let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0xf1903);

    let history = market.bootstrap_history(&generator, scenario.training_days, &mut rng)?;

    let eval_day = scenario.training_days;
    let weather = scenario.weather_factors(eval_day + 1);
    let community = generator.community_for_day(eval_day, weather[eval_day]);
    let clean = market.clear_day(&community, 2, &mut rng)?;

    let framework = FrameworkConfig::new(mode, 24);
    let mut price_predictor = framework.price_predictor();
    price_predictor.train(&history)?;
    let theta = community.total_generation();
    let forecast = price_predictor
        .features()
        .target_generation
        .then_some(&theta);
    let predicted_price = price_predictor.predict_day(&history, community.horizon(), forecast)?;

    let predicted = framework
        .load
        .predict(&community, &predicted_price, &mut rng)?;

    let price_rmse = predicted_price
        .rmse(&clean.price)
        .expect("same horizon by construction");

    Ok(PredictionExperiment {
        figure,
        received_price: clean.price.as_series().iter().copied().collect(),
        predicted_price: predicted_price.as_series().iter().copied().collect(),
        predicted_load: predicted.grid_demand.iter().copied().collect(),
        par: predicted.par,
        price_rmse,
    })
}

/// Fig 3: prediction *without* considering net metering (the naive SVR of
/// \[8\] plus a consumer-only world model).
///
/// # Errors
///
/// Returns [`SimError`] on configuration or solver failures.
pub fn run_fig3(scenario: &PaperScenario) -> Result<PredictionExperiment, SimError> {
    run_prediction(scenario, DetectorMode::IgnoreNetMetering, "Fig 3")
}

/// Fig 4: prediction considering net metering (the paper's method).
///
/// # Errors
///
/// Returns [`SimError`] on configuration or solver failures.
pub fn run_fig4(scenario: &PaperScenario) -> Result<PredictionExperiment, SimError> {
    run_prediction(scenario, DetectorMode::NetMeteringAware, "Fig 4")
}

/// Result of the Fig 5 attack-impact experiment.
#[derive(Debug, Clone)]
pub struct AttackExperiment {
    /// The manipulated guideline price per slot.
    pub manipulated_price: Vec<f64>,
    /// Realized grid demand under the attack, per slot.
    pub attacked_load: Vec<f64>,
    /// PAR under attack (the paper reports 1.9037).
    pub attacked_par: f64,
    /// PAR of the same day without the attack.
    pub clean_par: f64,
    /// Slot of the attacked load's peak (the paper's peak sits at
    /// 16:00–17:00).
    pub peak_slot: usize,
}

impl AttackExperiment {
    /// Paper-style terminal rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Fig 5 — attacked PAR {:.4} (clean {:.4}, +{:.2}%), peak at slot {}\n",
            self.attacked_par,
            self.clean_par,
            100.0 * (self.attacked_par - self.clean_par) / self.clean_par,
            self.peak_slot
        );
        out.push_str(&render_series("manipulated price", &self.manipulated_price));
        out.push_str(&render_series("attacked load    ", &self.attacked_load));
        out
    }
}

/// Fig 5: the impact of the zero-price attack on the realized energy load.
///
/// # Errors
///
/// Returns [`SimError`] on configuration or solver failures.
pub fn run_fig5(scenario: &PaperScenario) -> Result<AttackExperiment, SimError> {
    let market = Market::new(scenario)?;
    let generator = scenario.generator();
    let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0xf1905);

    let eval_day = scenario.training_days;
    let weather = scenario.weather_factors(eval_day + 1);
    let community = generator.community_for_day(eval_day, weather[eval_day]);
    let clean = market.clear_day(&community, 2, &mut rng)?;
    let manipulated = paper_attack().apply(&clean.price);

    // Every meter receives the manipulated signal (the paper's Fig 5
    // studies the full-impact case).
    let mut attacked_rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0xa77ac4);
    let attacked = market
        .truth_model()
        .predict(&community, &manipulated, &mut attacked_rng)?;

    Ok(AttackExperiment {
        manipulated_price: manipulated.as_series().iter().copied().collect(),
        attacked_load: attacked.grid_demand.iter().copied().collect(),
        attacked_par: attacked.par,
        clean_par: clean.response.par,
        peak_slot: attacked.grid_demand.peak_slot(),
    })
}

/// Result of the Fig 6 observation-accuracy experiment.
#[derive(Debug, Clone)]
pub struct AccuracyExperiment {
    /// Final observation accuracy with net metering considered (the paper
    /// reports 95.14%).
    pub aware_accuracy: f64,
    /// Final observation accuracy without (the paper reports 65.95%).
    pub naive_accuracy: f64,
    /// Running accuracy per slot, aware detector.
    pub aware_running: Vec<f64>,
    /// Running accuracy per slot, naive detector.
    pub naive_running: Vec<f64>,
}

impl AccuracyExperiment {
    /// Paper-style terminal rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Fig 6 — observation accuracy: {:.2}% considering net metering vs {:.2}% without\n",
            self.aware_accuracy * 100.0,
            self.naive_accuracy * 100.0
        );
        out.push_str(&render_series(
            "aware running accuracy",
            &self.aware_running,
        ));
        out.push_str(&render_series(
            "naive running accuracy",
            &self.naive_running,
        ));
        out
    }
}

fn long_term_config(
    scenario: &PaperScenario,
    detector: Option<FrameworkConfig>,
) -> LongTermRunConfig {
    LongTermRunConfig {
        detection_days: 2,
        detector,
        timeline: paper_timeline(scenario.customers),
        buckets: 6,
        bucket_fraction_step: 0.1,
        labor_per_fix: 10.0,
        labor_per_meter: 1.0,
        faults: None,
        sanitize: SanitizeConfig::default(),
        retry: RetryPolicy::default(),
        budget: SolveBudget::unlimited(),
        quarantine: QuarantineConfig::default(),
        parallelism: Default::default(),
        clearing_iterations: 2,
    }
}

/// Fig 6: POMDP observation accuracy over 48 hours, with and without net
/// metering considered.
///
/// # Errors
///
/// Returns [`SimError`] on configuration or solver failures.
pub fn run_fig6(scenario: &PaperScenario) -> Result<AccuracyExperiment, SimError> {
    let aware_framework = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
    let naive_framework = FrameworkConfig::new(DetectorMode::IgnoreNetMetering, 24);

    let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0xf1906);
    let aware = run_long_term_detection(
        scenario,
        &long_term_config(scenario, Some(aware_framework)),
        &mut rng,
    )?;
    let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0xf1906);
    let naive = run_long_term_detection(
        scenario,
        &long_term_config(scenario, Some(naive_framework)),
        &mut rng,
    )?;

    Ok(AccuracyExperiment {
        aware_accuracy: aware.accuracy.accuracy().unwrap_or(0.0),
        naive_accuracy: naive.accuracy.accuracy().unwrap_or(0.0),
        aware_running: aware.accuracy.running_accuracy(),
        naive_running: naive.accuracy.running_accuracy(),
    })
}

/// Result of the Table 1 detection comparison.
#[derive(Debug, Clone)]
pub struct Table1Experiment {
    /// PAR with no detection (paper: 1.6509).
    pub no_detection_par: f64,
    /// PAR with detection ignoring net metering (paper: 1.5422).
    pub naive_par: f64,
    /// PAR with net-metering-aware detection (paper: 1.4112).
    pub aware_par: f64,
    /// Aware labor cost normalized by the naive detector's (paper: 1.0067);
    /// `None` when the naive detector never dispatched a fix.
    pub normalized_labor: Option<f64>,
    /// Raw labor costs `(naive, aware)`.
    pub labor_costs: (f64, f64),
}

impl Table1Experiment {
    /// The three configurations as typed [`DetectionReport`] rows.
    pub fn reports(&self) -> Vec<DetectionReport> {
        vec![
            DetectionReport {
                label: "No Detection".into(),
                par: self.no_detection_par,
                observation_accuracy: None,
                normalized_labor_cost: None,
            },
            DetectionReport {
                label: DetectorMode::IgnoreNetMetering.label().into(),
                par: self.naive_par,
                observation_accuracy: None,
                normalized_labor_cost: Some(1.0),
            },
            DetectionReport {
                label: DetectorMode::NetMeteringAware.label().into(),
                par: self.aware_par,
                observation_accuracy: None,
                normalized_labor_cost: self.normalized_labor,
            },
        ]
    }

    /// Paper-style terminal rendering (mirrors Table 1's columns).
    pub fn render(&self) -> String {
        render_table(
            &[
                "",
                "No Detection",
                "Detection w/o Net Metering",
                "Detection w/ Net Metering",
            ],
            &[
                vec![
                    "PAR".into(),
                    format!("{:.4}", self.no_detection_par),
                    format!("{:.4}", self.naive_par),
                    format!("{:.4}", self.aware_par),
                ],
                vec![
                    "Normalized Labor Cost".into(),
                    "-".into(),
                    "1".into(),
                    self.normalized_labor
                        .map_or_else(|| "-".into(), |v| format!("{v:.4}")),
                ],
            ],
        )
    }
}

/// Table 1: PAR and labor cost of the three configurations over the 48-hour
/// attack scenario.
///
/// # Errors
///
/// Returns [`SimError`] on configuration or solver failures.
pub fn run_table1(scenario: &PaperScenario) -> Result<Table1Experiment, SimError> {
    let seed = scenario.seed ^ 0x7ab1e1;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let none = run_long_term_detection(scenario, &long_term_config(scenario, None), &mut rng)?;

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let naive = run_long_term_detection(
        scenario,
        &long_term_config(
            scenario,
            Some(FrameworkConfig::new(DetectorMode::IgnoreNetMetering, 24)),
        ),
        &mut rng,
    )?;

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let aware = run_long_term_detection(
        scenario,
        &long_term_config(
            scenario,
            Some(FrameworkConfig::new(DetectorMode::NetMeteringAware, 24)),
        ),
        &mut rng,
    )?;

    Ok(Table1Experiment {
        no_detection_par: none.par,
        naive_par: naive.par,
        aware_par: aware.par,
        normalized_labor: aware.labor.normalized_against(&naive.labor),
        labor_costs: (naive.labor.total_cost(), aware.labor.total_cost()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> PaperScenario {
        let mut s = PaperScenario::small(10, 17);
        s.training_days = 3;
        s
    }

    #[test]
    fn paper_timeline_scales_with_fleet() {
        let t = paper_timeline(500);
        assert_eq!(t.events().len(), 4);
        assert_eq!(t.total_meters(), 50 + 50 + 75 + 50);
        let small = paper_timeline(3);
        assert!(small.total_meters() >= 4);
    }

    #[test]
    fn fig3_and_fig4_run_and_render() {
        let s = scenario();
        let fig3 = run_fig3(&s).unwrap();
        let fig4 = run_fig4(&s).unwrap();
        assert_eq!(fig3.received_price.len(), 24);
        assert_eq!(fig4.predicted_load.len(), 24);
        assert!(fig3.par >= 1.0 && fig4.par >= 1.0);
        assert!(fig3.render().contains("Fig 3"));
        assert!(fig4.render().contains("Fig 4"));
        // The headline shape: the aware prediction tracks the received
        // price more closely.
        assert!(
            fig4.price_rmse <= fig3.price_rmse + 1e-9,
            "aware rmse {} vs naive {}",
            fig4.price_rmse,
            fig3.price_rmse
        );
    }

    #[test]
    fn table1_reports_are_typed_rows() {
        let t = Table1Experiment {
            no_detection_par: 1.65,
            naive_par: 1.54,
            aware_par: 1.41,
            normalized_labor: Some(1.0067),
            labor_costs: (100.0, 100.67),
        };
        let reports = t.reports();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].label, "No Detection");
        assert!(reports[2].label.contains("Considering Net Metering"));
        assert_eq!(reports[2].normalized_labor_cost, Some(1.0067));
        assert!(reports[2].to_string().contains("1.4100"));
    }

    #[test]
    fn fig5_attack_raises_par_and_moves_peak() {
        let s = scenario();
        let fig5 = run_fig5(&s).unwrap();
        assert!(
            fig5.attacked_par > fig5.clean_par,
            "attack {} vs clean {}",
            fig5.attacked_par,
            fig5.clean_par
        );
        assert!(
            (16..=17).contains(&fig5.peak_slot),
            "peak at {}",
            fig5.peak_slot
        );
        assert!(fig5.render().contains("Fig 5"));
    }
}
