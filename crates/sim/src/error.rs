//! Simulation error type.

use std::error::Error;
use std::fmt;

use nms_core::PredictPriceError;
use nms_solver::SolverError;
use nms_types::ValidateError;

use crate::journal::JournalError;

/// Why a simulation run failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// A game/scheduling subproblem failed.
    Solver(SolverError),
    /// Price prediction failed.
    Prediction(PredictPriceError),
    /// A scenario or run configuration was invalid.
    Config(ValidateError),
    /// Telemetry was too corrupted to use even after sanitization.
    Telemetry {
        /// Human-readable detail.
        detail: String,
    },
    /// The checkpoint journal failed (only reachable from the supervised
    /// runner; `run_long_term_detection` never touches a journal).
    Journal(JournalError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Solver(err) => write!(f, "solver failure: {err}"),
            Self::Prediction(err) => write!(f, "prediction failure: {err}"),
            Self::Config(err) => write!(f, "configuration failure: {err}"),
            Self::Telemetry { detail } => write!(f, "telemetry failure: {detail}"),
            Self::Journal(err) => write!(f, "journal failure: {err}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Solver(err) => Some(err),
            Self::Prediction(err) => Some(err),
            Self::Config(err) => Some(err),
            Self::Telemetry { .. } => None,
            Self::Journal(err) => Some(err),
        }
    }
}

impl From<JournalError> for SimError {
    fn from(err: JournalError) -> Self {
        Self::Journal(err)
    }
}

impl From<SolverError> for SimError {
    fn from(err: SolverError) -> Self {
        Self::Solver(err)
    }
}

impl From<PredictPriceError> for SimError {
    fn from(err: PredictPriceError) -> Self {
        Self::Prediction(err)
    }
}

impl From<ValidateError> for SimError {
    fn from(err: ValidateError) -> Self {
        Self::Config(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err: SimError = ValidateError::new("bad N").into();
        assert!(err.to_string().contains("bad N"));
        assert!(err.source().is_some());
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
