//! Simulation harness: synthetic communities, the utility-in-the-loop
//! market, the long-term attack/detection simulation, and runners for every
//! figure and table of the paper's evaluation (§5).
//!
//! The paper's setup ("a community consisting of 500 customers", energy
//! consumption "similar to the previous works [8, 7]") is not public, so
//! this crate synthesizes it from the documented appliance catalog, a
//! seeded weather model for PV output, and a utility that designs guideline
//! prices from net demand — see DESIGN.md's substitution table.
//!
//! # Experiment index
//!
//! | Paper artifact | Runner |
//! |---|---|
//! | Fig 3 (naive prediction) | [`experiments::run_fig3`] |
//! | Fig 4 (net-metering-aware prediction) | [`experiments::run_fig4`] |
//! | Fig 5 (attack impact) | [`experiments::run_fig5`] |
//! | Fig 6 (observation accuracy) | [`experiments::run_fig6`] |
//! | Table 1 (detection comparison) | [`experiments::run_table1`] |
//!
//! # Examples
//!
//! ```no_run
//! use nms_sim::{experiments, PaperScenario};
//!
//! # fn main() -> Result<(), nms_sim::SimError> {
//! let scenario = PaperScenario::small(30, 42);
//! let fig4 = experiments::run_fig4(&scenario)?;
//! println!("{}", fig4.render());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibrate;
mod detection;
mod error;
pub mod experiments;
mod faults;
pub mod export;
pub mod journal;
mod market;
mod pipeline;
mod report;
mod scenario;
pub mod sweeps;
mod weather;

pub use calibrate::DetectorCalibration;
pub use detection::{
    run_long_term_detection, run_long_term_detection_recorded, run_long_term_supervised,
    run_long_term_supervised_recorded, DayCacheConfig, LongTermRunConfig, LongTermRunResult,
    SupervisedOptions, SupervisedRun,
};
pub use error::SimError;
pub use faults::{
    corrupt_day, corrupt_day_meters, CorruptedDay, CorruptedMeters, FaultPlan, MeterOutage,
};
pub use market::{DayOutcome, Market};
pub use pipeline::SpeculationReport;
pub use nms_par::Parallelism;
pub use report::{render_series, render_table};
pub use scenario::{CommunityGenerator, PaperScenario};
pub use weather::WeatherModel;
