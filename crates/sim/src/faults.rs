//! Seeded telemetry fault injection (robustness layer).
//!
//! The detector never sees the community's physical demand directly — it
//! sees what the smart meters *report*. A [`FaultPlan`] corrupts that
//! reporting layer between the realized schedules and the detection
//! statistic: readings drop out, meters emit NaN or garbage, stick at their
//! first reading, skew their clocks by one slot, or stop reporting for the
//! day entirely. The physical world is untouched; only the detector's view
//! degrades.
//!
//! Corruption is deterministic: each `(plan seed, day, meter)` triple seeds
//! its own stream, and every fault decision is drawn in a fixed order that
//! does not depend on the telemetry values. Re-deriving the corrupted view
//! for the same day — which the detection loop does whenever the compromise
//! set changes mid-day — therefore injects the *same* faults.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use nms_smarthome::CommunitySchedule;
use nms_types::{FaultCounts, FaultKind, Horizon, TimeSeries, ValidateError};

/// A scripted, deterministic outage: a contiguous block of meters that
/// reports nothing for a range of days. Unlike the random per-day
/// `report_rate`, an outage is *persistent* — the shape the quarantine
/// breaker (see `nms-core::sanitize`) exists to catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeterOutage {
    /// First affected meter index.
    pub first_meter: usize,
    /// Number of consecutive affected meters.
    pub meters: usize,
    /// First affected day (inclusive).
    pub from_day: usize,
    /// First unaffected day (exclusive; `until_day <= from_day` disables
    /// the outage).
    pub until_day: usize,
}

impl MeterOutage {
    /// `true` when `meter` is out on `day`.
    pub fn covers(&self, day: usize, meter: usize) -> bool {
        (self.from_day..self.until_day).contains(&day)
            && (self.first_meter..self.first_meter.saturating_add(self.meters)).contains(&meter)
    }
}

/// A serializable, seeded plan for corrupting one run's meter telemetry.
///
/// Slot-level rates (`drop_rate`, `nan_rate`, `garbage_rate`) apply per
/// meter-slot; day-level rates (`stuck_rate`, `skew_rate`, and the
/// complement of `report_rate`) apply per meter-day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the fault streams (independent of the simulation RNG).
    pub seed: u64,
    /// Probability a meter-slot reading is dropped (arrives as missing).
    pub drop_rate: f64,
    /// Probability a meter-slot reading arrives as NaN.
    pub nan_rate: f64,
    /// Probability a meter-slot reading is replaced by garbage.
    pub garbage_rate: f64,
    /// Magnitude multiplier for garbage readings (relative to the true
    /// reading's scale).
    pub garbage_scale: f64,
    /// Probability a meter spends the whole day stuck at its first reading.
    pub stuck_rate: f64,
    /// Probability a meter's clock skews one slot behind for the day.
    pub skew_rate: f64,
    /// Probability a meter reports at all on a given day.
    pub report_rate: f64,
    /// Optional scripted persistent outage, on top of the random faults.
    /// Absent in pre-outage serialized plans.
    #[serde(default)]
    pub outage: Option<MeterOutage>,
}

impl FaultPlan {
    /// A plan that injects nothing (every meter reports cleanly).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            drop_rate: 0.0,
            nan_rate: 0.0,
            garbage_rate: 0.0,
            garbage_scale: 100.0,
            stuck_rate: 0.0,
            skew_rate: 0.0,
            report_rate: 1.0,
            outage: None,
        }
    }

    /// A mixed degradation profile anchored on `rate`: `rate` dropped
    /// readings, with NaN/garbage/stuck/skew/no-report faults at fractions
    /// of it. `degraded(seed, 0.05)` is the ISSUE's "5% dropped" shape.
    pub fn degraded(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            drop_rate: rate,
            nan_rate: rate / 5.0,
            garbage_rate: rate / 10.0,
            garbage_scale: 100.0,
            stuck_rate: rate / 2.0,
            skew_rate: rate / 4.0,
            report_rate: 1.0 - rate / 2.0,
            outage: None,
        }
    }

    /// `true` when the plan cannot inject any fault.
    pub fn is_noop(&self) -> bool {
        self.drop_rate == 0.0
            && self.nan_rate == 0.0
            && self.garbage_rate == 0.0
            && self.stuck_rate == 0.0
            && self.skew_rate == 0.0
            && self.report_rate >= 1.0
            && self
                .outage
                .is_none_or(|o| o.meters == 0 || o.until_day <= o.from_day)
    }

    /// Checks every rate is a probability and the garbage scale is usable.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when a rate leaves `[0, 1]` or
    /// `garbage_scale` is not finite and positive.
    pub fn validate(&self) -> Result<(), ValidateError> {
        for (name, rate) in [
            ("drop_rate", self.drop_rate),
            ("nan_rate", self.nan_rate),
            ("garbage_rate", self.garbage_rate),
            ("stuck_rate", self.stuck_rate),
            ("skew_rate", self.skew_rate),
            ("report_rate", self.report_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                return Err(ValidateError::new(format!(
                    "{name} must be a probability, got {rate}"
                )));
            }
        }
        if !(self.garbage_scale > 0.0 && self.garbage_scale.is_finite()) {
            return Err(ValidateError::new(format!(
                "garbage_scale must be finite and positive, got {}",
                self.garbage_scale
            )));
        }
        Ok(())
    }

    /// A copy of the plan with every rate forced into `[0, 1]` and the
    /// garbage scale forced finite, so drawing from it can never panic.
    /// Non-finite fault rates inject nothing; a non-finite `report_rate`
    /// keeps every meter reporting.
    fn clamped(&self) -> Self {
        fn rate(r: f64, fallback: f64) -> f64 {
            if r.is_finite() {
                r.clamp(0.0, 1.0)
            } else {
                fallback
            }
        }
        Self {
            seed: self.seed,
            drop_rate: rate(self.drop_rate, 0.0),
            nan_rate: rate(self.nan_rate, 0.0),
            garbage_rate: rate(self.garbage_rate, 0.0),
            garbage_scale: if self.garbage_scale.is_finite() {
                self.garbage_scale
            } else {
                0.0
            },
            stuck_rate: rate(self.stuck_rate, 0.0),
            skew_rate: rate(self.skew_rate, 0.0),
            report_rate: rate(self.report_rate, 1.0),
            outage: self.outage,
        }
    }

    fn meter_stream(&self, day: usize, meter: usize) -> ChaCha8Rng {
        let mixed = self
            .seed
            .wrapping_add((day as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add((meter as u64).wrapping_mul(0xd1b5_4a32_d192_ed03));
        ChaCha8Rng::seed_from_u64(mixed)
    }
}

/// One day of corrupted telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct CorruptedDay {
    /// The aggregate grid demand the detector receives: per-slot mean of
    /// the finite meter reports scaled to fleet size, clamped at zero like
    /// the clean aggregate, and NaN where no meter reported a usable value.
    pub observed: TimeSeries<f64>,
    /// Tally of the faults actually injected (day-level faults count once
    /// per meter, slot-level faults once per meter-slot).
    pub injected: FaultCounts,
}

/// One day of corrupted telemetry kept at per-meter granularity, so the
/// caller can judge individual meters (quarantine) before aggregating.
///
/// A `NaN` reading means the slot is unusable: dropped, NaN-corrupted, or
/// from a meter that did not report at all that day.
#[derive(Debug, Clone, PartialEq)]
pub struct CorruptedMeters {
    horizon: Horizon,
    readings: Vec<Vec<f64>>,
    /// Tally of the faults actually injected (day-level faults count once
    /// per meter, slot-level faults once per meter-slot).
    pub injected: FaultCounts,
}

impl CorruptedMeters {
    /// The day's scheduling horizon.
    pub fn horizon(&self) -> Horizon {
        self.horizon
    }

    /// Number of meters in the fleet.
    pub fn fleet(&self) -> usize {
        self.readings.len()
    }

    /// One meter's slot readings for the day (`NaN` = missing/unusable).
    pub fn meter_readings(&self, meter: usize) -> &[f64] {
        &self.readings[meter]
    }

    /// Aggregates all meters into the community grid-demand series: per-slot
    /// mean of the finite readings scaled to fleet size, clamped at zero,
    /// NaN where nothing usable arrived.
    pub fn aggregate(&self) -> TimeSeries<f64> {
        self.aggregate_excluding(&[])
    }

    /// Aggregates like [`CorruptedMeters::aggregate`] but skips meters whose
    /// `excluded` flag is set (e.g. quarantined by the circuit breaker).
    /// Excluded meters still count toward the fleet-size scale factor — the
    /// mean of the healthy meters stands in for their consumption. Indices
    /// beyond `excluded.len()` are treated as not excluded.
    pub fn aggregate_excluding(&self, excluded: &[bool]) -> TimeSeries<f64> {
        let slots = self.horizon.slots();
        let fleet = self.readings.len();
        let mut sums = vec![0.0_f64; slots];
        let mut counts = vec![0usize; slots];
        for (meter_idx, meter) in self.readings.iter().enumerate() {
            if excluded.get(meter_idx).copied().unwrap_or(false) {
                continue;
            }
            for (h, &reading) in meter.iter().enumerate() {
                if reading.is_finite() {
                    sums[h] += reading;
                    counts[h] += 1;
                }
            }
        }
        TimeSeries::from_fn(self.horizon, |h| {
            if counts[h] == 0 {
                f64::NAN
            } else {
                (sums[h] / counts[h] as f64 * fleet as f64).max(0.0)
            }
        })
    }
}

/// Corrupts one day of per-meter telemetry, keeping per-meter granularity.
///
/// Deterministic in `(plan.seed, day, meter index)`; the schedule's values
/// never influence *which* faults fire, only the magnitudes of garbage
/// readings. Meters silenced by a scripted [`MeterOutage`] consume no
/// random draws, so adding an outage does not reshuffle the random faults
/// hitting other meters.
///
/// The plan is clamped before any draw: rates outside `[0, 1]` are pulled
/// to the nearest bound and non-finite rates inject nothing (a non-finite
/// `report_rate` keeps every meter reporting), so a hand-built plan that
/// would fail [`FaultPlan::validate`] degrades the injection rather than
/// panicking. Call `validate` first to reject such plans outright.
pub fn corrupt_day_meters(
    plan: &FaultPlan,
    day: usize,
    schedule: &CommunitySchedule,
) -> CorruptedMeters {
    let plan = &plan.clamped();
    let horizon = schedule.horizon();
    let slots = horizon.slots();
    let meters = schedule.customer_schedules();

    let mut injected = FaultCounts::default();
    let mut readings = vec![vec![f64::NAN; slots]; meters.len()];

    for (meter_idx, customer) in meters.iter().enumerate() {
        if plan
            .outage
            .is_some_and(|outage| outage.covers(day, meter_idx))
        {
            injected.record(FaultKind::Unreported);
            continue;
        }
        let mut rng = plan.meter_stream(day, meter_idx);
        // Day-level draws, fixed order.
        let reported = rng.gen_bool(plan.report_rate);
        let stuck = rng.gen_bool(plan.stuck_rate);
        let skewed = rng.gen_bool(plan.skew_rate);
        if !reported {
            injected.record(FaultKind::Unreported);
            continue;
        }
        if stuck {
            injected.record(FaultKind::Stuck);
        } else if skewed {
            injected.record(FaultKind::Skewed);
        }

        let trading = customer.trading();
        for h in 0..slots {
            // Slot-level draws, fixed order and always consumed.
            let dropped = rng.gen_bool(plan.drop_rate);
            let nan = rng.gen_bool(plan.nan_rate);
            let garbage = rng.gen_bool(plan.garbage_rate);
            let magnitude: f64 = rng.gen_range(-1.0..=1.0);

            if dropped {
                injected.record(FaultKind::Dropped);
                continue;
            }
            let base = if stuck {
                trading[0]
            } else if skewed {
                trading[(h + slots - 1) % slots]
            } else {
                trading[h]
            };
            readings[meter_idx][h] = if nan {
                injected.record(FaultKind::NonFinite);
                f64::NAN
            } else if garbage {
                injected.record(FaultKind::Garbage);
                plan.garbage_scale * magnitude * (base.abs() + 1.0)
            } else {
                base
            };
        }
    }

    CorruptedMeters {
        horizon,
        readings,
        injected,
    }
}

/// Corrupts one day of per-meter telemetry and re-aggregates it into the
/// community grid-demand series the detector will see.
///
/// Equivalent to [`corrupt_day_meters`] followed by
/// [`CorruptedMeters::aggregate`]; kept for callers that never inspect
/// individual meters.
pub fn corrupt_day(plan: &FaultPlan, day: usize, schedule: &CommunitySchedule) -> CorruptedDay {
    let per_meter = corrupt_day_meters(plan, day, schedule);
    CorruptedDay {
        observed: per_meter.aggregate(),
        injected: per_meter.injected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Market, PaperScenario};

    fn realized_schedule() -> CommunitySchedule {
        let scenario = PaperScenario::small(6, 17);
        let market = Market::new(&scenario).unwrap();
        let generator = scenario.generator();
        let community = generator.community_for_day(0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        market
            .clear_day(&community, 2, &mut rng)
            .unwrap()
            .response
            .schedule
    }

    #[test]
    fn noop_plan_reproduces_clean_aggregate() {
        let schedule = realized_schedule();
        let plan = FaultPlan::none(9);
        assert!(plan.is_noop());
        let corrupted = corrupt_day(&plan, 0, &schedule);
        assert_eq!(corrupted.injected.total(), 0);
        let clean = schedule.grid_demand_clamped();
        for h in 0..schedule.horizon().slots() {
            assert!(
                (corrupted.observed[h] - clean[h]).abs() < 1e-9,
                "slot {h}: {} vs {}",
                corrupted.observed[h],
                clean[h]
            );
        }
    }

    #[test]
    fn corruption_is_deterministic_per_seed_and_day() {
        let schedule = realized_schedule();
        let plan = FaultPlan::degraded(3, 0.2);
        let a = corrupt_day(&plan, 4, &schedule);
        let b = corrupt_day(&plan, 4, &schedule);
        assert_eq!(a, b);
        // A different day draws a different fault pattern.
        let c = corrupt_day(&plan, 5, &schedule);
        assert!(a.observed != c.observed || a.injected != c.injected);
    }

    #[test]
    fn heavy_faults_are_injected_and_counted() {
        let schedule = realized_schedule();
        let plan = FaultPlan {
            seed: 11,
            drop_rate: 0.3,
            nan_rate: 0.2,
            garbage_rate: 0.1,
            garbage_scale: 50.0,
            stuck_rate: 0.3,
            skew_rate: 0.3,
            report_rate: 0.7,
            outage: None,
        };
        plan.validate().unwrap();
        let corrupted = corrupt_day(&plan, 1, &schedule);
        assert!(corrupted.injected.total() > 0);
        assert!(corrupted.injected.dropped > 0);
        assert!(corrupted.injected.non_finite > 0);
    }

    #[test]
    fn fully_unreported_day_is_nan() {
        let schedule = realized_schedule();
        let mut plan = FaultPlan::none(2);
        plan.report_rate = 0.0;
        let corrupted = corrupt_day(&plan, 0, &schedule);
        assert_eq!(
            corrupted.injected.unreported,
            schedule.customer_schedules().len()
        );
        assert!(corrupted.observed.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn invalid_rates_are_clamped_instead_of_panicking() {
        let schedule = realized_schedule();
        let plan = FaultPlan {
            seed: 4,
            drop_rate: 1.5,
            nan_rate: -0.3,
            garbage_rate: f64::NAN,
            garbage_scale: f64::INFINITY,
            stuck_rate: 2.0,
            skew_rate: f64::NEG_INFINITY,
            report_rate: f64::NAN,
            outage: None,
        };
        assert!(plan.validate().is_err());
        // drop_rate clamps to 1.0 and report_rate to 1.0: every meter
        // reports, every slot drops.
        let corrupted = corrupt_day(&plan, 0, &schedule);
        let slots = schedule.horizon().slots();
        let meters = schedule.customer_schedules().len();
        assert_eq!(corrupted.injected.dropped, slots * meters);
        assert_eq!(corrupted.injected.unreported, 0);
        assert!(corrupted.observed.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn per_meter_view_matches_aggregate_wrapper() {
        let schedule = realized_schedule();
        let plan = FaultPlan::degraded(7, 0.15);
        let per_meter = corrupt_day_meters(&plan, 3, &schedule);
        let wrapped = corrupt_day(&plan, 3, &schedule);
        assert_eq!(per_meter.injected, wrapped.injected);
        assert_eq!(per_meter.fleet(), schedule.customer_schedules().len());
        let aggregated = per_meter.aggregate();
        for h in 0..schedule.horizon().slots() {
            let (a, b) = (aggregated[h], wrapped.observed[h]);
            assert!(a == b || (a.is_nan() && b.is_nan()), "slot {h}: {a} vs {b}");
        }
    }

    #[test]
    fn scripted_outage_silences_exact_meters_without_reshuffling_others() {
        let schedule = realized_schedule();
        let fleet = schedule.customer_schedules().len();
        let mut plan = FaultPlan::degraded(13, 0.1);
        assert!(fleet >= 3, "small scenario should have at least 3 meters");
        plan.outage = Some(MeterOutage {
            first_meter: 1,
            meters: 2,
            from_day: 2,
            until_day: 4,
        });
        let baseline = corrupt_day_meters(&FaultPlan { outage: None, ..plan }, 2, &schedule);
        let outaged = corrupt_day_meters(&plan, 2, &schedule);
        // Covered meters are fully silent.
        for meter in 1..3 {
            assert!(outaged.meter_readings(meter).iter().all(|v| v.is_nan()));
        }
        // Uncovered meters see the exact same random faults.
        for meter in (0..fleet).filter(|m| !(1..3).contains(m)) {
            let (a, b) = (baseline.meter_readings(meter), outaged.meter_readings(meter));
            for (x, y) in a.iter().zip(b) {
                assert!(x == y || (x.is_nan() && y.is_nan()));
            }
        }
        // Outside the day range the outage does nothing.
        let after = corrupt_day_meters(&plan, 4, &schedule);
        let clean = corrupt_day_meters(&FaultPlan { outage: None, ..plan }, 4, &schedule);
        assert_eq!(after.injected, clean.injected);
        for meter in 0..fleet {
            let (a, b) = (after.meter_readings(meter), clean.meter_readings(meter));
            for (x, y) in a.iter().zip(b) {
                assert!(x == y || (x.is_nan() && y.is_nan()));
            }
        }
        assert!(!plan.is_noop());
        let mut empty = FaultPlan::none(1);
        empty.outage = Some(MeterOutage {
            first_meter: 0,
            meters: 0,
            from_day: 0,
            until_day: 10,
        });
        assert!(empty.is_noop());
    }

    #[test]
    fn exclusion_drops_meters_but_keeps_fleet_scale() {
        let schedule = realized_schedule();
        let fleet = schedule.customer_schedules().len();
        let per_meter = corrupt_day_meters(&FaultPlan::none(3), 0, &schedule);
        let mut excluded = vec![false; fleet];
        excluded[0] = true;
        let with_exclusion = per_meter.aggregate_excluding(&excluded);
        let slots = schedule.horizon().slots();
        for h in 0..slots {
            let others: Vec<f64> = (1..fleet)
                .map(|m| per_meter.meter_readings(m)[h])
                .collect();
            let expected =
                (others.iter().sum::<f64>() / others.len() as f64 * fleet as f64).max(0.0);
            assert!(
                (with_exclusion[h] - expected).abs() < 1e-9,
                "slot {h}: {} vs {expected}",
                with_exclusion[h]
            );
        }
        // Excluding everything leaves nothing usable.
        let all = per_meter.aggregate_excluding(&vec![true; fleet]);
        assert!(all.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn fault_plan_without_outage_field_still_deserializes() {
        let json = r#"{"seed":5,"drop_rate":0.1,"nan_rate":0.0,"garbage_rate":0.0,
            "garbage_scale":100.0,"stuck_rate":0.0,"skew_rate":0.0,"report_rate":1.0}"#;
        let plan: FaultPlan = serde_json::from_str(json).expect("legacy plan should load");
        assert_eq!(plan.outage, None);
        assert_eq!(plan.drop_rate, 0.1);
    }

    #[test]
    fn validation_rejects_bad_rates() {
        let mut plan = FaultPlan::none(0);
        plan.drop_rate = 1.5;
        assert!(plan.validate().is_err());
        let mut plan = FaultPlan::none(0);
        plan.garbage_scale = f64::NAN;
        assert!(plan.validate().is_err());
        assert!(FaultPlan::degraded(1, 0.05).validate().is_ok());
    }
}
