//! Seeded telemetry fault injection (robustness layer).
//!
//! The detector never sees the community's physical demand directly — it
//! sees what the smart meters *report*. A [`FaultPlan`] corrupts that
//! reporting layer between the realized schedules and the detection
//! statistic: readings drop out, meters emit NaN or garbage, stick at their
//! first reading, skew their clocks by one slot, or stop reporting for the
//! day entirely. The physical world is untouched; only the detector's view
//! degrades.
//!
//! Corruption is deterministic: each `(plan seed, day, meter)` triple seeds
//! its own stream, and every fault decision is drawn in a fixed order that
//! does not depend on the telemetry values. Re-deriving the corrupted view
//! for the same day — which the detection loop does whenever the compromise
//! set changes mid-day — therefore injects the *same* faults.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use nms_smarthome::CommunitySchedule;
use nms_types::{FaultCounts, FaultKind, TimeSeries, ValidateError};

/// A serializable, seeded plan for corrupting one run's meter telemetry.
///
/// Slot-level rates (`drop_rate`, `nan_rate`, `garbage_rate`) apply per
/// meter-slot; day-level rates (`stuck_rate`, `skew_rate`, and the
/// complement of `report_rate`) apply per meter-day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the fault streams (independent of the simulation RNG).
    pub seed: u64,
    /// Probability a meter-slot reading is dropped (arrives as missing).
    pub drop_rate: f64,
    /// Probability a meter-slot reading arrives as NaN.
    pub nan_rate: f64,
    /// Probability a meter-slot reading is replaced by garbage.
    pub garbage_rate: f64,
    /// Magnitude multiplier for garbage readings (relative to the true
    /// reading's scale).
    pub garbage_scale: f64,
    /// Probability a meter spends the whole day stuck at its first reading.
    pub stuck_rate: f64,
    /// Probability a meter's clock skews one slot behind for the day.
    pub skew_rate: f64,
    /// Probability a meter reports at all on a given day.
    pub report_rate: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (every meter reports cleanly).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            drop_rate: 0.0,
            nan_rate: 0.0,
            garbage_rate: 0.0,
            garbage_scale: 100.0,
            stuck_rate: 0.0,
            skew_rate: 0.0,
            report_rate: 1.0,
        }
    }

    /// A mixed degradation profile anchored on `rate`: `rate` dropped
    /// readings, with NaN/garbage/stuck/skew/no-report faults at fractions
    /// of it. `degraded(seed, 0.05)` is the ISSUE's "5% dropped" shape.
    pub fn degraded(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            drop_rate: rate,
            nan_rate: rate / 5.0,
            garbage_rate: rate / 10.0,
            garbage_scale: 100.0,
            stuck_rate: rate / 2.0,
            skew_rate: rate / 4.0,
            report_rate: 1.0 - rate / 2.0,
        }
    }

    /// `true` when the plan cannot inject any fault.
    pub fn is_noop(&self) -> bool {
        self.drop_rate == 0.0
            && self.nan_rate == 0.0
            && self.garbage_rate == 0.0
            && self.stuck_rate == 0.0
            && self.skew_rate == 0.0
            && self.report_rate >= 1.0
    }

    /// Checks every rate is a probability and the garbage scale is usable.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when a rate leaves `[0, 1]` or
    /// `garbage_scale` is not finite and positive.
    pub fn validate(&self) -> Result<(), ValidateError> {
        for (name, rate) in [
            ("drop_rate", self.drop_rate),
            ("nan_rate", self.nan_rate),
            ("garbage_rate", self.garbage_rate),
            ("stuck_rate", self.stuck_rate),
            ("skew_rate", self.skew_rate),
            ("report_rate", self.report_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                return Err(ValidateError::new(format!(
                    "{name} must be a probability, got {rate}"
                )));
            }
        }
        if !(self.garbage_scale > 0.0 && self.garbage_scale.is_finite()) {
            return Err(ValidateError::new(format!(
                "garbage_scale must be finite and positive, got {}",
                self.garbage_scale
            )));
        }
        Ok(())
    }

    /// A copy of the plan with every rate forced into `[0, 1]` and the
    /// garbage scale forced finite, so drawing from it can never panic.
    /// Non-finite fault rates inject nothing; a non-finite `report_rate`
    /// keeps every meter reporting.
    fn clamped(&self) -> Self {
        fn rate(r: f64, fallback: f64) -> f64 {
            if r.is_finite() {
                r.clamp(0.0, 1.0)
            } else {
                fallback
            }
        }
        Self {
            seed: self.seed,
            drop_rate: rate(self.drop_rate, 0.0),
            nan_rate: rate(self.nan_rate, 0.0),
            garbage_rate: rate(self.garbage_rate, 0.0),
            garbage_scale: if self.garbage_scale.is_finite() {
                self.garbage_scale
            } else {
                0.0
            },
            stuck_rate: rate(self.stuck_rate, 0.0),
            skew_rate: rate(self.skew_rate, 0.0),
            report_rate: rate(self.report_rate, 1.0),
        }
    }

    fn meter_stream(&self, day: usize, meter: usize) -> ChaCha8Rng {
        let mixed = self
            .seed
            .wrapping_add((day as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add((meter as u64).wrapping_mul(0xd1b5_4a32_d192_ed03));
        ChaCha8Rng::seed_from_u64(mixed)
    }
}

/// One day of corrupted telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct CorruptedDay {
    /// The aggregate grid demand the detector receives: per-slot mean of
    /// the finite meter reports scaled to fleet size, clamped at zero like
    /// the clean aggregate, and NaN where no meter reported a usable value.
    pub observed: TimeSeries<f64>,
    /// Tally of the faults actually injected (day-level faults count once
    /// per meter, slot-level faults once per meter-slot).
    pub injected: FaultCounts,
}

/// Corrupts one day of per-meter telemetry and re-aggregates it into the
/// community grid-demand series the detector will see.
///
/// Deterministic in `(plan.seed, day, meter index)`; the schedule's values
/// never influence *which* faults fire, only the magnitudes of garbage
/// readings.
///
/// The plan is clamped before any draw: rates outside `[0, 1]` are pulled
/// to the nearest bound and non-finite rates inject nothing (a non-finite
/// `report_rate` keeps every meter reporting), so a hand-built plan that
/// would fail [`FaultPlan::validate`] degrades the injection rather than
/// panicking. Call `validate` first to reject such plans outright.
pub fn corrupt_day(plan: &FaultPlan, day: usize, schedule: &CommunitySchedule) -> CorruptedDay {
    let plan = &plan.clamped();
    let horizon = schedule.horizon();
    let slots = horizon.slots();
    let meters = schedule.customer_schedules();
    let fleet = meters.len();

    let mut injected = FaultCounts::default();
    let mut sums = vec![0.0_f64; slots];
    let mut counts = vec![0usize; slots];

    for (meter_idx, customer) in meters.iter().enumerate() {
        let mut rng = plan.meter_stream(day, meter_idx);
        // Day-level draws, fixed order.
        let reported = rng.gen_bool(plan.report_rate);
        let stuck = rng.gen_bool(plan.stuck_rate);
        let skewed = rng.gen_bool(plan.skew_rate);
        if !reported {
            injected.record(FaultKind::Unreported);
            continue;
        }
        if stuck {
            injected.record(FaultKind::Stuck);
        } else if skewed {
            injected.record(FaultKind::Skewed);
        }

        let trading = customer.trading();
        for h in 0..slots {
            // Slot-level draws, fixed order and always consumed.
            let dropped = rng.gen_bool(plan.drop_rate);
            let nan = rng.gen_bool(plan.nan_rate);
            let garbage = rng.gen_bool(plan.garbage_rate);
            let magnitude: f64 = rng.gen_range(-1.0..=1.0);

            if dropped {
                injected.record(FaultKind::Dropped);
                continue;
            }
            let base = if stuck {
                trading[0]
            } else if skewed {
                trading[(h + slots - 1) % slots]
            } else {
                trading[h]
            };
            let reading = if nan {
                injected.record(FaultKind::NonFinite);
                f64::NAN
            } else if garbage {
                injected.record(FaultKind::Garbage);
                plan.garbage_scale * magnitude * (base.abs() + 1.0)
            } else {
                base
            };
            if reading.is_finite() {
                sums[h] += reading;
                counts[h] += 1;
            }
        }
    }

    let observed = TimeSeries::from_fn(horizon, |h| {
        if counts[h] == 0 {
            f64::NAN
        } else {
            (sums[h] / counts[h] as f64 * fleet as f64).max(0.0)
        }
    });

    CorruptedDay { observed, injected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Market, PaperScenario};

    fn realized_schedule() -> CommunitySchedule {
        let scenario = PaperScenario::small(6, 17);
        let market = Market::new(&scenario).unwrap();
        let generator = scenario.generator();
        let community = generator.community_for_day(0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        market
            .clear_day(&community, 2, &mut rng)
            .unwrap()
            .response
            .schedule
    }

    #[test]
    fn noop_plan_reproduces_clean_aggregate() {
        let schedule = realized_schedule();
        let plan = FaultPlan::none(9);
        assert!(plan.is_noop());
        let corrupted = corrupt_day(&plan, 0, &schedule);
        assert_eq!(corrupted.injected.total(), 0);
        let clean = schedule.grid_demand_clamped();
        for h in 0..schedule.horizon().slots() {
            assert!(
                (corrupted.observed[h] - clean[h]).abs() < 1e-9,
                "slot {h}: {} vs {}",
                corrupted.observed[h],
                clean[h]
            );
        }
    }

    #[test]
    fn corruption_is_deterministic_per_seed_and_day() {
        let schedule = realized_schedule();
        let plan = FaultPlan::degraded(3, 0.2);
        let a = corrupt_day(&plan, 4, &schedule);
        let b = corrupt_day(&plan, 4, &schedule);
        assert_eq!(a, b);
        // A different day draws a different fault pattern.
        let c = corrupt_day(&plan, 5, &schedule);
        assert!(a.observed != c.observed || a.injected != c.injected);
    }

    #[test]
    fn heavy_faults_are_injected_and_counted() {
        let schedule = realized_schedule();
        let plan = FaultPlan {
            seed: 11,
            drop_rate: 0.3,
            nan_rate: 0.2,
            garbage_rate: 0.1,
            garbage_scale: 50.0,
            stuck_rate: 0.3,
            skew_rate: 0.3,
            report_rate: 0.7,
        };
        plan.validate().unwrap();
        let corrupted = corrupt_day(&plan, 1, &schedule);
        assert!(corrupted.injected.total() > 0);
        assert!(corrupted.injected.dropped > 0);
        assert!(corrupted.injected.non_finite > 0);
    }

    #[test]
    fn fully_unreported_day_is_nan() {
        let schedule = realized_schedule();
        let mut plan = FaultPlan::none(2);
        plan.report_rate = 0.0;
        let corrupted = corrupt_day(&plan, 0, &schedule);
        assert_eq!(
            corrupted.injected.unreported,
            schedule.customer_schedules().len()
        );
        assert!(corrupted.observed.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn invalid_rates_are_clamped_instead_of_panicking() {
        let schedule = realized_schedule();
        let plan = FaultPlan {
            seed: 4,
            drop_rate: 1.5,
            nan_rate: -0.3,
            garbage_rate: f64::NAN,
            garbage_scale: f64::INFINITY,
            stuck_rate: 2.0,
            skew_rate: f64::NEG_INFINITY,
            report_rate: f64::NAN,
        };
        assert!(plan.validate().is_err());
        // drop_rate clamps to 1.0 and report_rate to 1.0: every meter
        // reports, every slot drops.
        let corrupted = corrupt_day(&plan, 0, &schedule);
        let slots = schedule.horizon().slots();
        let meters = schedule.customer_schedules().len();
        assert_eq!(corrupted.injected.dropped, slots * meters);
        assert_eq!(corrupted.injected.unreported, 0);
        assert!(corrupted.observed.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn validation_rejects_bad_rates() {
        let mut plan = FaultPlan::none(0);
        plan.drop_rate = 1.5;
        assert!(plan.validate().is_err());
        let mut plan = FaultPlan::none(0);
        plan.garbage_scale = f64::NAN;
        assert!(plan.validate().is_err());
        assert!(FaultPlan::degraded(1, 0.05).validate().is_ok());
    }
}
