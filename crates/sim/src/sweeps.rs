//! Parameter sweeps: the "what if" studies around the paper's evaluation.
//!
//! These back the ablation benches and the `community_planning` example
//! with typed, reusable runners: how the net-metering reward rate `W`, the
//! PV penetration, and the attack window shape the grid's load and the
//! attack surface.

use nms_obs::{NoopRecorder, Recorder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use nms_attack::PriceAttack;
use nms_core::{DetectorMode, FrameworkConfig, QuarantineConfig, SanitizeConfig};
use nms_par::{par_map_recorded, Parallelism};
use nms_pricing::NetMeteringTariff;
use nms_types::{RetryPolicy, SolveBudget};

use crate::experiments::paper_timeline;
use crate::{
    run_long_term_detection, FaultPlan, LongTermRunConfig, LongTermRunResult, Market,
    PaperScenario, SimError,
};

/// One row of a sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub parameter: f64,
    /// Grid PAR of the cleared day.
    pub par: f64,
    /// Total energy the community sold back (kWh).
    pub energy_sold: f64,
    /// Total midday (11:00–15:00) grid draw (kWh).
    pub midday_draw: f64,
    /// Best-response rounds the point's final game clearing executed.
    ///
    /// Deterministic and thread-invariant (each point's game is solved
    /// sequentially within its worker), so it is safe to compare across
    /// sequential and parallel sweeps.
    #[serde(default)]
    pub solver_rounds: usize,
    /// Whether that game converged within its round budget.
    #[serde(default)]
    pub solver_converged: bool,
    /// Solver memo-cache hits in that game (zero when the cache is off).
    #[serde(default)]
    pub cache_hits: usize,
    /// Solver memo-cache misses in that game (zero when the cache is off).
    #[serde(default)]
    pub cache_misses: usize,
}

/// Sweeps the net-metering reward divisor `W` and reports the cleared grid
/// shape at each setting.
///
/// Larger `W` (smaller sell-back reward) weakens the incentive to export,
/// which shows up as less energy sold and a flatter midday valley.
///
/// # Errors
///
/// Returns [`SimError`] when a sweep point fails to clear.
pub fn sweep_tariff(
    scenario: &PaperScenario,
    w_values: &[f64],
    parallelism: &Parallelism,
) -> Result<Vec<SweepPoint>, SimError> {
    sweep_tariff_recorded(scenario, w_values, parallelism, &NoopRecorder)
}

/// [`sweep_tariff`] with worker telemetry routed into `rec` (see
/// [`par_map_recorded`]). The sweep's results are unaffected.
///
/// # Errors
///
/// Same as [`sweep_tariff`].
pub fn sweep_tariff_recorded(
    scenario: &PaperScenario,
    w_values: &[f64],
    parallelism: &Parallelism,
    rec: &dyn Recorder,
) -> Result<Vec<SweepPoint>, SimError> {
    // Every point seeds its own RNG from the scenario, so points are
    // independent and the parallel sweep is bit-identical to sequential.
    // Workers clear unrecorded: the game layer emits trace events, which
    // the nms-obs contract keeps out of parallel regions.
    par_map_recorded(parallelism.threads, w_values, rec, |_, &w| {
        let mut swept = scenario.clone();
        swept.tariff = NetMeteringTariff::new(w)?;
        clear_point(&swept, w)
    })
}

/// Sweeps the PV ownership fraction.
///
/// # Errors
///
/// Returns [`SimError`] when a sweep point fails to clear or an ownership
/// value is outside `[0, 1]`.
pub fn sweep_pv_ownership(
    scenario: &PaperScenario,
    ownership_values: &[f64],
    parallelism: &Parallelism,
) -> Result<Vec<SweepPoint>, SimError> {
    sweep_pv_ownership_recorded(scenario, ownership_values, parallelism, &NoopRecorder)
}

/// [`sweep_pv_ownership`] with worker telemetry routed into `rec`.
///
/// # Errors
///
/// Same as [`sweep_pv_ownership`].
pub fn sweep_pv_ownership_recorded(
    scenario: &PaperScenario,
    ownership_values: &[f64],
    parallelism: &Parallelism,
    rec: &dyn Recorder,
) -> Result<Vec<SweepPoint>, SimError> {
    par_map_recorded(
        parallelism.threads,
        ownership_values,
        rec,
        |_, &ownership| {
            let mut swept = scenario.clone();
            swept.pv_ownership = ownership;
            swept.validate()?;
            clear_point(&swept, ownership)
        },
    )
}

fn clear_point(scenario: &PaperScenario, parameter: f64) -> Result<SweepPoint, SimError> {
    let market = Market::new(scenario)?;
    let generator = scenario.generator();
    let weather = scenario.weather_factors(1);
    let community = generator.community_for_day(0, weather[0]);
    let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0x5eeb);
    let outcome = market.clear_day(&community, 2, &mut rng)?;
    let energy_sold = outcome
        .response
        .schedule
        .customer_schedules()
        .iter()
        .map(|s| s.total_sold().value())
        .sum();
    let midday_draw = (11..15).map(|h| outcome.response.grid_demand[h]).sum();
    Ok(SweepPoint {
        parameter,
        par: outcome.response.par,
        energy_sold,
        midday_draw,
        solver_rounds: outcome.response.rounds,
        solver_converged: outcome.response.converged,
        cache_hits: outcome.response.cache.hits,
        cache_misses: outcome.response.cache.misses,
    })
}

/// One row of the attack-window sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackWindowPoint {
    /// Start hour of the zeroed window.
    pub from_hour: f64,
    /// PAR of the full-fleet attacked response.
    pub attacked_par: f64,
    /// Slot where the attacked demand peaks.
    pub peak_slot: usize,
    /// Best-response rounds of the attacked game (deterministic and
    /// thread-invariant, like [`SweepPoint::solver_rounds`]).
    #[serde(default)]
    pub solver_rounds: usize,
    /// Solver memo-cache hits in the attacked game.
    #[serde(default)]
    pub cache_hits: usize,
    /// Solver memo-cache misses in the attacked game.
    #[serde(default)]
    pub cache_misses: usize,
}

/// Sweeps one-hour zero-price windows across the day: where does the
/// attacker do the most damage?
///
/// # Errors
///
/// Returns [`SimError`] when a point fails to clear.
pub fn sweep_attack_window(
    scenario: &PaperScenario,
    start_hours: &[f64],
    parallelism: &Parallelism,
) -> Result<Vec<AttackWindowPoint>, SimError> {
    sweep_attack_window_recorded(scenario, start_hours, parallelism, &NoopRecorder)
}

/// [`sweep_attack_window`] with worker telemetry routed into `rec`.
///
/// # Errors
///
/// Same as [`sweep_attack_window`].
pub fn sweep_attack_window_recorded(
    scenario: &PaperScenario,
    start_hours: &[f64],
    parallelism: &Parallelism,
    rec: &dyn Recorder,
) -> Result<Vec<AttackWindowPoint>, SimError> {
    let market = Market::new(scenario)?;
    let generator = scenario.generator();
    let weather = scenario.weather_factors(1);
    let community = generator.community_for_day(0, weather[0]);
    let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0xa77ac);
    let clean = market.clear_day_recorded(&community, 2, &mut rng, rec)?;

    par_map_recorded(parallelism.threads, start_hours, rec, |_, &from_hour| {
        let attack = PriceAttack::zero_window(from_hour, from_hour + 1.0)?;
        let manipulated = attack.apply(&clean.price);
        let mut attacked_rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0xa77ac);
        let attacked = market
            .truth_model()
            .predict(&community, &manipulated, &mut attacked_rng)?;
        Ok(AttackWindowPoint {
            from_hour,
            attacked_par: attacked.par,
            peak_slot: attacked.grid_demand.peak_slot(),
            solver_rounds: attacked.rounds,
            cache_hits: attacked.cache.hits,
            cache_misses: attacked.cache.misses,
        })
    })
}

/// One row of the fault-tolerance sweep: detection quality for both
/// detector modes as telemetry corruption grows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultTolerancePoint {
    /// The anchor fault rate fed to [`FaultPlan::degraded`].
    pub fault_rate: f64,
    /// Observation accuracy, net-metering-aware detector.
    pub aware_accuracy: f64,
    /// Observation accuracy, net-metering-ignorant detector.
    pub naive_accuracy: f64,
    /// Realized-demand PAR under the aware detector.
    pub aware_par: f64,
    /// Realized-demand PAR under the naive detector.
    pub naive_par: f64,
    /// Telemetry slots imputed by the sanitizer (both runs combined).
    pub slots_imputed: usize,
    /// Faults injected into the telemetry (both runs combined).
    pub faults_injected: usize,
}

/// Sweeps telemetry corruption: the paper's 48-hour detection run repeated
/// at each fault rate for both [`DetectorMode`]s, with degradation tallies.
///
/// Rate 0 runs the pristine pipeline, so the first point doubles as the
/// robustness baseline.
///
/// # Errors
///
/// Returns [`SimError`] when a run fails outright (fault injection itself
/// degrades instead of failing).
pub fn sweep_fault_tolerance(
    scenario: &PaperScenario,
    fault_rates: &[f64],
    parallelism: &Parallelism,
) -> Result<Vec<FaultTolerancePoint>, SimError> {
    sweep_fault_tolerance_recorded(scenario, fault_rates, parallelism, &NoopRecorder)
}

/// [`sweep_fault_tolerance`] with worker telemetry routed into `rec`.
///
/// # Errors
///
/// Same as [`sweep_fault_tolerance`].
pub fn sweep_fault_tolerance_recorded(
    scenario: &PaperScenario,
    fault_rates: &[f64],
    parallelism: &Parallelism,
    rec: &dyn Recorder,
) -> Result<Vec<FaultTolerancePoint>, SimError> {
    par_map_recorded(parallelism.threads, fault_rates, rec, |_, &rate| {
        let plan = (rate > 0.0).then(|| FaultPlan::degraded(scenario.seed ^ 0xfa_017, rate));
        let run = |mode: DetectorMode| -> Result<LongTermRunResult, SimError> {
            let config = LongTermRunConfig {
                detection_days: 2,
                detector: Some(FrameworkConfig::new(mode, 24)),
                timeline: paper_timeline(scenario.customers),
                buckets: 6,
                bucket_fraction_step: 0.1,
                labor_per_fix: 10.0,
                labor_per_meter: 1.0,
                faults: plan,
                sanitize: SanitizeConfig::default(),
                retry: RetryPolicy::default(),
                budget: SolveBudget::unlimited(),
                quarantine: QuarantineConfig::default(),
                parallelism: Default::default(),
                clearing_iterations: 2,
            };
            let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0xfa_417);
            run_long_term_detection(scenario, &config, &mut rng)
        };
        let aware = run(DetectorMode::NetMeteringAware)?;
        let naive = run(DetectorMode::IgnoreNetMetering)?;
        Ok(FaultTolerancePoint {
            fault_rate: rate,
            aware_accuracy: aware.accuracy.accuracy().unwrap_or(0.0),
            naive_accuracy: naive.accuracy.accuracy().unwrap_or(0.0),
            aware_par: aware.par,
            naive_par: naive.par,
            slots_imputed: aware.health.slots_imputed + naive.health.slots_imputed,
            faults_injected: aware.health.faults_injected.total()
                + naive.health.faults_injected.total(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> PaperScenario {
        PaperScenario::small(12, 19)
    }

    #[test]
    fn tariff_sweep_weakens_exports_with_w() {
        let points = sweep_tariff(&scenario(), &[1.0, 3.0], &Parallelism::SEQUENTIAL).unwrap();
        assert_eq!(points.len(), 2);
        // Full retail (W = 1) rewards exporting at least as much as W = 3.
        assert!(
            points[0].energy_sold >= points[1].energy_sold - 0.5,
            "W=1 sold {} vs W=3 sold {}",
            points[0].energy_sold,
            points[1].energy_sold
        );
        assert!(points.iter().all(|p| p.par >= 1.0));
    }

    #[test]
    fn pv_sweep_hollows_midday() {
        let points = sweep_pv_ownership(&scenario(), &[0.0, 1.0], &Parallelism::new(2)).unwrap();
        assert!(
            points[1].midday_draw < points[0].midday_draw,
            "full PV midday {} vs none {}",
            points[1].midday_draw,
            points[0].midday_draw
        );
        // No panels ⇒ only battery arbitrage can export; panels on every
        // roof export strictly more.
        assert!(
            points[1].energy_sold > points[0].energy_sold,
            "full PV sold {} vs none {}",
            points[1].energy_sold,
            points[0].energy_sold
        );
    }

    #[test]
    fn pv_sweep_rejects_bad_fraction() {
        assert!(sweep_pv_ownership(&scenario(), &[1.5], &Parallelism::new(2)).is_err());
    }

    #[test]
    fn fault_tolerance_sweep_reports_degradation() {
        let mut scenario = PaperScenario::small(8, 21);
        scenario.training_days = 4;
        let points = sweep_fault_tolerance(&scenario, &[0.25], &Parallelism::SEQUENTIAL).unwrap();
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert!((0.0..=1.0).contains(&p.aware_accuracy));
        assert!((0.0..=1.0).contains(&p.naive_accuracy));
        assert!(p.aware_par.is_finite() && p.naive_par.is_finite());
        // A quarter of all meter-slots dropping must actually register.
        assert!(p.faults_injected > 0, "no faults injected");
    }

    #[test]
    fn attack_window_sweep_reports_each_window() {
        let points = sweep_attack_window(&scenario(), &[3.0, 16.0], &Parallelism::new(2)).unwrap();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.attacked_par >= 1.0);
            assert!(p.peak_slot < 24);
        }
        // Zeroing 16:00 drags the peak into that slot.
        assert_eq!(points[1].peak_slot, 16);
    }
}
