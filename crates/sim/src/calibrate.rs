//! Detector calibration from historical data (§4.2: the observation
//! function "Ω … trained based on the historical data").
//!
//! The defender backtests its own day-ahead pipeline on the last few
//! training days. For each backtest day `d` it has, from *observed*
//! history, the actual clean grid demand; from its *own world model* it can
//! simulate what `b` compromised meters would have added (a unilateral
//! deviation delta). Superimposing the two and comparing against its own
//! day-ahead prediction emulates exactly the runtime detection statistic:
//!
//! ```text
//! stat(d, b) = peak_deviation(actual_d + Δ_d(b), predicted_d)
//! ```
//!
//! Per-bucket centroids of `stat(·, b)` become the observation map (with
//! bucket 0 widened by the backtest dispersion, the operational
//! set-the-alarm-above-seen-noise rule), and the empirical confusion of the
//! map on these samples — shrunk toward an analytic prior — becomes the
//! POMDP's trained observation matrix. A detector whose world
//! model is biased (ignoring net metering) calibrates against its *own*
//! bias, exactly as the prior art would have.

use nms_obs::{Recorder, Stopwatch, TraceEvent};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use nms_attack::AttackTimeline;
use nms_core::{FrameworkConfig, ParObservationMap, PricePredictor};
use nms_forecast::PriceHistory;
use nms_par::Parallelism;
use nms_types::{MeterId, RetryPolicy, RunHealth, SolveBudget, TimeSeries, ValidateError};

use crate::{CommunityGenerator, Market, PaperScenario, SimError};

/// Pseudo-count mass of the analytic prior when estimating the observation
/// matrix from the (few) backtest samples: the empirical confusion is
/// shrunk toward the detector's configured analytic matrix so that a
/// handful of noisy samples cannot convince the POMDP its sensor is
/// useless (or perfect).
const OBSERVATION_PRIOR_MASS: f64 = 4.0;

/// Everything the long-term detector learns during the training epoch.
#[derive(Debug)]
pub struct DetectorCalibration {
    /// The day-ahead price predictor, trained on the full history.
    pub price_predictor: PricePredictor,
    /// Statistic → observed-bucket map (per-bucket centroids).
    pub observation_map: ParObservationMap,
    /// Trained observation matrix `Ω[true_bucket][observed_bucket]`.
    pub observation_matrix: Vec<Vec<f64>>,
    /// Raw calibration statistics, `[backtest_day][bucket]` (diagnostics).
    pub statistics: Vec<Vec<f64>>,
    /// Retries and fallbacks consumed while training the predictors.
    pub health: RunHealth,
}

/// The detection statistic: peak positive deviation of `observed` demand
/// over `predicted`, relative to the predicted mean. A model bias that
/// *over*-predicts demand (e.g. ignoring PV) pushes the statistic down and
/// masks attacks — the paper's mechanism for the naive detector's misses.
pub(crate) fn peak_deviation(observed: &TimeSeries<f64>, predicted: &TimeSeries<f64>) -> f64 {
    let mean = predicted.mean().max(1e-9);
    observed
        .iter()
        .zip(predicted.iter())
        .map(|(o, p)| (o - p) / mean)
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Runs the full calibration pipeline over the training epoch.
///
/// # Errors
///
/// Returns [`SimError::Config`] when the training epoch is too short for
/// the detector's feature lags, or propagates solver/prediction failures.
#[allow(clippy::too_many_arguments)]
pub(crate) fn calibrate_detector(
    scenario: &PaperScenario,
    framework: &FrameworkConfig,
    timeline: &AttackTimeline,
    buckets: usize,
    bucket_fraction_step: f64,
    retry: &RetryPolicy,
    budget: &SolveBudget,
    market: &Market,
    generator: &CommunityGenerator,
    history: &PriceHistory,
    parallelism: &Parallelism,
    rng: &mut impl Rng,
    rec: &dyn Recorder,
) -> Result<DetectorCalibration, SimError> {
    let watch = Stopwatch::start();
    // A backtest day needs `max_lag` slots of history *plus* one day of
    // training samples before it.
    let max_lag = framework.price_predictor().features().max_lag();
    let earliest_backtest_day = max_lag.div_ceil(24) + 1;
    if scenario.training_days <= earliest_backtest_day {
        return Err(SimError::Config(ValidateError::new(format!(
            "detector with a {max_lag}-slot feature lag needs more than \
             {earliest_backtest_day} training days, got {}",
            scenario.training_days
        ))));
    }
    let backtest_days = 3.min(scenario.training_days - earliest_backtest_day).max(1);
    let weather = scenario.weather_factors(scenario.training_days);

    // stat[d][b]: the emulated runtime statistic on backtest day d with b
    // buckets' worth of meters compromised.
    //
    // Each backtest day consumes exactly two draws from the caller's RNG —
    // the day-clearing seed and the realization seed — so drawing them all
    // up front in loop order leaves the stream positioned exactly where the
    // sequential loop would, and makes each day a pure function of its
    // `(seeds, day)` pair that `par_map` may run on any worker.
    let day_seeds: Vec<(u64, u64)> = (0..backtest_days).map(|_| (rng.gen(), rng.gen())).collect();
    let mut health = RunHealth::new();

    let backtests = nms_par::par_map_recorded(
        parallelism.threads,
        &day_seeds,
        rec,
        |back, &(clear_seed, seed)| -> Result<(Vec<f64>, RunHealth), SimError> {
            let day = scenario.training_days - 1 - back;
            let community = generator.community_for_day(day, weather[day]);
            // Workers deliberately use the unrecorded clear: the game layer
            // emits trace *events*, which the nms-obs contract keeps out of
            // parallel regions (worker telemetry flows through
            // `par_map_recorded`'s commutative metrics instead).
            let outcome = market.clear_day_seeded(&community, 2, clear_seed)?;
            let manipulated = timeline.attack().apply(&outcome.price);

            // The detector's day-ahead view of this (past) day.
            let mut day_health = RunHealth::new();
            let mut backtest_predictor = framework.price_predictor();
            let sub_history = history.truncated(day * 24);
            let report = backtest_predictor.train_robust_budgeted(&sub_history, retry, budget)?;
            day_health.record_retries(report.retries);
            day_health.record_budget_breaches(usize::from(report.budget_breached));
            if let Some(fallback) = report.fallback {
                day_health.record_fallback(fallback);
            }
            let theta = community.total_generation();
            let generation_forecast = backtest_predictor
                .features()
                .target_generation
                .then_some(&theta);
            let backtest_price = backtest_predictor.predict_day(
                &sub_history,
                community.horizon(),
                generation_forecast,
            )?;
            let mut predicted_rng = ChaCha8Rng::seed_from_u64(seed);
            let predicted = framework
                .load
                .predict(&community, &backtest_price, &mut predicted_rng)?;

            // The detector's world-model view of the clean day, used to
            // isolate the attack delta.
            let mut honest_rng = ChaCha8Rng::seed_from_u64(seed);
            let honest = framework
                .load
                .predict(&community, &outcome.price, &mut honest_rng)?;

            let mut day_stats = Vec::with_capacity(buckets);
            for bucket in 0..buckets {
                let hacked = ((bucket as f64 * bucket_fraction_step) * community.len() as f64)
                    .round() as usize;
                let synthetic = if hacked == 0 {
                    outcome.response.grid_demand.clone()
                } else {
                    let meters: Vec<MeterId> =
                        (0..hacked.min(community.len())).map(MeterId::new).collect();
                    let mut mixed_rng = ChaCha8Rng::seed_from_u64(seed);
                    let mixed = framework.load.respond_unilaterally(
                        &community,
                        &honest,
                        &manipulated,
                        &meters,
                        &mut mixed_rng,
                    )?;
                    // Superimpose the world-model attack delta on the
                    // observed clean demand.
                    TimeSeries::from_fn(community.horizon(), |h| {
                        (outcome.response.grid_demand[h] + mixed.grid_demand[h]
                            - honest.grid_demand[h])
                            .max(0.0)
                    })
                };
                day_stats.push(peak_deviation(&synthetic, &predicted.grid_demand));
            }
            Ok((day_stats, day_health))
        },
    )?;

    let mut statistics: Vec<Vec<f64>> = Vec::with_capacity(backtest_days);
    for (day_stats, day_health) in backtests {
        statistics.push(day_stats);
        health.merge(&day_health);
    }

    // Centroids: per-bucket mean over backtest days. Bucket 0 (the clean
    // state) is widened by twice the backtest dispersion plus a small
    // absolute margin — the operational "set the alarm threshold above the
    // noise you have seen" rule. A compromise whose signature hides inside
    // that margin is *missed* rather than producing an alarm every slot,
    // which is also how the paper's under-detecting baseline behaves.
    let mut centroids: Vec<f64> = (0..buckets)
        .map(|b| statistics.iter().map(|d| d[b]).sum::<f64>() / statistics.len() as f64)
        .collect();
    let clean_std = {
        let mean = centroids[0];
        (statistics
            .iter()
            .map(|d| (d[0] - mean).powi(2))
            .sum::<f64>()
            / statistics.len() as f64)
            .sqrt()
    };
    centroids[0] += 2.0 * clean_std + 0.01;
    for i in 1..centroids.len() {
        if centroids[i] <= centroids[i - 1] {
            centroids[i] = centroids[i - 1] + 1e-6;
        }
    }
    if std::env::var("NMS_DEBUG_CALIBRATION").is_ok() {
        eprintln!("calibration centroids: {centroids:?}");
    }
    let observation_map = ParObservationMap::from_centroids(centroids)?;

    // Trained observation matrix: empirical confusion of the map on the
    // backtest samples, shrunk toward the analytic prior.
    let prior =
        nms_core::analytic_observation_matrix(buckets, framework.long_term.observation_accuracy);
    let mut observation_matrix: Vec<Vec<f64>> = prior
        .iter()
        .map(|row| row.iter().map(|p| p * OBSERVATION_PRIOR_MASS).collect())
        .collect();
    for day_stats in &statistics {
        for (true_bucket, &stat) in day_stats.iter().enumerate() {
            let observed = observation_map.observe(stat);
            observation_matrix[true_bucket][observed] += 1.0;
        }
    }
    for row in &mut observation_matrix {
        let total: f64 = row.iter().sum();
        for p in row.iter_mut() {
            *p /= total;
        }
    }

    let mut price_predictor = framework.price_predictor();
    let report = price_predictor.train_robust_budgeted(history, retry, budget)?;
    health.record_retries(report.retries);
    health.record_budget_breaches(usize::from(report.budget_breached));
    if let Some(fallback) = report.fallback {
        health.record_fallback(fallback);
    }

    rec.observe("calibrate_seconds", watch.secs());
    rec.add("calibrate_backtest_days", backtest_days as u64);
    if rec.enabled() {
        rec.event(
            &TraceEvent::new("calibration")
                .field("backtest_days", backtest_days as f64)
                .field("buckets", buckets as f64)
                .field("retries", health.retries_consumed as f64)
                .field("seconds", watch.secs()),
        );
    }

    Ok(DetectorCalibration {
        price_predictor,
        observation_map,
        observation_matrix,
        statistics,
        health,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nms_attack::PriceAttack;
    use nms_core::DetectorMode;

    #[test]
    fn peak_deviation_is_signed_and_normalized() {
        let horizon = nms_types::Horizon::hourly_day();
        let predicted = TimeSeries::filled(horizon, 10.0);
        let mut observed = TimeSeries::filled(horizon, 10.0);
        assert!(peak_deviation(&observed, &predicted).abs() < 1e-12);
        observed[5] = 15.0;
        assert!((peak_deviation(&observed, &predicted) - 0.5).abs() < 1e-12);
        // A pure under-shoot yields a negative statistic.
        let low = TimeSeries::filled(horizon, 8.0);
        assert!(peak_deviation(&low, &predicted) < 0.0);
    }

    #[test]
    fn calibration_produces_valid_artifacts() {
        let mut scenario = PaperScenario::small(10, 55);
        scenario.training_days = 4;
        let market = Market::new(&scenario).unwrap();
        let generator = scenario.generator();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let history = market
            .bootstrap_history(&generator, scenario.training_days, &mut rng)
            .unwrap();
        let framework = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
        let timeline =
            AttackTimeline::new(vec![(4, 2)], PriceAttack::zero_window(16.0, 17.0).unwrap())
                .unwrap();
        let calibration = calibrate_detector(
            &scenario,
            &framework,
            &timeline,
            4,
            0.15,
            &RetryPolicy::default(),
            &SolveBudget::unlimited(),
            &market,
            &generator,
            &history,
            &Parallelism::SEQUENTIAL,
            &mut rng,
            &nms_obs::NoopRecorder,
        )
        .unwrap();
        assert!(calibration.price_predictor.is_trained());
        assert_eq!(calibration.observation_map.buckets(), 4);
        // Rows of the trained Ω are distributions with mass on the
        // diagonal (the analytic prior leaves far-off-diagonal cells at
        // zero unless a sample lands there).
        for (b, row) in calibration.observation_matrix.iter().enumerate() {
            let total: f64 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&p| p >= 0.0));
            assert!(row[b] > 0.0, "bucket {b} has zero self-observation mass");
        }
        // Centroids increase with the compromise level.
        let centroids = calibration.observation_map.centroids();
        assert!(centroids.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn parallel_backtest_is_bit_identical_to_sequential() {
        let mut scenario = PaperScenario::small(8, 57);
        scenario.training_days = 5;
        let market = Market::new(&scenario).unwrap();
        let generator = scenario.generator();
        let framework = FrameworkConfig::new(DetectorMode::NetMeteringAware, 24);
        let timeline =
            AttackTimeline::new(vec![(4, 2)], PriceAttack::zero_window(16.0, 17.0).unwrap())
                .unwrap();
        let run = |threads: usize| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let history = market
                .bootstrap_history(&generator, scenario.training_days, &mut rng)
                .unwrap();
            calibrate_detector(
                &scenario,
                &framework,
                &timeline,
                4,
                0.15,
                &RetryPolicy::default(),
                &SolveBudget::unlimited(),
                &market,
                &generator,
                &history,
                &Parallelism::new(threads),
                &mut rng,
                &nms_obs::NoopRecorder,
            )
            .unwrap()
        };
        let sequential = run(1);
        let parallel = run(3);
        assert_eq!(sequential.statistics, parallel.statistics);
        assert_eq!(
            sequential.observation_map.centroids(),
            parallel.observation_map.centroids()
        );
        assert_eq!(sequential.observation_matrix, parallel.observation_matrix);
        assert_eq!(
            sequential.health.retries_consumed,
            parallel.health.retries_consumed
        );
    }
}
