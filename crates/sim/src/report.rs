//! Plain-text rendering helpers for experiment outputs (paper-style tables
//! and hourly series).

/// Renders a table with a header row and aligned columns.
///
/// # Examples
///
/// ```
/// use nms_sim::render_table;
///
/// let text = render_table(
///     &["metric", "value"],
///     &[vec!["PAR".to_string(), "1.4112".to_string()]],
/// );
/// assert!(text.contains("PAR"));
/// assert!(text.contains("1.4112"));
/// ```
///
/// # Panics
///
/// Panics if any row has a different column count than the header.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), header.len(), "row {i} column count");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    let mut rule = String::from("|");
    for w in &widths {
        rule.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    rule.push('\n');
    out.push_str(&rule);
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Renders an hourly series as `label: v0 v1 …` lines plus a crude ASCII
/// sparkline, for eyeballing load/price shapes in terminal output.
pub fn render_series(label: &str, values: &[f64]) -> String {
    if values.is_empty() {
        return format!("{label}: (empty)\n");
    }
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let range = (max - min).max(1e-12);
    const BARS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let spark: String = values
        .iter()
        .map(|v| {
            let idx = (((v - min) / range) * (BARS.len() - 1) as f64).round() as usize;
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect();
    let numbers: Vec<String> = values.iter().map(|v| format!("{v:.3}")).collect();
    format!("{label}: {spark}\n  [{}]\n", numbers.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let text = render_table(
            &["name", "v"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines share the same width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn table_checks_columns() {
        let _ = render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn series_sparkline() {
        let text = render_series("load", &[0.0, 0.5, 1.0]);
        assert!(text.starts_with("load: "));
        assert!(text.contains('▁'));
        assert!(text.contains('█'));
        assert!(text.contains("0.500"));
    }

    #[test]
    fn empty_series() {
        assert!(render_series("x", &[]).contains("empty"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let text = render_series("flat", &[2.0, 2.0]);
        assert!(text.contains("2.000"));
    }
}
