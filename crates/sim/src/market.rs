//! The utility-in-the-loop market: guideline prices are *designed from* net
//! demand, closing the causal loop the paper's argument rests on (§1: "net
//! metering changes the grid energy demand, which is considered by the
//! utility when designing the guideline price").

use nms_obs::{NoopRecorder, Recorder};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use nms_core::{LoadPredictor, PredictedResponse};
use nms_solver::PersistentCache;
use nms_forecast::PriceHistory;
use nms_pricing::{PriceSignal, Utility};
use nms_smarthome::Community;

use crate::{CommunityGenerator, PaperScenario, SimError};

/// One simulated market day: the cleared guideline price and the community's
/// scheduled (ground-truth) response to it.
#[derive(Debug, Clone)]
pub struct DayOutcome {
    /// The guideline price the utility broadcast.
    pub price: PriceSignal,
    /// The community's response (always net-metering aware: the *world*
    /// has PV and batteries regardless of what any detector models).
    pub response: PredictedResponse,
}

/// The market simulator bound to a scenario.
#[derive(Debug, Clone)]
pub struct Market {
    scenario: PaperScenario,
    utility: Utility,
    truth: LoadPredictor,
}

impl Market {
    /// Builds the market for a scenario.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] on an invalid scenario.
    pub fn new(scenario: &PaperScenario) -> Result<Self, SimError> {
        scenario.validate()?;
        let utility = Utility::new(scenario.utility, scenario.customers)?;
        let truth = LoadPredictor::net_metering_aware(scenario.tariff, scenario.game);
        Ok(Self {
            scenario: scenario.clone(),
            utility,
            truth,
        })
    }

    /// The utility.
    #[inline]
    pub fn utility(&self) -> &Utility {
        &self.utility
    }

    /// The ground-truth world model (net-metering aware by construction).
    #[inline]
    pub fn truth_model(&self) -> &LoadPredictor {
        &self.truth
    }

    /// Clears one day: fixed-point iterate price ← design(demand(price))
    /// starting from a flat base-price signal, for `iterations` rounds
    /// (two rounds reach a stable shape in practice).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when scheduling fails.
    pub fn clear_day(
        &self,
        community: &Community,
        iterations: usize,
        rng: &mut impl Rng,
    ) -> Result<DayOutcome, SimError> {
        self.clear_day_recorded(community, iterations, rng, &NoopRecorder)
    }

    /// [`Market::clear_day`] with solver telemetry routed into `rec` (see
    /// [`GameEngine::solve_recorded`](nms_solver::GameEngine::solve_recorded)).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when scheduling fails.
    pub fn clear_day_recorded(
        &self,
        community: &Community,
        iterations: usize,
        rng: &mut impl Rng,
        rec: &dyn Recorder,
    ) -> Result<DayOutcome, SimError> {
        // One draw per day: callers that clear days in parallel pre-draw
        // these seeds in sequential order and use `clear_day_seeded`
        // directly, which keeps the parallel run on the same RNG stream.
        let seed: u64 = rng.gen();
        self.clear_day_seeded_recorded(community, iterations, seed, rec)
    }

    /// [`Market::clear_day_recorded`] backed by a cross-day
    /// [`PersistentCache`]: the fixed-point iterations re-solve the game
    /// under near-identical prices day after day, so pure-DP best responses
    /// the cache has already answered skip the re-solve. Hits are
    /// exact-verified (see
    /// [`GameEngine::solve_persistent_recorded`](nms_solver::GameEngine::solve_persistent_recorded)),
    /// so the outcome is bit-identical to [`Market::clear_day_recorded`]
    /// under the same seed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when scheduling fails.
    pub fn clear_day_cached_recorded(
        &self,
        community: &Community,
        iterations: usize,
        rng: &mut impl Rng,
        cache: &mut PersistentCache,
        rec: &dyn Recorder,
    ) -> Result<DayOutcome, SimError> {
        let seed: u64 = rng.gen();
        self.clear_day_seeded_with(community, iterations, seed, Some(cache), rec)
    }

    /// [`Market::clear_day`] with the day's solver seed supplied explicitly
    /// instead of drawn from a shared RNG.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when scheduling fails.
    pub fn clear_day_seeded(
        &self,
        community: &Community,
        iterations: usize,
        seed: u64,
    ) -> Result<DayOutcome, SimError> {
        self.clear_day_seeded_recorded(community, iterations, seed, &NoopRecorder)
    }

    /// [`Market::clear_day_seeded`] with solver telemetry routed into `rec`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when scheduling fails.
    pub fn clear_day_seeded_recorded(
        &self,
        community: &Community,
        iterations: usize,
        seed: u64,
        rec: &dyn Recorder,
    ) -> Result<DayOutcome, SimError> {
        self.clear_day_seeded_with(community, iterations, seed, None, rec)
    }

    fn clear_day_seeded_with(
        &self,
        community: &Community,
        iterations: usize,
        seed: u64,
        mut cache: Option<&mut PersistentCache>,
        rec: &dyn Recorder,
    ) -> Result<DayOutcome, SimError> {
        let horizon = community.horizon();
        let mut price = PriceSignal::flat(horizon, self.utility.config().base_price)?;
        // Common random numbers across iterations keep the fixed point from
        // chasing solver noise.
        let mut response = None;
        for _ in 0..iterations.max(1) {
            let mut child = ChaCha8Rng::seed_from_u64(seed);
            let r = match cache.as_deref_mut() {
                Some(cache) => {
                    self.truth
                        .predict_cached_recorded(community, &price, &mut child, cache, rec)?
                }
                None => self.truth.predict_recorded(community, &price, &mut child, rec)?,
            };
            price = self.utility.design_price(&r.grid_demand);
            response = Some(r);
        }
        // Final response to the final price.
        let mut child = ChaCha8Rng::seed_from_u64(seed);
        let response = match iterations {
            0 => response.expect("at least one iteration ran"),
            _ => match cache {
                Some(cache) => {
                    self.truth
                        .predict_cached_recorded(community, &price, &mut child, cache, rec)?
                }
                None => self.truth.predict_recorded(community, &price, &mut child, rec)?,
            },
        };
        Ok(DayOutcome { price, response })
    }

    /// Bootstraps `days` of (price, generation, demand) history by clearing
    /// consecutive days under the scenario's weather — the training data
    /// for the SVR price predictors.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when any day fails to clear.
    pub fn bootstrap_history(
        &self,
        generator: &CommunityGenerator,
        days: usize,
        rng: &mut impl Rng,
    ) -> Result<PriceHistory, SimError> {
        self.bootstrap_history_recorded(generator, days, rng, &NoopRecorder)
    }

    /// [`Market::bootstrap_history`] with solver telemetry routed into
    /// `rec`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when any day fails to clear.
    pub fn bootstrap_history_recorded(
        &self,
        generator: &CommunityGenerator,
        days: usize,
        rng: &mut impl Rng,
        rec: &dyn Recorder,
    ) -> Result<PriceHistory, SimError> {
        let weather = self.scenario.weather_factors(days);
        let mut prices = Vec::new();
        let mut generation = Vec::new();
        let mut demand = Vec::new();
        for (day, &clearness) in weather.iter().enumerate() {
            let community = generator.community_for_day(day, clearness);
            let outcome = self.clear_day_recorded(&community, 2, rng, rec)?;
            let theta = community.total_generation();
            for h in 0..community.horizon().slots() {
                prices.push(outcome.price.at(h).value());
                generation.push(theta[h]);
                demand.push(outcome.response.load().at(h).value());
            }
        }
        PriceHistory::new(prices, generation, demand, 24).map_err(Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> PaperScenario {
        PaperScenario::small(16, 21)
    }

    #[test]
    fn cleared_price_reflects_demand_shape() {
        let s = scenario();
        let market = Market::new(&s).unwrap();
        let generator = s.generator();
        let community = generator.community_for_day(0, 0.9);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let outcome = market.clear_day(&community, 2, &mut rng).unwrap();
        // Prices exceed the base price wherever demand is positive.
        let base = s.utility.base_price;
        assert!(outcome.price.as_series().iter().any(|&p| p > base));
        // Midday (high PV) should be cheaper than the evening peak.
        let midday: f64 = (11..14).map(|h| outcome.price.at(h).value()).sum();
        let evening: f64 = (18..21).map(|h| outcome.price.at(h).value()).sum();
        assert!(
            midday < evening,
            "midday {midday} should undercut evening {evening}"
        );
    }

    #[test]
    fn sunny_days_have_cheaper_middays_than_cloudy() {
        let s = scenario();
        let market = Market::new(&s).unwrap();
        let generator = s.generator();
        let sunny = generator.community_for_day(0, 1.0);
        let cloudy = generator.community_for_day(0, 0.2);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let sunny_out = market.clear_day(&sunny, 2, &mut rng).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let cloudy_out = market.clear_day(&cloudy, 2, &mut rng).unwrap();
        let midday = |o: &DayOutcome| (11..14).map(|h| o.price.at(h).value()).sum::<f64>();
        assert!(midday(&sunny_out) < midday(&cloudy_out));
    }

    #[test]
    fn bootstrap_history_has_expected_length() {
        let s = scenario();
        let market = Market::new(&s).unwrap();
        let generator = s.generator();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let history = market.bootstrap_history(&generator, 4, &mut rng).unwrap();
        assert_eq!(history.len(), 4 * 24);
        assert!(history.prices().iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn market_rejects_invalid_scenario() {
        let mut s = scenario();
        s.customers = 0;
        assert!(Market::new(&s).is_err());
    }
}
