//! Daily weather (cloud cover) model for PV output.
//!
//! The paper assumes PV generation is "approximately known in advance
//! through prediction" but gives no irradiance data; we substitute a seeded
//! AR(1) clearness index so that consecutive days are correlated yet
//! distinct — exactly the property that separates the net-metering-aware
//! price predictor (which sees the generation forecast) from the naive one
//! (which can only extrapolate yesterday's prices).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use nms_types::ValidateError;

/// AR(1) clearness-index model: `k_d = μ + φ (k_{d−1} − μ) + σ ε_d`,
/// clamped to `[min_clearness, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeatherModel {
    /// Long-run mean clearness (0–1).
    pub mean: f64,
    /// Day-to-day persistence `φ ∈ [0, 1)`.
    pub persistence: f64,
    /// Innovation scale `σ ≥ 0`.
    pub volatility: f64,
    /// Floor on clearness (overcast days still scatter some light).
    pub min_clearness: f64,
}

impl WeatherModel {
    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] for parameters outside their ranges.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if !(0.0..=1.0).contains(&self.mean) {
            return Err(ValidateError::new("mean clearness must be in [0, 1]"));
        }
        if !(0.0..1.0).contains(&self.persistence) {
            return Err(ValidateError::new("persistence must be in [0, 1)"));
        }
        if !(self.volatility >= 0.0 && self.volatility.is_finite()) {
            return Err(ValidateError::new("volatility must be non-negative"));
        }
        if !(0.0..=1.0).contains(&self.min_clearness) || self.min_clearness > self.mean {
            return Err(ValidateError::new("min clearness must be in [0, mean]"));
        }
        Ok(())
    }

    /// Generates `days` daily clearness factors, deterministically from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid model; call [`validate`](Self::validate) first
    /// for user-supplied parameters.
    pub fn daily_factors(&self, days: usize, seed: u64) -> Vec<f64> {
        self.validate().expect("invalid weather model");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut factors = Vec::with_capacity(days);
        let mut k = self.mean;
        for _ in 0..days {
            // Uniform innovation is plenty here; clamping handles tails.
            let eps: f64 = rng.gen_range(-1.0..=1.0);
            k = self.mean + self.persistence * (k - self.mean) + self.volatility * eps;
            k = k.clamp(self.min_clearness, 1.0);
            factors.push(k);
        }
        factors
    }
}

impl Default for WeatherModel {
    fn default() -> Self {
        Self {
            mean: 0.75,
            persistence: 0.35,
            volatility: 0.35,
            min_clearness: 0.15,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(WeatherModel::default().validate().is_ok());
        assert!(WeatherModel {
            mean: 1.5,
            ..WeatherModel::default()
        }
        .validate()
        .is_err());
        assert!(WeatherModel {
            persistence: 1.0,
            ..WeatherModel::default()
        }
        .validate()
        .is_err());
        assert!(WeatherModel {
            min_clearness: 0.9,
            ..WeatherModel::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn factors_in_range_and_deterministic() {
        let model = WeatherModel::default();
        let a = model.daily_factors(30, 7);
        let b = model.daily_factors(30, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
        assert!(a.iter().all(|&k| (0.15..=1.0).contains(&k)));
        // Different seeds give different weather.
        let c = model.daily_factors(30, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn weather_actually_varies() {
        let factors = WeatherModel::default().daily_factors(30, 3);
        let mean: f64 = factors.iter().sum::<f64>() / 30.0;
        let var: f64 = factors.iter().map(|k| (k - mean).powi(2)).sum::<f64>() / 30.0;
        assert!(var > 1e-3, "weather should vary, var = {var}");
    }

    #[test]
    fn zero_volatility_converges_to_mean() {
        let model = WeatherModel {
            volatility: 0.0,
            ..WeatherModel::default()
        };
        let factors = model.daily_factors(5, 1);
        assert!(factors.iter().all(|&k| (k - model.mean).abs() < 1e-9));
    }
}
