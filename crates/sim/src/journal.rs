//! Crash-safe run journal for long-horizon detection runs (tentpole 1 of
//! the supervision layer).
//!
//! A [`RunJournal`] is an append-only JSONL file: the first line is a
//! [`JournalHeader`] binding the journal to one `(seed, scenario, config)`
//! triple, and every following line is one completed detection day's
//! [`DayRecord`]. Each line carries an FNV-1a 64 hash of its body, so a
//! torn write cannot masquerade as a valid record.
//!
//! Durability model:
//!
//! - appends are true O(1): each completed day is one `write` of a single
//!   sealed line to a file opened in append mode, synced before the append
//!   reports success — prior records are never rewritten. A kill mid-write
//!   can only tear the final line, which the loader drops;
//! - the atomic `.tmp`-and-rename rewrite is reserved for the two
//!   occasions the file's *prefix* must change: writing the header at
//!   [`RunJournal::create`], and compacting a dropped torn tail away at
//!   [`RunJournal::reopen`] so it cannot become an interior line once
//!   appends resume;
//! - on load, a truncated or hash-corrupt **final** line is dropped
//!   silently (the day it described simply re-runs), while a corrupt
//!   **interior** line is a typed [`JournalError::Corrupt`] — that file
//!   has lost history and must not be resumed from;
//! - a header that does not match the resuming run's seed, scenario, or
//!   configuration is a typed [`JournalError::HeaderMismatch`].
//!
//! The journal stores *transcripts*, not model state: beliefs, compromise
//! sets, tracker counters, and the rows rolled into the price history.
//! Resume replays the deterministic training epoch from its seeded stream
//! and then re-applies the transcripts, so no RNG state, SVR model, or
//! POMDP policy ever needs to be serialized.
//!
//! All I/O goes through an injectable [`Vfs`] (see `nms-vfs`): production
//! callers use the [`StdVfs`] convenience constructors, while crash-point
//! sweeps drive the `*_on` variants with a fault-injecting VFS. Appends
//! follow the journal degradation policy — roll the partial write back,
//! retry with linear backoff under a [`StoragePolicy`], then surface a
//! hard [`JournalError::Io`]; a rollback that itself fails is remembered
//! (`pending_rollback`) and re-attempted before any future append, so a
//! torn fragment can never become a corrupt *interior* line.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use nms_core::{MeterQuarantine, QuarantineEvent};
use nms_types::{DayHealth, RunHealth};
use nms_vfs::{tmp_sibling, StdVfs, StoragePolicy, StorageReport, Vfs, VfsFile};

/// Journal format version; bump on incompatible record changes.
pub const JOURNAL_VERSION: u32 = 1;

/// Why reading or writing a journal failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum JournalError {
    /// Filesystem failure.
    Io(io::Error),
    /// An interior record failed its hash or did not parse; the journal
    /// has lost history and cannot be trusted.
    Corrupt {
        /// 1-based line number of the bad record.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// The header does not match the run trying to resume.
    HeaderMismatch {
        /// What differed.
        detail: String,
    },
    /// Day records are not a contiguous `0..n` prefix.
    Gap {
        /// The day index the resume expected next.
        expected: usize,
        /// The day index the journal recorded.
        found: usize,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(err) => write!(f, "journal I/O failure: {err}"),
            Self::Corrupt { line, detail } => {
                write!(f, "journal corrupt at line {line}: {detail}")
            }
            Self::HeaderMismatch { detail } => {
                write!(f, "journal belongs to a different run: {detail}")
            }
            Self::Gap { expected, found } => {
                write!(f, "journal day records have a gap: expected day {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(err: io::Error) -> Self {
        Self::Io(err)
    }
}

/// FNV-1a 64-bit hash — small, dependency-free, and stable across
/// platforms, which is all a torn-write detector needs (this is an
/// integrity check, not an authenticity check).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One line on disk: the record JSON as an opaque string plus its hash.
/// Keeping the body as a string makes the hashed bytes exact and lets the
/// loader distinguish "line is torn" from "record shape changed".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct JournalLine {
    hash: String,
    body: String,
}

impl JournalLine {
    fn seal(body: String) -> Self {
        Self {
            hash: format!("{:016x}", fnv1a64(body.as_bytes())),
            body,
        }
    }

    fn verify(&self) -> Result<&str, String> {
        let expected = format!("{:016x}", fnv1a64(self.body.as_bytes()));
        if self.hash == expected {
            Ok(&self.body)
        } else {
            Err(format!(
                "integrity hash {} does not match body hash {expected}",
                self.hash
            ))
        }
    }
}

/// First line of every journal: identifies the run the file belongs to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Journal format version.
    pub version: u32,
    /// The supervised run's base seed.
    pub seed: u64,
    /// Detection days the run will simulate.
    pub detection_days: usize,
    /// Fleet size, for early shape checks.
    pub fleet: usize,
    /// Fingerprint of the scenario (FNV-1a of its debug form).
    pub scenario_fingerprint: u64,
    /// Fingerprint of the run configuration (FNV-1a of its debug form).
    pub config_fingerprint: u64,
}

impl JournalHeader {
    /// Checks that `self` (loaded from disk) matches the header the
    /// resuming run would write.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::HeaderMismatch`] naming the first field
    /// that differs.
    pub fn ensure_matches(&self, expected: &Self) -> Result<(), JournalError> {
        let mismatch = |detail: String| Err(JournalError::HeaderMismatch { detail });
        if self.version != expected.version {
            return mismatch(format!(
                "journal version {} vs supported {}",
                self.version, expected.version
            ));
        }
        if self.seed != expected.seed {
            return mismatch(format!("seed {} vs {}", self.seed, expected.seed));
        }
        if self.detection_days != expected.detection_days {
            return mismatch(format!(
                "detection_days {} vs {}",
                self.detection_days, expected.detection_days
            ));
        }
        if self.fleet != expected.fleet {
            return mismatch(format!("fleet {} vs {}", self.fleet, expected.fleet));
        }
        if self.scenario_fingerprint != expected.scenario_fingerprint {
            return mismatch("scenario fingerprint differs".into());
        }
        if self.config_fingerprint != expected.config_fingerprint {
            return mismatch("run configuration fingerprint differs".into());
        }
        Ok(())
    }
}

/// One fix dispatch inside a day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixRecord {
    /// Global detection slot of the dispatch.
    pub slot: usize,
    /// Meters actually repaired.
    pub repaired: usize,
}

/// One (price, generation, demand) row rolled into the price history at
/// the end of a day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistoryRow {
    /// Cleared guideline price for the slot.
    pub price: f64,
    /// Community PV generation for the slot.
    pub generation: f64,
    /// Realized community consumption for the slot.
    pub demand: f64,
}

/// Everything one completed detection day contributed to the run — enough
/// to replay the day without re-simulating it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayRecord {
    /// Day offset within the detection epoch (0-based, contiguous).
    pub day: usize,
    /// True hacked bucket per slot.
    pub true_buckets: Vec<usize>,
    /// Observed bucket per slot (empty without a detector).
    pub observed_buckets: Vec<usize>,
    /// Realized community grid demand per slot.
    pub realized_demand: Vec<f64>,
    /// Fix dispatches, in slot order.
    pub fixes: Vec<FixRecord>,
    /// Rows appended to the price history at day end.
    pub history_rows: Vec<HistoryRow>,
    /// Compromised meter indices at day end.
    pub compromised: Vec<usize>,
    /// POMDP belief at day end (`None` without a detector).
    pub belief: Option<Vec<f64>>,
    /// Cumulative degradation ledger after this day.
    pub health: RunHealth,
    /// This day's slice of the ledger plus the quarantine census.
    pub day_health: DayHealth,
    /// Quarantine tracker state at day end (`None` without fault
    /// injection).
    pub quarantine: Option<MeterQuarantine>,
    /// Breaker transitions emitted this day.
    pub events: Vec<QuarantineEvent>,
}

/// What [`RunJournal::load`] found on disk.
#[derive(Debug)]
pub struct LoadedJournal {
    /// The header, when the first line was intact.
    pub header: Option<JournalHeader>,
    /// Every intact day record, in file order.
    pub days: Vec<DayRecord>,
    /// `true` when a torn/corrupt final line was dropped.
    pub dropped_tail: bool,
}

/// The append-only on-disk journal of one supervised run.
pub struct RunJournal {
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
    /// Append-mode handle; every day record is one `write` to it.
    file: Box<dyn VfsFile>,
    /// Day records persisted so far (excluding the header).
    days: usize,
    /// Append degradation policy: rollback + retry-with-backoff, then a
    /// hard error.
    policy: StoragePolicy,
    /// Offset of a partial append whose `set_len` rollback failed; it must
    /// be rolled back successfully before any future bytes are appended.
    pending_rollback: Option<u64>,
}

impl fmt::Debug for RunJournal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunJournal")
            .field("path", &self.path)
            .field("days", &self.days)
            .field("policy", &self.policy)
            .field("pending_rollback", &self.pending_rollback)
            .finish_non_exhaustive()
    }
}

impl RunJournal {
    /// Starts a fresh journal at `path` on the real filesystem, truncating
    /// whatever was there.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the file cannot be written.
    pub fn create(path: impl AsRef<Path>, header: &JournalHeader) -> Result<Self, JournalError> {
        Self::create_on(Arc::new(StdVfs), path.as_ref(), header)
    }

    /// Starts a fresh journal at `path` on `vfs`, truncating whatever was
    /// there.
    ///
    /// The header is the one write that must replace the file's prefix, so
    /// it goes through the atomic `.tmp`-and-rename path; the handle then
    /// reopens in append mode for the O(1) day appends.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the file cannot be written.
    pub fn create_on(
        vfs: Arc<dyn Vfs>,
        path: &Path,
        header: &JournalHeader,
    ) -> Result<Self, JournalError> {
        let path = path.to_path_buf();
        let body = serde_json::to_string(header)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        let line = serde_json::to_string(&JournalLine::seal(body))
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        atomic_rewrite(vfs.as_ref(), &path, &[line])?;
        let file = vfs.open_append(&path)?;
        Ok(Self {
            vfs,
            path,
            file,
            days: 0,
            policy: StoragePolicy::default(),
            pending_rollback: None,
        })
    }

    /// Opens an existing journal on the real filesystem for appending.
    /// See [`RunJournal::reopen_on`].
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the file cannot be read, or any
    /// loader error from re-reading it.
    pub fn reopen(path: impl AsRef<Path>) -> Result<Self, JournalError> {
        Self::reopen_on(Arc::new(StdVfs), path.as_ref())
    }

    /// Opens an existing journal on `vfs` for appending, resuming after
    /// `days` already-loaded records. Use [`RunJournal::load`] first to
    /// read and verify the records.
    ///
    /// A torn final line is dropped exactly as [`RunJournal::load`] drops
    /// it — but here the file is also compacted (atomically) so the torn
    /// bytes cannot end up as a corrupt *interior* line once appending
    /// resumes. An intact file is left byte-for-byte untouched.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the file cannot be read, or any
    /// loader error from re-reading it.
    pub fn reopen_on(vfs: Arc<dyn Vfs>, path: &Path) -> Result<Self, JournalError> {
        let path = path.to_path_buf();
        let content = vfs.read_to_string(&path)?;
        let mut lines = Vec::new();
        let raw: Vec<&str> = content.lines().filter(|l| !l.trim().is_empty()).collect();
        for (index, raw_line) in raw.iter().enumerate() {
            if Self::verify_line(raw_line, index).is_ok() {
                lines.push((*raw_line).to_string());
            } else if index + 1 == raw.len() {
                // Torn tail: drop it; the day re-runs.
                break;
            } else {
                return Err(JournalError::Corrupt {
                    line: index + 1,
                    detail: "interior record failed verification".into(),
                });
            }
        }
        if lines.len() != raw.len() {
            atomic_rewrite(vfs.as_ref(), &path, &lines)?;
        }
        let file = vfs.open_append(&path)?;
        Ok(Self {
            days: lines.len().saturating_sub(1),
            vfs,
            path,
            file,
            policy: StoragePolicy::default(),
            pending_rollback: None,
        })
    }

    /// Replaces the append degradation policy (defaults to
    /// [`StoragePolicy::default`]: 3 attempts, 2 ms linear backoff).
    #[must_use]
    pub fn with_policy(mut self, policy: StoragePolicy) -> Self {
        self.policy = policy;
        self
    }

    fn verify_line(raw: &str, index: usize) -> Result<String, String> {
        let line: JournalLine =
            serde_json::from_str(raw).map_err(|err| format!("unparsable line: {err}"))?;
        let body = line.verify()?;
        // Shape-check the body so a sealed-but-wrong record is caught here.
        if index == 0 {
            serde_json::from_str::<JournalHeader>(body)
                .map_err(|err| format!("bad header: {err}"))?;
        } else {
            serde_json::from_str::<DayRecord>(body)
                .map_err(|err| format!("bad day record: {err}"))?;
        }
        Ok(body.to_string())
    }

    /// Reads and verifies a journal file on the real filesystem. See
    /// [`RunJournal::load_on`].
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Corrupt`] for a bad interior line and
    /// [`JournalError::Io`] for filesystem failures other than the file
    /// not existing.
    pub fn load(path: impl AsRef<Path>) -> Result<LoadedJournal, JournalError> {
        Self::load_on(&StdVfs, path.as_ref())
    }

    /// Reads and verifies a journal file on `vfs`.
    ///
    /// A torn or hash-corrupt **final** line is dropped (`dropped_tail`);
    /// a missing file loads as an empty journal with no header.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Corrupt`] for a bad interior line and
    /// [`JournalError::Io`] for filesystem failures other than the file
    /// not existing.
    pub fn load_on(vfs: &dyn Vfs, path: &Path) -> Result<LoadedJournal, JournalError> {
        let content = match vfs.read_to_string(path) {
            Ok(content) => content,
            Err(err) if err.kind() == io::ErrorKind::NotFound => {
                return Ok(LoadedJournal {
                    header: None,
                    days: Vec::new(),
                    dropped_tail: false,
                });
            }
            Err(err) => return Err(err.into()),
        };
        let raw: Vec<&str> = content.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut header = None;
        let mut days = Vec::new();
        let mut dropped_tail = false;
        for (index, raw_line) in raw.iter().enumerate() {
            match Self::verify_line(raw_line, index) {
                Ok(body) => {
                    if index == 0 {
                        header = Some(serde_json::from_str::<JournalHeader>(&body).map_err(
                            |err| JournalError::Corrupt {
                                line: 1,
                                detail: err.to_string(),
                            },
                        )?);
                    } else {
                        days.push(serde_json::from_str::<DayRecord>(&body).map_err(|err| {
                            JournalError::Corrupt {
                                line: index + 1,
                                detail: err.to_string(),
                            }
                        })?);
                    }
                }
                Err(detail) => {
                    if index + 1 == raw.len() {
                        dropped_tail = true;
                        break;
                    }
                    return Err(JournalError::Corrupt {
                        line: index + 1,
                        detail,
                    });
                }
            }
        }
        Ok(LoadedJournal {
            header,
            days,
            dropped_tail,
        })
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Days currently persisted (excluding the header).
    pub fn days_recorded(&self) -> usize {
        self.days
    }

    /// Appends one completed day: a single sealed-line write to the
    /// append-mode handle, synced before returning — O(1) in the number of
    /// days already journaled.
    ///
    /// Degradation policy: a failed attempt is rolled back with `set_len`
    /// and retried with linear backoff up to the journal's
    /// [`StoragePolicy`]; the returned [`StorageReport`] says how many
    /// attempts the append consumed so supervision can tick the retries
    /// into its storage-fault ledger. If a rollback itself fails, the
    /// append stops retrying (appending over a torn fragment would corrupt
    /// an interior line) and the offset is remembered; the next
    /// `append_day` re-attempts that rollback before writing anything new.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] with the last attempt's error once the
    /// policy is exhausted. Any leftover partial bytes are a torn *final*
    /// line, which the loader already drops.
    pub fn append_day(&mut self, record: &DayRecord) -> Result<StorageReport, JournalError> {
        let body = serde_json::to_string(record)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        let mut line = serde_json::to_string(&JournalLine::seal(body))
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        line.push('\n');

        // A previous append left a torn fragment it could not roll back:
        // clear it first, or refuse to stack bytes on top of it.
        if let Some(offset) = self.pending_rollback {
            self.file.set_len(offset)?;
            self.pending_rollback = None;
        }

        let attempts = self.policy.max_attempts.max(1);
        let mut last: Option<io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let pause = self.policy.backoff.saturating_mul(attempt as u32);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
            let offset = self.file.len()?;
            let written = self
                .file
                .write_all(line.as_bytes())
                .and_then(|()| self.file.sync_data());
            match written {
                Ok(()) => {
                    self.days += 1;
                    return Ok(StorageReport {
                        attempts: attempt + 1,
                    });
                }
                Err(err) => {
                    // Roll the partial write back so the retry appends to a
                    // clean offset; if the rollback fails too, remember the
                    // offset and bail — the leftover is a torn tail, which
                    // recovery tolerates, but only while it stays *final*.
                    if self.file.set_len(offset).is_err() {
                        self.pending_rollback = Some(offset);
                        return Err(err.into());
                    }
                    last = Some(err);
                }
            }
        }
        Err(last
            .unwrap_or_else(|| io::Error::other("journal append made no attempts"))
            .into())
    }

    /// The VFS this journal writes through (for reloading from the same
    /// storage the appends landed on).
    pub fn vfs(&self) -> Arc<dyn Vfs> {
        Arc::clone(&self.vfs)
    }
}

/// Atomic whole-file write: a `.tmp` sibling renamed over the journal, so
/// a kill leaves either the old file or the new one. Used only where the
/// file's prefix changes — header creation and torn-tail compaction —
/// never on the per-day append path.
fn atomic_rewrite(vfs: &dyn Vfs, path: &Path, lines: &[String]) -> Result<(), JournalError> {
    let tmp = tmp_sibling(path);
    let mut content = lines.join("\n");
    content.push('\n');
    vfs.write(&tmp, content.as_bytes())?;
    vfs.rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn header() -> JournalHeader {
        JournalHeader {
            version: JOURNAL_VERSION,
            seed: 7,
            detection_days: 3,
            fleet: 10,
            scenario_fingerprint: 1,
            config_fingerprint: 2,
        }
    }

    fn day(day: usize) -> DayRecord {
        DayRecord {
            day,
            true_buckets: vec![0, 1],
            observed_buckets: vec![0, 0],
            realized_demand: vec![1.5, 2.5],
            fixes: vec![FixRecord {
                slot: day * 2,
                repaired: 1,
            }],
            history_rows: vec![HistoryRow {
                price: 10.0,
                generation: 0.5,
                demand: 2.0,
            }],
            compromised: vec![3],
            belief: Some(vec![0.25, 0.75]),
            health: RunHealth::new(),
            day_health: DayHealth::default(),
            quarantine: None,
            events: Vec::new(),
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("nms-journal-test-{}-{name}.jsonl", std::process::id()));
        let _ = fs::remove_file(&path);
        path
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn write_load_roundtrip() {
        let path = temp_path("roundtrip");
        let mut journal = RunJournal::create(&path, &header()).unwrap();
        journal.append_day(&day(0)).unwrap();
        journal.append_day(&day(1)).unwrap();
        assert_eq!(journal.days_recorded(), 2);

        let loaded = RunJournal::load(&path).unwrap();
        assert_eq!(loaded.header.unwrap(), header());
        assert_eq!(loaded.days, vec![day(0), day(1)]);
        assert!(!loaded.dropped_tail);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn truncated_final_line_is_dropped_not_fatal() {
        let path = temp_path("truncated");
        let mut journal = RunJournal::create(&path, &header()).unwrap();
        journal.append_day(&day(0)).unwrap();
        journal.append_day(&day(1)).unwrap();
        // Tear the last line mid-record, as a crash mid-write would.
        let content = fs::read_to_string(&path).unwrap();
        let torn = &content[..content.len() - 25];
        fs::write(&path, torn).unwrap();

        let loaded = RunJournal::load(&path).unwrap();
        assert!(loaded.dropped_tail);
        assert_eq!(loaded.days, vec![day(0)]);

        // Reopen for append drops the same tail and keeps appending.
        let mut reopened = RunJournal::reopen(&path).unwrap();
        assert_eq!(reopened.days_recorded(), 1);
        reopened.append_day(&day(1)).unwrap();
        let reloaded = RunJournal::load(&path).unwrap();
        assert_eq!(reloaded.days.len(), 2);
        assert!(!reloaded.dropped_tail);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn append_extends_the_file_in_place() {
        let path = temp_path("in-place");
        let mut journal = RunJournal::create(&path, &header()).unwrap();
        journal.append_day(&day(0)).unwrap();
        let before = fs::read_to_string(&path).unwrap();
        #[cfg(unix)]
        let inode_before = {
            use std::os::unix::fs::MetadataExt;
            fs::metadata(&path).unwrap().ino()
        };
        journal.append_day(&day(1)).unwrap();
        let after = fs::read_to_string(&path).unwrap();
        // Prior records are never rewritten: the old file is a byte prefix
        // of the new one, and (on unix) the inode never changes — appends
        // go through the open handle, not a tmp-and-rename.
        assert!(after.starts_with(&before));
        assert_eq!(after.lines().count(), before.lines().count() + 1);
        #[cfg(unix)]
        {
            use std::os::unix::fs::MetadataExt;
            assert_eq!(fs::metadata(&path).unwrap().ino(), inode_before);
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn reopen_compacts_a_torn_tail_before_appending() {
        let path = temp_path("compact");
        let mut journal = RunJournal::create(&path, &header()).unwrap();
        journal.append_day(&day(0)).unwrap();
        journal.append_day(&day(1)).unwrap();
        let intact = fs::read_to_string(&path).unwrap();
        let last_len = intact.lines().last().unwrap().len();
        fs::write(&path, &intact[..intact.len() - last_len / 2]).unwrap();

        let reopened = RunJournal::reopen(&path).unwrap();
        assert_eq!(reopened.days_recorded(), 1);
        // The torn bytes are gone from disk immediately, not just ignored:
        // every line of the compacted file verifies.
        let compacted = fs::read_to_string(&path).unwrap();
        assert_eq!(compacted.lines().count(), 2);
        let loaded = RunJournal::load(&path).unwrap();
        assert!(!loaded.dropped_tail);
        assert_eq!(loaded.days, vec![day(0)]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_interior_line_is_a_typed_error() {
        let path = temp_path("interior");
        let mut journal = RunJournal::create(&path, &header()).unwrap();
        journal.append_day(&day(0)).unwrap();
        journal.append_day(&day(1)).unwrap();
        // Flip bytes inside the *first day* line (line 2 of 3).
        let content = fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = content.lines().map(str::to_string).collect();
        lines[1] = lines[1].replace("true_buckets", "drue_buckets");
        fs::write(&path, lines.join("\n")).unwrap();

        match RunJournal::load(&path) {
            Err(JournalError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert!(RunJournal::reopen(&path).is_err());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn header_mismatch_is_detected() {
        let good = header();
        let mut stale = header();
        stale.seed = 8;
        match stale.ensure_matches(&good) {
            Err(JournalError::HeaderMismatch { detail }) => {
                assert!(detail.contains("seed"), "{detail}");
            }
            other => panic!("expected HeaderMismatch, got {other:?}"),
        }
        assert!(good.ensure_matches(&header()).is_ok());
    }

    #[test]
    fn missing_file_loads_empty() {
        let path = temp_path("missing");
        let loaded = RunJournal::load(&path).unwrap();
        assert!(loaded.header.is_none());
        assert!(loaded.days.is_empty());
        assert!(!loaded.dropped_tail);
    }
}
