//! Synthetic community generation (the paper's 500-customer setup).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use nms_pricing::{NetMeteringTariff, UtilityConfig};
use nms_smarthome::{
    catalog_appliance, clear_sky_profile, Battery, Community, Customer, PvPanel, APPLIANCE_PRESETS,
};
use nms_solver::GameConfig;
use nms_types::{ApplianceId, CustomerId, Horizon, Kw, Kwh, ValidateError};

use crate::WeatherModel;

/// The full experiment scenario: community shape, tariff, utility pricing
/// rule, weather, game-solver settings, and the master seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperScenario {
    /// Number of customers `N` (the paper uses 500).
    pub customers: usize,
    /// Fraction of homes with a PV panel.
    pub pv_ownership: f64,
    /// Nameplate rating range (kW) for installed panels.
    pub pv_rating: (f64, f64),
    /// Fraction of homes with a battery.
    pub battery_ownership: f64,
    /// Capacity range (kWh) for installed batteries.
    pub battery_capacity: (f64, f64),
    /// Range of per-home mean inflexible load (kWh per slot): always-on
    /// and manually operated devices that no scheduler moves.
    pub base_load_mean: (f64, f64),
    /// Net-metering tariff.
    pub tariff: NetMeteringTariff,
    /// The utility's price-design rule.
    pub utility: UtilityConfig,
    /// Weather model for daily PV clearness.
    pub weather: WeatherModel,
    /// Game-solver settings used for ground-truth scheduling.
    pub game: GameConfig,
    /// Days of history bootstrapped before detection experiments.
    pub training_days: usize,
    /// Master seed: every random draw in the scenario derives from it.
    pub seed: u64,
}

impl PaperScenario {
    /// The paper's evaluation scale: 500 customers.
    pub fn paper(seed: u64) -> Self {
        Self {
            customers: 500,
            ..Self::small(500, seed)
        }
    }

    /// A scaled-down scenario for tests and quick runs.
    pub fn small(customers: usize, seed: u64) -> Self {
        Self {
            customers,
            pv_ownership: 0.35,
            pv_rating: (1.0, 2.5),
            battery_ownership: 0.6,
            battery_capacity: (3.0, 8.0),
            base_load_mean: (0.8, 1.3),
            tariff: NetMeteringTariff::default(),
            utility: UtilityConfig::default(),
            weather: WeatherModel::default(),
            game: GameConfig::fast(),
            training_days: 8,
            seed,
        }
    }

    /// Validates the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] for an empty community, ownership fractions
    /// outside `[0, 1]`, inverted ranges, or invalid sub-configurations.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.customers == 0 {
            return Err(ValidateError::new("need at least one customer"));
        }
        for (name, p) in [
            ("pv_ownership", self.pv_ownership),
            ("battery_ownership", self.battery_ownership),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(ValidateError::new(format!("{name} must be in [0, 1]")));
            }
        }
        for (name, (lo, hi)) in [
            ("pv_rating", self.pv_rating),
            ("battery_capacity", self.battery_capacity),
            ("base_load_mean", self.base_load_mean),
        ] {
            if !(lo.is_finite() && hi.is_finite() && 0.0 < lo && lo <= hi) {
                return Err(ValidateError::new(format!(
                    "{name} range ({lo}, {hi}) invalid"
                )));
            }
        }
        if self.training_days < 3 {
            return Err(ValidateError::new(
                "need at least three training days for the SVR lags",
            ));
        }
        self.utility.validate()?;
        self.weather.validate()?;
        self.game.validate()?;
        Ok(())
    }

    /// The generator bound to this scenario.
    pub fn generator(&self) -> CommunityGenerator {
        CommunityGenerator {
            scenario: self.clone(),
        }
    }

    /// The scenario's daily weather factors for `days` days.
    pub fn weather_factors(&self, days: usize) -> Vec<f64> {
        self.weather.daily_factors(days, self.seed ^ 0x77ea7e42)
    }
}

/// Stable per-customer equipment (fixed across days) plus per-day task
/// sampling.
#[derive(Debug, Clone)]
pub struct CommunityGenerator {
    scenario: PaperScenario,
}

impl CommunityGenerator {
    /// The bound scenario.
    #[inline]
    pub fn scenario(&self) -> &PaperScenario {
        &self.scenario
    }

    /// Generates the community for `day`, with PV output scaled by
    /// `weather` (clearness in `[0, 1]`).
    ///
    /// Equipment (PV rating, battery size, appliance ownership) is stable
    /// across days — it derives from `(seed, customer)` only — while task
    /// energies and windows are re-sampled per day.
    ///
    /// # Panics
    ///
    /// Panics on an invalid scenario; call [`PaperScenario::validate`]
    /// first for user-supplied scenarios.
    pub fn community_for_day(&self, day: usize, weather: f64) -> Community {
        let s = &self.scenario;
        s.validate().expect("invalid scenario");
        let horizon = Horizon::hourly_day();
        let customers: Vec<Customer> = (0..s.customers)
            .map(|i| self.customer_for_day(i, day, weather, horizon))
            .collect();
        Community::new(horizon, customers).expect("generated customers are dense and valid")
    }

    fn customer_for_day(
        &self,
        index: usize,
        day: usize,
        weather: f64,
        horizon: Horizon,
    ) -> Customer {
        let s = &self.scenario;
        // Equipment RNG: stable across days.
        let mut equipment_rng =
            ChaCha8Rng::seed_from_u64(s.seed ^ (index as u64).wrapping_mul(0x9e3779b97f4a7c15));
        // Task RNG: varies per day.
        let mut task_rng = ChaCha8Rng::seed_from_u64(
            s.seed
                ^ (index as u64).wrapping_mul(0x9e3779b97f4a7c15)
                ^ (day as u64 + 1).wrapping_mul(0xc2b2ae3d27d4eb4f),
        );

        let mut builder = Customer::builder(CustomerId::new(index), horizon);

        let mut appliance_id = 0usize;
        for preset in APPLIANCE_PRESETS {
            if equipment_rng.gen_bool(preset.ownership) {
                let appliance = catalog_appliance(
                    preset,
                    ApplianceId::new(appliance_id),
                    horizon,
                    &mut task_rng,
                );
                builder = builder.appliance(appliance);
                appliance_id += 1;
            }
        }

        if equipment_rng.gen_bool(s.pv_ownership) {
            let rating = Kw::new(equipment_rng.gen_range(s.pv_rating.0..=s.pv_rating.1));
            let profile = clear_sky_profile(horizon, rating).scaled(weather.clamp(0.0, 1.0));
            builder = builder.pv(PvPanel::new(rating, profile).expect("scaled profile under cap"));
        }
        if equipment_rng.gen_bool(s.battery_ownership) {
            let capacity =
                Kwh::new(equipment_rng.gen_range(s.battery_capacity.0..=s.battery_capacity.1));
            // Start half charged; charge/discharge at most ~0.15C per hour
            // (the rate of typical residential packs).
            let battery = Battery::new(capacity, capacity * 0.5)
                .expect("capacity range validated")
                .with_throughput_limit(capacity * 0.15)
                .expect("limit is non-negative");
            builder = builder.battery(battery);
        }

        let mean = equipment_rng.gen_range(s.base_load_mean.0..=s.base_load_mean.1);
        builder = builder.base_load(base_load_shape(horizon, mean, &mut task_rng));

        builder.build().expect("catalog appliances are schedulable")
    }
}

/// The standard residential inflexible-load shape: overnight trough,
/// morning shoulder, evening peak, scaled to a per-slot `mean` with ±10%
/// per-slot jitter.
fn base_load_shape(horizon: Horizon, mean: f64, rng: &mut impl Rng) -> nms_types::TimeSeries<f64> {
    // Relative hourly weights, averaging 1.0.
    const SHAPE: [f64; 24] = [
        0.62, 0.58, 0.55, 0.53, 0.55, 0.62, 0.88, 1.05, 1.00, 0.94, 0.92, 0.93, 0.95, 0.98, 1.05,
        1.20, 1.42, 1.45, 1.45, 1.42, 1.30, 1.12, 0.95, 0.75,
    ];
    let scale = mean / (SHAPE.iter().sum::<f64>() / 24.0);
    nms_types::TimeSeries::from_fn(horizon, |slot| {
        let hour = horizon.hour_of_day(slot).floor() as usize % 24;
        let jitter = rng.gen_range(0.9..=1.1);
        SHAPE[hour] * scale * jitter * horizon.slot_hours()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(PaperScenario::small(10, 1).validate().is_ok());
        assert!(PaperScenario::paper(1).validate().is_ok());
        let mut s = PaperScenario::small(0, 1);
        assert!(s.validate().is_err());
        s = PaperScenario::small(10, 1);
        s.pv_ownership = 1.5;
        assert!(s.validate().is_err());
        s = PaperScenario::small(10, 1);
        s.pv_rating = (5.0, 2.0);
        assert!(s.validate().is_err());
        s = PaperScenario::small(10, 1);
        s.training_days = 1;
        assert!(s.validate().is_err());
    }

    #[test]
    fn equipment_stable_tasks_vary() {
        let generator = PaperScenario::small(12, 9).generator();
        let day0 = generator.community_for_day(0, 0.8);
        let day1 = generator.community_for_day(1, 0.8);
        for (a, b) in day0.iter().zip(day1.iter()) {
            // Same equipment.
            assert_eq!(a.pv().rating(), b.pv().rating());
            assert_eq!(a.battery().capacity(), b.battery().capacity());
            assert_eq!(a.appliances().len(), b.appliances().len());
        }
        // But at least one task differs somewhere.
        let differs = day0.iter().zip(day1.iter()).any(|(a, b)| {
            a.appliances()
                .iter()
                .zip(b.appliances())
                .any(|(x, y)| x.task() != y.task())
        });
        assert!(differs, "tasks should be re-sampled per day");
    }

    #[test]
    fn weather_scales_generation() {
        let generator = PaperScenario::small(12, 9).generator();
        let sunny = generator.community_for_day(0, 1.0);
        let cloudy = generator.community_for_day(0, 0.3);
        let sunny_total: f64 = sunny.total_generation().total();
        let cloudy_total: f64 = cloudy.total_generation().total();
        assert!(sunny_total > cloudy_total * 2.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let generator = PaperScenario::small(8, 5).generator();
        assert_eq!(
            generator.community_for_day(3, 0.7),
            generator.community_for_day(3, 0.7)
        );
    }

    #[test]
    fn ownership_fractions_roughly_respected() {
        let scenario = PaperScenario::small(200, 11);
        let generator = scenario.generator();
        let community = generator.community_for_day(0, 1.0);
        let with_pv = community.iter().filter(|c| c.pv().is_generating()).count();
        let with_battery = community.iter().filter(|c| c.battery().is_usable()).count();
        let pv_frac = with_pv as f64 / 200.0;
        let battery_frac = with_battery as f64 / 200.0;
        assert!(
            (pv_frac - scenario.pv_ownership).abs() < 0.12,
            "pv {pv_frac}"
        );
        assert!(
            (battery_frac - scenario.battery_ownership).abs() < 0.12,
            "battery {battery_frac}"
        );
    }

    #[test]
    fn weather_factors_derive_from_seed() {
        let a = PaperScenario::small(5, 1).weather_factors(10);
        let b = PaperScenario::small(5, 1).weather_factors(10);
        let c = PaperScenario::small(5, 2).weather_factors(10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
