//! The speculative day pipeline (DESIGN.md §15): overlap day `k+1`'s
//! market clearing and realization with day `k`'s detection.
//!
//! A detection day splits into a belief-independent front half (community
//! generation, market clearing, attack application, realization — pure in
//! the day's seeded RNG stream and an *assumed* compromise set) and a
//! stateful back half (prediction, slot loop, POMDP). The pipeline runs
//! the front half of the next day on a [`SpeculativeWorker`] while the
//! main thread runs the back half of the current day, then **commits** the
//! precomputed inputs only when the assumption they were built on — the
//! compromise set at next-day start — turns out to hold. The only thing
//! that can break it is the detector dispatching a mid-day fix (scripted
//! timeline events are projected exactly), in which case the speculation
//! is **discarded** and the day recomputed inline from the same seeds.
//!
//! Bit-identity is preserved by construction rather than by tolerance:
//! every day stream derives from `(seed, day)` alone, so the worker's
//! computation is the same pure function the inline path evaluates, and a
//! committed speculation feeds the back half inputs that are bit-identical
//! to what it would have computed itself. The speculation tally is
//! telemetry only — it is returned beside the result and never journaled,
//! so a speculative run's journal is byte-identical to a sequential run's.

use nms_attack::CompromiseSet;
use nms_obs::{names, NoopRecorder};
use nms_par::SpeculativeWorker;
use nms_solver::PersistentCache;
use nms_types::{MeterId, ValidateError};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::detection::{
    day_stream_seed, prepare, prepare_day_inputs, DayCacheConfig, DayInputs, LongTermRunConfig,
    LongTermRunResult, RunSetup, SupervisedRun,
};
use crate::{PaperScenario, SimError};

/// How one speculative run's pipeline behaved. Telemetry only: never
/// journaled, never folded into [`LongTermRunResult`], so sequential and
/// speculative runs stay bit-identical in every persisted artifact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpeculationReport {
    /// Next-day speculations submitted to the worker.
    pub launched: u64,
    /// Speculations whose compromise-set assumption held at commit time.
    pub committed: u64,
    /// Speculations discarded — the assumption diverged (a mid-day fix)
    /// or the worker failed; the day recomputed inline either way.
    pub discarded: u64,
}

/// A request to precompute day `day_offset`'s inputs under an assumed
/// compromise set (sorted meter indices).
struct SpecRequest {
    day_offset: usize,
    assumed: Vec<usize>,
}

struct SpecResponse {
    day_offset: usize,
    outcome: Result<DayInputs, SimError>,
}

/// The worker-side job: rebuild the day's front half from scratch using
/// worker-local setup and a worker-local clearing cache. Pure in
/// `(scenario, config, seed, request)`, which is the whole determinism
/// argument — see the module docs.
fn speculate(
    scenario: &PaperScenario,
    config: &LongTermRunConfig,
    seed: u64,
    cache_config: DayCacheConfig,
    ctx: &mut Option<(RunSetup, Option<PersistentCache>)>,
    request: &SpecRequest,
) -> Result<DayInputs, SimError> {
    if ctx.is_none() {
        *ctx = Some((prepare(scenario, config)?, cache_config.build()?));
    }
    let Some((setup, cache)) = ctx.as_mut() else {
        return Err(SimError::Config(ValidateError::new(
            "speculation context failed to initialize",
        )));
    };
    let assumed: CompromiseSet = request.assumed.iter().map(|&m| MeterId::new(m)).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(day_stream_seed(seed, request.day_offset));
    prepare_day_inputs(
        scenario,
        config,
        setup,
        request.day_offset,
        &assumed,
        &mut rng,
        cache.as_mut(),
        &NoopRecorder,
    )
}

impl SupervisedRun {
    /// Runs every remaining day through the speculative pipeline, then
    /// finishes. The result is bit-identical to [`SupervisedRun::run`]
    /// (asserted by `tests/day_pipeline.rs`); the report says how often
    /// speculation paid off.
    ///
    /// # Errors
    ///
    /// Same as [`SupervisedRun::run`].
    pub fn run_speculative(mut self) -> Result<(LongTermRunResult, SpeculationReport), SimError> {
        let mut report = SpeculationReport::default();
        let (scenario, config, seed, cache_config) = self.speculation_parts();
        let total_days = config.detection_days;
        let worker = SpeculativeWorker::spawn({
            let mut ctx: Option<(RunSetup, Option<PersistentCache>)> = None;
            move |request: SpecRequest| -> SpecResponse {
                let day_offset = request.day_offset;
                let outcome = speculate(&scenario, &config, seed, cache_config, &mut ctx, &request);
                SpecResponse {
                    day_offset,
                    outcome,
                }
            }
        });

        let mut inflight: Option<usize> = None;
        while !self.is_finished() {
            let day = self.completed_days();

            // Launch day k+1 before running day k: the worker clears
            // tomorrow's market while this thread detects today.
            let mut launched = false;
            if day + 1 < total_days {
                let request = SpecRequest {
                    day_offset: day + 1,
                    assumed: self.project_compromised_after(day),
                };
                if worker.submit(request) {
                    report.launched += 1;
                    self.rec().add(names::pipeline::SPECULATION_LAUNCHED, 1);
                    launched = true;
                }
            }

            // Collect (and commit-check) the speculation for *this* day,
            // submitted on the previous iteration. FIFO ordering means it
            // is the next response even though day k+1 is already queued.
            let mut speculated: Option<DayInputs> = None;
            if inflight.take() == Some(day) {
                if let Some(response) = worker.recv() {
                    debug_assert_eq!(response.day_offset, day);
                    if let Ok(inputs) = response.outcome {
                        if inputs.day_offset == day && inputs.assumed == self.current_compromised()
                        {
                            speculated = Some(inputs);
                        }
                    }
                }
                if speculated.is_some() {
                    report.committed += 1;
                    self.rec().add(names::pipeline::SPECULATION_COMMITTED, 1);
                } else {
                    report.discarded += 1;
                    self.rec().add(names::pipeline::SPECULATION_DISCARDED, 1);
                }
            }
            if launched {
                inflight = Some(day + 1);
            }

            match speculated {
                Some(inputs) => self.step_day_with_speculated(inputs)?,
                None => self.step_day()?,
            }
        }

        // A run that finishes with a speculation still queued (it cannot,
        // today: the last day never launches one) would simply drop the
        // worker, whose Drop joins after the in-flight job.
        drop(worker);
        let result = self.finish()?;
        Ok((result, report))
    }
}
