//! Injectable storage layer for every durable writer in the workspace.
//!
//! The multi-day detection pipeline only works if its durable state — run
//! journals, trace streams, CSV exports, bench records — survives the
//! failures real field infrastructure produces: short writes, full disks,
//! failing fsyncs, and processes killed mid-operation. This crate makes
//! that testable by putting one seam under all of it:
//!
//! - [`Vfs`] / [`VfsFile`] — the minimal filesystem surface the durable
//!   writers need (whole-file write, rename, append handles with
//!   `sync`/`set_len`, read-back);
//! - [`StdVfs`] — the production implementation, a thin passthrough to
//!   `std::fs`;
//! - [`FaultVfs`](fault::FaultVfs) — a deterministic in-memory
//!   implementation that injects faults from a seeded
//!   [`IoFaultPlan`](fault::IoFaultPlan): ENOSPC, short writes, fsync
//!   failures, and a FoundationDB-style *kill at operation k* that tears
//!   the in-flight write and fails everything after it, so a crash-point
//!   sweep can enumerate every I/O operation of a run as a kill point;
//! - [`write_atomic`] + [`StoragePolicy`] — the shared
//!   tmp-then-rename discipline with bounded, backed-off retries and a
//!   typed [`StorageError`] when the retries are exhausted.
//!
//! Nothing here draws from the simulation's RNG streams: fault decisions
//! hash `(plan seed, operation index)`, so a plan injects the same faults
//! no matter what the bytes being written are or which thread writes them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

pub mod fault;

pub use fault::{injected_fault, FaultVfs, InjectedFault, InjectedFaults, IoFaultPlan};

/// An open file handle on a [`Vfs`], sufficient for append-only sealed-line
/// writers: append bytes, make them durable, and roll a partial append back.
pub trait VfsFile: Send {
    /// Appends (or, for handles opened by [`Vfs::open_append`], extends)
    /// the file with `buf`, all-or-error from the caller's perspective —
    /// though a failing implementation may leave a *prefix* of `buf`
    /// behind, which is exactly the torn-tail case durable writers must
    /// tolerate or roll back.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Flushes written data to durable storage (`fdatasync` semantics).
    fn sync_data(&mut self) -> io::Result<()>;

    /// Current length of the file in bytes.
    fn len(&self) -> io::Result<u64>;

    /// `true` when the file is empty.
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Truncates (or zero-extends) the file to `len` bytes — the rollback
    /// primitive for a partial append.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
}

/// The filesystem surface shared by every durable writer in the workspace.
///
/// Deliberately minimal: whole-file writes (for `.tmp` siblings), atomic
/// rename, append handles, and read-back. Implementations must be usable
/// behind `Arc<dyn Vfs>` from multiple threads.
pub trait Vfs: Send + Sync {
    /// Reads the whole file as UTF-8.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;

    /// Creates-or-truncates `path` with exactly `contents`.
    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` onto `to` (replacing it).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Opens an *existing* file for appending (`NotFound` when missing,
    /// matching `std` append-without-create semantics).
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
}

/// The production [`Vfs`]: a thin passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdVfs;

struct StdFile(fs::File);

impl VfsFile for StdFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(&mut self.0, buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
}

impl Vfs for StdVfs {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        fs::read_to_string(path)
    }

    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        fs::write(path, contents)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = fs::OpenOptions::new().append(true).open(path)?;
        Ok(Box::new(StdFile(file)))
    }
}

/// The `.tmp` sibling used by [`write_atomic`]: `dir/name.ext` →
/// `dir/name.ext.tmp` (suffix-append, so distinct artifacts in one
/// directory never share a staging file).
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Bounded-retry policy for durable writes that may transiently fail
/// (ENOSPC racing a log rotation, an NFS hiccup, an injected fault).
///
/// Attempt `k` (zero-based) sleeps `backoff · k` before running, so the
/// first attempt is immediate and pressure backs off linearly. Retries
/// affect only wall-clock, never results — a retried write produces the
/// same bytes as a first-try success.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoragePolicy {
    /// Total attempts allowed (≥ 1; 1 means no retries).
    pub max_attempts: usize,
    /// Base backoff between attempts.
    pub backoff: Duration,
}

impl Default for StoragePolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff: Duration::from_millis(2),
        }
    }
}

impl StoragePolicy {
    /// A policy that fails on the first error (no retries, no backoff).
    pub fn no_retries() -> Self {
        Self {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }
}

/// How a policed durable write went: `attempts` made in total (1 = clean
/// first-try success).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageReport {
    /// Attempts consumed, including the successful one.
    pub attempts: usize,
}

impl StorageReport {
    /// Retries consumed beyond the first attempt.
    pub fn retries(&self) -> usize {
        self.attempts.saturating_sub(1)
    }
}

/// Why a policed durable write failed for good.
#[derive(Debug)]
#[non_exhaustive]
pub enum StorageError {
    /// The artifact could not be serialized in memory; no bytes touched
    /// storage.
    Render(io::Error),
    /// Every attempt failed. The destination is untouched — staged bytes
    /// only ever land in the `.tmp` sibling until the final rename.
    Exhausted {
        /// Attempts made.
        attempts: usize,
        /// The last attempt's error.
        last: io::Error,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Render(err) => write!(f, "artifact serialization failed: {err}"),
            Self::Exhausted { attempts, last } => {
                write!(f, "durable write failed after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Render(err) | Self::Exhausted { last: err, .. } => Some(err),
        }
    }
}

impl StorageError {
    /// The underlying I/O error.
    pub fn io_error(&self) -> &io::Error {
        match self {
            Self::Render(err) | Self::Exhausted { last: err, .. } => err,
        }
    }
}

/// Writes `contents` to `path` atomically (stage in a `.tmp` sibling, then
/// rename over the destination) under `policy`'s bounded retries.
///
/// A kill at any point leaves either the old destination or the new one,
/// never a torn mix — a torn `.tmp` sibling is dead weight the next
/// attempt overwrites.
///
/// # Errors
///
/// Returns [`StorageError::Exhausted`] once every attempt has failed.
pub fn write_atomic(
    vfs: &dyn Vfs,
    path: &Path,
    contents: &[u8],
    policy: &StoragePolicy,
) -> Result<StorageReport, StorageError> {
    let tmp = tmp_sibling(path);
    let attempts = policy.max_attempts.max(1);
    let mut last: Option<io::Error> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            let pause = policy.backoff.saturating_mul(attempt as u32);
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
        }
        match vfs.write(&tmp, contents).and_then(|()| vfs.rename(&tmp, path)) {
            Ok(()) => return Ok(StorageReport { attempts: attempt + 1 }),
            Err(err) => last = Some(err),
        }
    }
    Err(StorageError::Exhausted {
        attempts,
        last: last.unwrap_or_else(|| io::Error::other("no attempt ran")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("nms-vfs-{tag}-{}.txt", std::process::id()));
        let _ = fs::remove_file(&path);
        path
    }

    #[test]
    fn std_vfs_roundtrip_and_append() {
        let vfs = StdVfs;
        let path = temp_path("roundtrip");
        vfs.write(&path, b"line one\n").unwrap();
        {
            let mut file = vfs.open_append(&path).unwrap();
            file.write_all(b"line two\n").unwrap();
            file.sync_data().unwrap();
            assert_eq!(file.len().unwrap(), 18);
            assert!(!file.is_empty().unwrap());
        }
        assert_eq!(vfs.read_to_string(&path).unwrap(), "line one\nline two\n");

        // Rollback primitive: truncate back to the first line.
        let mut file = vfs.open_append(&path).unwrap();
        file.set_len(9).unwrap();
        drop(file);
        assert_eq!(vfs.read_to_string(&path).unwrap(), "line one\n");

        vfs.remove_file(&path).unwrap();
        assert!(vfs.read_to_string(&path).is_err());
        // Append without create refuses a missing file.
        let err = vfs.open_append(&path).map(|_| ()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn write_atomic_stages_through_a_tmp_sibling() {
        let vfs = StdVfs;
        let path = temp_path("atomic");
        let report = write_atomic(&vfs, &path, b"v1", &StoragePolicy::default()).unwrap();
        assert_eq!(report.attempts, 1);
        assert_eq!(report.retries(), 0);
        assert_eq!(vfs.read_to_string(&path).unwrap(), "v1");
        // The staging sibling is consumed by the rename.
        assert!(vfs.read_to_string(&tmp_sibling(&path)).is_err());
        write_atomic(&vfs, &path, b"v2", &StoragePolicy::no_retries()).unwrap();
        assert_eq!(vfs.read_to_string(&path).unwrap(), "v2");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn tmp_sibling_appends_not_replaces() {
        assert_eq!(
            tmp_sibling(Path::new("out/run.jsonl")),
            PathBuf::from("out/run.jsonl.tmp")
        );
        // Two artifacts differing only in extension keep distinct siblings
        // (with_extension-style replacement would collide them).
        assert_ne!(
            tmp_sibling(Path::new("a.csv")),
            tmp_sibling(Path::new("a.json"))
        );
    }
}
