//! Deterministic storage-fault injection over an in-memory disk.
//!
//! [`FaultVfs`] is the storage half of the workspace's fault story (the
//! telemetry half lives in `nms-sim::faults`): a [`Vfs`] whose files live
//! in memory and whose failures replay exactly from a seeded
//! [`IoFaultPlan`]. Every *mutating* operation — whole-file write, append,
//! rename, truncate, remove, fsync — consumes one global operation index,
//! and each index independently decides its fate by hashing
//! `(plan seed, index, fault kind)`:
//!
//! - **ENOSPC** — the write fails cleanly with
//!   [`std::io::ErrorKind::StorageFull`]; no bytes land;
//! - **short write** — a strict prefix of the buffer lands, then the
//!   operation errors (the torn-tail shape sealed-line loaders must drop
//!   and append-writers must roll back);
//! - **fsync failure** — `sync_data` errors; previously applied bytes stay
//!   (this model treats applied writes as durable — the fault tests the
//!   *caller's* error path, not page-cache reordering);
//! - **kill at operation k** — the in-flight write applies a torn prefix,
//!   then the whole VFS "crashes": every subsequent operation (reads
//!   included) fails until [`FaultVfs::revive`], which models the reboot.
//!
//! Reads and handle metadata never consume operation indices, so a crash
//! sweep's kill points enumerate exactly the durable mutations of a run.
//! Because decisions hash the operation index rather than sampling an RNG
//! stream, the same plan injects the same faults regardless of the bytes
//! written, the caller's thread, or how many reads interleave.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

use serde::{Deserialize, Serialize};

use crate::{Vfs, VfsFile};

/// Message prefix marking an injected ENOSPC.
const MSG_ENOSPC: &str = "nms-vfs: injected ENOSPC";
/// Message prefix marking an injected short write.
const MSG_SHORT_WRITE: &str = "nms-vfs: injected short write";
/// Message prefix marking an injected fsync failure.
const MSG_SYNC: &str = "nms-vfs: injected fsync failure";
/// Message prefix marking the kill-point operation itself.
const MSG_KILLED: &str = "nms-vfs: killed";
/// Message prefix marking operations attempted after the kill point.
const MSG_CRASHED: &str = "nms-vfs: crashed";

/// Which injected fault an [`std::io::Error`] carries, recovered from the
/// error message so degradation policies can tally ENOSPC separately from
/// fsync failures without new error types threading through every layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum InjectedFault {
    /// An injected out-of-space write failure.
    Enospc,
    /// An injected short (torn) write.
    ShortWrite,
    /// An injected fsync failure.
    SyncFailure,
    /// The kill-point operation itself.
    Kill,
    /// An operation attempted after the kill point (machine "down").
    Crashed,
}

/// Classifies an error produced by a [`FaultVfs`]; `None` for organic
/// errors (including everything [`crate::StdVfs`] returns).
pub fn injected_fault(err: &io::Error) -> Option<InjectedFault> {
    let msg = err.to_string();
    if msg.starts_with(MSG_ENOSPC) {
        Some(InjectedFault::Enospc)
    } else if msg.starts_with(MSG_SHORT_WRITE) {
        Some(InjectedFault::ShortWrite)
    } else if msg.starts_with(MSG_SYNC) {
        Some(InjectedFault::SyncFailure)
    } else if msg.starts_with(MSG_KILLED) {
        Some(InjectedFault::Kill)
    } else if msg.starts_with(MSG_CRASHED) {
        Some(InjectedFault::Crashed)
    } else {
        None
    }
}

/// A serializable, seeded plan for injecting storage faults.
///
/// Rates apply per mutating operation, independently; `fault_from_op`
/// shields a run's setup phase (say, a trace header) so a test can target
/// steady-state writes. [`IoFaultPlan::none`] (also `Default`) injects
/// nothing and makes [`FaultVfs`] a plain deterministic in-memory disk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoFaultPlan {
    /// Seed for the per-operation fault draws.
    #[serde(default)]
    pub seed: u64,
    /// Probability a write lands only a strict prefix of its bytes.
    #[serde(default)]
    pub short_write_rate: f64,
    /// Probability a write fails cleanly with `StorageFull`.
    #[serde(default)]
    pub enospc_rate: f64,
    /// Probability an fsync fails.
    #[serde(default)]
    pub sync_fail_rate: f64,
    /// Kill the VFS at this global operation index: the in-flight write
    /// tears, and everything after fails until [`FaultVfs::revive`].
    #[serde(default)]
    pub kill_at_op: Option<u64>,
    /// Operations below this index never draw rate faults (the kill point
    /// still applies), letting setup I/O through untouched.
    #[serde(default)]
    pub fault_from_op: u64,
}

impl Default for IoFaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl IoFaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self {
            seed: 0,
            short_write_rate: 0.0,
            enospc_rate: 0.0,
            sync_fail_rate: 0.0,
            kill_at_op: None,
            fault_from_op: 0,
        }
    }

    /// A clean plan that kills the VFS at operation `op`.
    pub fn kill_at(op: u64) -> Self {
        Self {
            kill_at_op: Some(op),
            ..Self::none()
        }
    }

    /// Checks the rates are probabilities.
    ///
    /// # Errors
    ///
    /// Returns a description of the first rate outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("short_write_rate", self.short_write_rate),
            ("enospc_rate", self.enospc_rate),
            ("sync_fail_rate", self.sync_fail_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                return Err(format!("{name} must be in [0, 1], got {rate}"));
            }
        }
        Ok(())
    }

    /// `true` when the plan can never inject anything.
    pub fn is_noop(&self) -> bool {
        self.short_write_rate == 0.0
            && self.enospc_rate == 0.0
            && self.sync_fail_rate == 0.0
            && self.kill_at_op.is_none()
    }
}

/// Tallies of every fault a [`FaultVfs`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Writes failed with `StorageFull`.
    pub enospc: u64,
    /// Writes that landed only a prefix.
    pub short_writes: u64,
    /// Fsyncs failed.
    pub sync_failures: u64,
    /// Kill points fired (0 or 1 per life; `revive` re-arms nothing).
    pub kills: u64,
}

impl InjectedFaults {
    /// Total injected faults of every kind.
    pub fn total(&self) -> u64 {
        self.enospc + self.short_writes + self.sync_failures + self.kills
    }
}

/// FNV-1a over the little-endian bytes of `(seed, op, salt)` — the
/// deterministic per-operation fault draw.
fn mix(seed: u64, op: u64, salt: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for word in [seed, op, salt] {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Maps a draw to `[0, 1)`.
fn unit(seed: u64, op: u64, salt: u64) -> f64 {
    (mix(seed, op, salt) >> 11) as f64 / (1u64 << 53) as f64
}

const SALT_ENOSPC: u64 = 1;
const SALT_SHORT: u64 = 2;
const SALT_SYNC: u64 = 3;
const SALT_TORN: u64 = 4;

struct FaultState {
    plan: IoFaultPlan,
    disk: BTreeMap<PathBuf, Vec<u8>>,
    ops: u64,
    killed: bool,
    injected: InjectedFaults,
}

impl FaultState {
    fn crashed_error() -> io::Error {
        io::Error::other(format!("{MSG_CRASHED} (operation after the kill point)"))
    }

    /// Gate for every operation (reads included): a killed VFS is down.
    fn ensure_alive(&self) -> io::Result<()> {
        if self.killed {
            Err(Self::crashed_error())
        } else {
            Ok(())
        }
    }

    /// Consumes one mutating-operation index.
    fn begin_op(&mut self) -> io::Result<u64> {
        self.ensure_alive()?;
        let op = self.ops;
        self.ops += 1;
        Ok(op)
    }

    /// `true` (after entering the crashed state) when `op` is the kill
    /// point.
    fn kill_fires(&mut self, op: u64) -> bool {
        if self.plan.kill_at_op == Some(op) {
            self.killed = true;
            self.injected.kills += 1;
            true
        } else {
            false
        }
    }

    fn killed_error(op: u64) -> io::Error {
        io::Error::other(format!("{MSG_KILLED} at operation {op}"))
    }

    fn apply_write(&mut self, path: &Path, bytes: &[u8], append: bool) {
        let entry = self.disk.entry(path.to_path_buf()).or_default();
        if !append {
            entry.clear();
        }
        entry.extend_from_slice(bytes);
    }

    /// One faultable write of `buf` to `path` (`append` false = truncate).
    fn faulted_write(&mut self, path: &Path, buf: &[u8], append: bool) -> io::Result<()> {
        let op = self.begin_op()?;
        let plan = self.plan;
        if self.kill_fires(op) {
            // Torn tail: a deterministic prefix of the in-flight bytes
            // survives the crash.
            let keep = (unit(plan.seed, op, SALT_TORN) * buf.len() as f64) as usize;
            self.apply_write(path, &buf[..keep.min(buf.len())], append);
            return Err(Self::killed_error(op));
        }
        if op >= plan.fault_from_op {
            if unit(plan.seed, op, SALT_ENOSPC) < plan.enospc_rate {
                self.injected.enospc += 1;
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    format!("{MSG_ENOSPC} at operation {op}"),
                ));
            }
            if buf.len() > 1 && unit(plan.seed, op, SALT_SHORT) < plan.short_write_rate {
                let keep = 1 + (unit(plan.seed, op, SALT_TORN) * (buf.len() - 1) as f64) as usize;
                let keep = keep.min(buf.len() - 1);
                self.apply_write(path, &buf[..keep], append);
                self.injected.short_writes += 1;
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    format!(
                        "{MSG_SHORT_WRITE} at operation {op} ({keep} of {} bytes landed)",
                        buf.len()
                    ),
                ));
            }
        }
        self.apply_write(path, buf, append);
        Ok(())
    }
}

/// A deterministic, fault-injecting, in-memory [`Vfs`].
///
/// Clones share one disk, plan, operation counter, and fault tally — pass
/// a clone into `Arc<dyn Vfs>` consumers and keep one for inspection. See
/// the [module docs](self) for the fault and crash model.
#[derive(Clone)]
pub struct FaultVfs {
    state: Arc<Mutex<FaultState>>,
}

impl std::fmt::Debug for FaultVfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.lock();
        f.debug_struct("FaultVfs")
            .field("plan", &state.plan)
            .field("files", &state.disk.len())
            .field("ops", &state.ops)
            .field("killed", &state.killed)
            .field("injected", &state.injected)
            .finish()
    }
}

impl FaultVfs {
    /// An empty in-memory disk governed by `plan`.
    pub fn new(plan: IoFaultPlan) -> Self {
        Self {
            state: Arc::new(Mutex::new(FaultState {
                plan,
                disk: BTreeMap::new(),
                ops: 0,
                killed: false,
                injected: InjectedFaults::default(),
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutating operations consumed so far (the crash sweep's kill-point
    /// space is `0..ops()` of an uninterrupted run).
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// `true` once the kill point has fired and the VFS is "down".
    pub fn is_killed(&self) -> bool {
        self.lock().killed
    }

    /// Reboots a killed VFS: the disk keeps exactly what survived the
    /// crash, the kill point is disarmed, and operations flow again.
    pub fn revive(&self) {
        let mut state = self.lock();
        state.killed = false;
        state.plan.kill_at_op = None;
    }

    /// What has actually been injected so far.
    pub fn injected(&self) -> InjectedFaults {
        self.lock().injected
    }

    /// The bytes of one file, if it exists.
    pub fn read_file(&self, path: &Path) -> Option<Vec<u8>> {
        self.lock().disk.get(path).cloned()
    }

    /// A snapshot of the whole disk (for byte-identity assertions).
    pub fn dump(&self) -> BTreeMap<PathBuf, Vec<u8>> {
        self.lock().disk.clone()
    }
}

struct FaultFile {
    state: Arc<Mutex<FaultState>>,
    path: PathBuf,
}

impl FaultFile {
    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let path = self.path.clone();
        self.lock().faulted_write(&path, buf, true)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        let mut state = self.lock();
        let op = state.begin_op()?;
        if state.kill_fires(op) {
            return Err(FaultState::killed_error(op));
        }
        let plan = state.plan;
        if op >= plan.fault_from_op && unit(plan.seed, op, SALT_SYNC) < plan.sync_fail_rate {
            state.injected.sync_failures += 1;
            return Err(io::Error::other(format!("{MSG_SYNC} at operation {op}")));
        }
        Ok(())
    }

    fn len(&self) -> io::Result<u64> {
        let state = self.lock();
        state.ensure_alive()?;
        Ok(state.disk.get(&self.path).map_or(0, |bytes| bytes.len() as u64))
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        let mut state = self.lock();
        let op = state.begin_op()?;
        if state.kill_fires(op) {
            return Err(FaultState::killed_error(op));
        }
        let entry = state.disk.entry(self.path.clone()).or_default();
        entry.resize(len as usize, 0);
        Ok(())
    }
}

impl Vfs for FaultVfs {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        let state = self.lock();
        state.ensure_alive()?;
        match state.disk.get(path) {
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such in-memory file: {}", path.display()),
            )),
            Some(bytes) => String::from_utf8(bytes.clone()).map_err(|err| {
                io::Error::new(io::ErrorKind::InvalidData, err.to_string())
            }),
        }
    }

    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        self.lock().faulted_write(path, contents, false)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut state = self.lock();
        let op = state.begin_op()?;
        if state.kill_fires(op) {
            // A killed rename never happened: source and destination both
            // keep their pre-rename bytes (rename is atomic).
            return Err(FaultState::killed_error(op));
        }
        match state.disk.remove(from) {
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such in-memory file: {}", from.display()),
            )),
            Some(bytes) => {
                state.disk.insert(to.to_path_buf(), bytes);
                Ok(())
            }
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut state = self.lock();
        let op = state.begin_op()?;
        if state.kill_fires(op) {
            return Err(FaultState::killed_error(op));
        }
        match state.disk.remove(path) {
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such in-memory file: {}", path.display()),
            )),
            Some(_) => Ok(()),
        }
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let state = self.lock();
        state.ensure_alive()?;
        if !state.disk.contains_key(path) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such in-memory file: {}", path.display()),
            ));
        }
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{write_atomic, StoragePolicy};

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn clean_plan_is_a_plain_in_memory_disk() {
        let vfs = FaultVfs::new(IoFaultPlan::none());
        vfs.write(&p("a.txt"), b"hello ").unwrap();
        let mut file = vfs.open_append(&p("a.txt")).unwrap();
        file.write_all(b"world").unwrap();
        file.sync_data().unwrap();
        assert_eq!(file.len().unwrap(), 11);
        drop(file);
        assert_eq!(vfs.read_to_string(&p("a.txt")).unwrap(), "hello world");
        vfs.rename(&p("a.txt"), &p("b.txt")).unwrap();
        assert!(vfs.read_to_string(&p("a.txt")).is_err());
        assert_eq!(vfs.read_to_string(&p("b.txt")).unwrap(), "hello world");
        // write + append + sync + rename = 4 mutating ops; reads are free.
        assert_eq!(vfs.ops(), 4);
        assert_eq!(vfs.injected(), InjectedFaults::default());
        assert!(IoFaultPlan::none().is_noop());
    }

    #[test]
    fn kill_at_op_tears_the_inflight_write_and_downs_the_vfs() {
        let vfs = FaultVfs::new(IoFaultPlan::kill_at(1));
        vfs.write(&p("a.txt"), b"intact").unwrap(); // op 0
        let err = vfs.write(&p("b.txt"), b"torn-me-up").unwrap_err(); // op 1: kill
        assert_eq!(injected_fault(&err), Some(InjectedFault::Kill));
        assert!(vfs.is_killed());
        // Everything is down until the reboot, reads included.
        let err = vfs.read_to_string(&p("a.txt")).unwrap_err();
        assert_eq!(injected_fault(&err), Some(InjectedFault::Crashed));
        let err = vfs.write(&p("c.txt"), b"nope").unwrap_err();
        assert_eq!(injected_fault(&err), Some(InjectedFault::Crashed));

        vfs.revive();
        assert!(!vfs.is_killed());
        // The intact file survived; the killed write left a strict prefix.
        assert_eq!(vfs.read_to_string(&p("a.txt")).unwrap(), "intact");
        let torn = vfs.read_file(&p("b.txt")).unwrap_or_default();
        assert!(torn.len() < b"torn-me-up".len());
        assert!(b"torn-me-up".starts_with(&torn));
        // And the disarmed kill point does not re-fire.
        vfs.write(&p("c.txt"), b"post-reboot").unwrap();
        assert_eq!(vfs.injected().kills, 1);
    }

    #[test]
    fn killed_rename_never_happened() {
        let vfs = FaultVfs::new(IoFaultPlan::kill_at(1));
        vfs.write(&p("x.tmp"), b"staged").unwrap(); // op 0
        assert!(vfs.rename(&p("x.tmp"), &p("x")).is_err()); // op 1: kill
        vfs.revive();
        assert_eq!(vfs.read_to_string(&p("x.tmp")).unwrap(), "staged");
        assert!(vfs.read_to_string(&p("x")).is_err());
    }

    #[test]
    fn rate_faults_are_deterministic_and_classified() {
        let plan = IoFaultPlan {
            seed: 7,
            enospc_rate: 0.5,
            short_write_rate: 0.3,
            sync_fail_rate: 0.5,
            fault_from_op: 1, // shield the file-creating write
            ..IoFaultPlan::none()
        };
        assert!(plan.validate().is_ok());
        assert!(!plan.is_noop());

        let run = |plan: IoFaultPlan| {
            let vfs = FaultVfs::new(plan);
            let mut log = Vec::new();
            vfs.write(&p("f"), b"").expect("creation is shielded");
            let mut file = vfs.open_append(&p("f")).expect("file exists");
            for _ in 0..64 {
                log.push(match file.write_all(b"0123456789") {
                    Ok(()) => 'w',
                    Err(err) => match injected_fault(&err) {
                        Some(InjectedFault::Enospc) => 'e',
                        Some(InjectedFault::ShortWrite) => 's',
                        other => panic!("unexpected fault {other:?}"),
                    },
                });
                log.push(match file.sync_data() {
                    Ok(()) => 'y',
                    Err(err) => {
                        assert_eq!(injected_fault(&err), Some(InjectedFault::SyncFailure));
                        'n'
                    }
                });
            }
            (log, vfs.injected(), vfs.read_file(&p("f")).unwrap_or_default())
        };

        let (log_a, injected_a, bytes_a) = run(plan);
        let (log_b, injected_b, bytes_b) = run(plan);
        assert_eq!(log_a, log_b, "same plan must inject the same faults");
        assert_eq!(injected_a, injected_b);
        assert_eq!(bytes_a, bytes_b);
        assert!(injected_a.enospc > 0);
        assert!(injected_a.short_writes > 0);
        assert!(injected_a.sync_failures > 0);
        assert!(injected_a.total() > 0);
        // ENOSPC lands nothing; short writes land strict prefixes — so the
        // file length is never a multiple-of-10 corruption story alone.
        assert!(bytes_a.len() < 64 * 10);

        // A different seed gives a different schedule.
        let mut reseeded = plan;
        reseeded.seed = 8;
        let (log_c, ..) = run(reseeded);
        assert_ne!(log_a, log_c);
    }

    #[test]
    fn fault_from_op_shields_setup_io() {
        let plan = IoFaultPlan {
            seed: 3,
            enospc_rate: 1.0,
            fault_from_op: 2,
            ..IoFaultPlan::none()
        };
        let vfs = FaultVfs::new(plan);
        vfs.write(&p("header"), b"h").unwrap(); // op 0: shielded
        vfs.write(&p("header2"), b"h").unwrap(); // op 1: shielded
        let err = vfs.write(&p("body"), b"b").unwrap_err(); // op 2: faultable
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(injected_fault(&err), Some(InjectedFault::Enospc));
    }

    #[test]
    fn write_atomic_retries_through_transient_faults() {
        // Every write op faults with p=0.5; rename never rate-faults, so a
        // bounded retry eventually lands the artifact for this seed.
        let plan = IoFaultPlan {
            seed: 11,
            enospc_rate: 0.5,
            ..IoFaultPlan::none()
        };
        let vfs = FaultVfs::new(plan);
        let policy = StoragePolicy {
            max_attempts: 10,
            backoff: std::time::Duration::ZERO,
        };
        let report = write_atomic(&vfs, &p("out.csv"), b"a,b\n1,2\n", &policy).expect("retries win");
        assert!(report.attempts >= 1);
        assert_eq!(vfs.read_to_string(&p("out.csv")).unwrap(), "a,b\n1,2\n");

        // With certain failure the typed exhaustion error surfaces.
        let always = IoFaultPlan {
            seed: 11,
            enospc_rate: 1.0,
            ..IoFaultPlan::none()
        };
        let vfs = FaultVfs::new(always);
        match write_atomic(&vfs, &p("out.csv"), b"x", &StoragePolicy::default()) {
            Err(crate::StorageError::Exhausted { attempts, last }) => {
                assert_eq!(attempts, 3);
                assert_eq!(injected_fault(&last), Some(InjectedFault::Enospc));
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
        assert!(vfs.read_to_string(&p("out.csv")).is_err(), "destination untouched");
    }

    #[test]
    fn set_len_rolls_back_a_torn_append() {
        let plan = IoFaultPlan {
            seed: 5,
            short_write_rate: 1.0,
            fault_from_op: 1,
            ..IoFaultPlan::none()
        };
        let vfs = FaultVfs::new(plan);
        vfs.write(&p("log"), b"line1\n").unwrap(); // op 0: shielded
        let mut file = vfs.open_append(&p("log")).unwrap();
        let before = file.len().unwrap();
        let err = file.write_all(b"line2-very-long\n").unwrap_err(); // op 1: short
        assert_eq!(injected_fault(&err), Some(InjectedFault::ShortWrite));
        assert!(file.len().unwrap() > before, "a torn prefix landed");
        file.set_len(before).unwrap();
        assert_eq!(vfs.read_to_string(&p("log")).unwrap(), "line1\n");
    }

    #[test]
    fn plan_serde_roundtrip_and_defaults() {
        let plan = IoFaultPlan {
            seed: 42,
            short_write_rate: 0.1,
            enospc_rate: 0.2,
            sync_fail_rate: 0.3,
            kill_at_op: Some(17),
            fault_from_op: 2,
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: IoFaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        // A bare object is the no-op plan.
        let empty: IoFaultPlan = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, IoFaultPlan::none());
        let mut bad = plan;
        bad.enospc_rate = 1.5;
        assert!(bad.validate().is_err());
    }
}
