//! The JSONL structured-event sink and its schema.
//!
//! One line per event, each line a hash-sealed envelope
//! `{"hash":"<fnv1a64 of body>","body":"<event json>"}` — the same
//! sealed-line discipline as the run journal (`nms-sim::journal`), so a
//! torn tail or bit-rotted line is detectable instead of silently parsed.
//! The first line is a sealed header identifying the stream and schema
//! version.
//!
//! Traces are telemetry, not recovery state: writes go through an
//! append-only handle (one write per line, no fsync), and a write error
//! degrades to a dropped-line counter instead of failing the simulation
//! that emitted the event — the trace degradation policy is
//! *drop-and-count*.
//!
//! All I/O goes through an injectable `nms-vfs` [`Vfs`]: production
//! callers use [`JsonlTrace::create`] (real filesystem), storage-fault
//! tests use [`JsonlTrace::create_on`] with a fault-injecting VFS. The
//! header is staged through a `.tmp` sibling and renamed into place, so a
//! failure during creation can never leave a torn or headerless trace
//! file at the destination path.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use nms_types::StorageFaultLedger;
use nms_vfs::{write_atomic, StdVfs, StoragePolicy, Vfs, VfsFile};

use crate::Recorder;

/// Schema version stamped into every trace header.
pub const TRACE_VERSION: u32 = 1;

/// FNV-1a 64-bit — the same line-seal hash the run journal uses.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A named numeric payload entry of a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceField {
    /// Field name.
    pub key: String,
    /// Field value.
    pub value: f64,
}

/// A named string payload entry of a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLabel {
    /// Label name.
    pub key: String,
    /// Label value.
    pub value: String,
}

/// One structured event: a kind, an optional detection-day anchor, and
/// flat numeric/string payloads. Deliberately schema-light — every stage
/// shares this one shape, and consumers filter on `kind`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// What happened, e.g. `"game_round"`, `"day_phases"`, `"quarantine"`.
    pub kind: String,
    /// Detection-day offset the event belongs to, when it has one.
    #[serde(default)]
    pub day: Option<usize>,
    /// Numeric payload.
    #[serde(default)]
    pub fields: Vec<TraceField>,
    /// String payload.
    #[serde(default)]
    pub labels: Vec<TraceLabel>,
}

impl TraceEvent {
    /// Starts an event of the given kind.
    pub fn new(kind: impl Into<String>) -> Self {
        Self {
            kind: kind.into(),
            day: None,
            fields: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Anchors the event to a detection day.
    #[must_use]
    pub fn day(mut self, day: usize) -> Self {
        self.day = Some(day);
        self
    }

    /// Appends a numeric field.
    #[must_use]
    pub fn field(mut self, key: impl Into<String>, value: f64) -> Self {
        self.fields.push(TraceField {
            key: key.into(),
            value,
        });
        self
    }

    /// Appends a string label.
    #[must_use]
    pub fn label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.push(TraceLabel {
            key: key.into(),
            value: value.into(),
        });
        self
    }

    /// The first numeric field named `key`.
    pub fn field_value(&self, key: &str) -> Option<f64> {
        self.fields
            .iter()
            .find(|field| field.key == key)
            .map(|field| field.value)
    }

    /// The first label named `key`.
    pub fn label_value(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|label| label.key == key)
            .map(|label| label.value.as_str())
    }
}

/// The sealed envelope around every line (header and events alike).
#[derive(Debug, Serialize, Deserialize)]
struct TraceLine {
    hash: String,
    body: String,
}

impl TraceLine {
    fn seal(body: String) -> Self {
        let hash = format!("{:016x}", fnv1a64(body.as_bytes()));
        Self { hash, body }
    }

    fn verify(&self) -> bool {
        self.hash == format!("{:016x}", fnv1a64(self.body.as_bytes()))
    }
}

/// The sealed first line of a trace file.
#[derive(Debug, Serialize, Deserialize)]
struct TraceHeader {
    version: u32,
    stream: String,
}

/// Why reading a trace file failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// The file could not be read.
    Io(std::io::Error),
    /// A line failed to parse or its seal did not match.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        detail: String,
    },
    /// The file exists but has no intact sealed header line — empty, torn
    /// at line one, or never a trace file at all.
    MissingHeader {
        /// What was wrong with line one.
        detail: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(err) => write!(f, "trace io error: {err}"),
            Self::Corrupt { line, detail } => write!(f, "trace line {line} corrupt: {detail}"),
            Self::MissingHeader { detail } => {
                write!(f, "trace has no intact header: {detail}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(err: std::io::Error) -> Self {
        Self::Io(err)
    }
}

/// Seals `event` into the exact line the trace file stores (no trailing
/// newline): the envelope JSON around the event's body JSON. `None` when
/// the event cannot be serialized — the same condition the sink counts as
/// a drop. Shared with live trace-tail sinks so a tailed line is
/// byte-identical to the file's line.
pub fn seal_event(event: &TraceEvent) -> Option<String> {
    serde_json::to_string(event)
        .map(TraceLine::seal)
        .and_then(|line| serde_json::to_string(&line))
        .ok()
}

/// The JSONL event sink: every [`TraceEvent`] becomes one sealed line.
pub struct JsonlTrace {
    path: PathBuf,
    writer: Mutex<Box<dyn VfsFile>>,
    dropped: AtomicU64,
    ledger: Option<StorageFaultLedger>,
}

impl JsonlTrace {
    /// Creates (truncating) a trace file at `path` on the real filesystem
    /// and writes the sealed header line.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::create_on(Arc::new(StdVfs), path.as_ref())
    }

    /// Creates (truncating) a trace file at `path` on `vfs` and writes the
    /// sealed header line.
    ///
    /// The header is staged in a `.tmp` sibling and renamed over `path`,
    /// so a failure here leaves either the previous file or a complete
    /// headered one — never a torn or empty trace at the destination.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error once the staging write's bounded
    /// retries are exhausted.
    pub fn create_on(vfs: Arc<dyn Vfs>, path: &Path) -> std::io::Result<Self> {
        let path = path.to_path_buf();
        let header = TraceHeader {
            version: TRACE_VERSION,
            stream: "nms-trace".to_string(),
        };
        let body = serde_json::to_string(&header)
            .map_err(|err| std::io::Error::other(err.to_string()))?;
        let mut line = serde_json::to_string(&TraceLine::seal(body))
            .map_err(|err| std::io::Error::other(err.to_string()))?;
        line.push('\n');
        write_atomic(vfs.as_ref(), &path, line.as_bytes(), &StoragePolicy::default())
            .map_err(|err| match err {
                nms_vfs::StorageError::Render(err) => err,
                nms_vfs::StorageError::Exhausted { last, .. } => last,
                _ => std::io::Error::other(err.to_string()),
            })?;
        let writer = vfs.open_append(&path)?;
        Ok(Self {
            path,
            writer: Mutex::new(writer),
            dropped: AtomicU64::new(0),
            ledger: None,
        })
    }

    /// Mirrors every dropped event into `ledger` (as
    /// `StorageFaultCounts::trace_dropped`), so drops that happen *after*
    /// the header was written successfully still surface in
    /// `RunHealth.storage` and any `/health` endpoint fed from the same
    /// ledger — not just in this writer's local [`JsonlTrace::dropped`]
    /// counter. Pass a clone of the run's `SupervisedOptions::storage`
    /// ledger to get the merge for free at `finish()`.
    #[must_use]
    pub fn with_ledger(mut self, ledger: StorageFaultLedger) -> Self {
        self.ledger = Some(ledger);
        self
    }

    /// Where the trace lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Events that could not be serialized or written (telemetry loss is
    /// tolerated; results never depend on it).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn count_drop(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
        if let Some(ledger) = &self.ledger {
            ledger.record(|counts| counts.trace_dropped += 1);
        }
    }
}

impl Recorder for JsonlTrace {
    fn enabled(&self) -> bool {
        true
    }

    fn event(&self, event: &TraceEvent) {
        let Some(mut line) = seal_event(event) else {
            self.count_drop();
            return;
        };
        line.push('\n');
        let mut writer = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Drop-and-count: telemetry loss must never fail the run, and a
        // torn line is caught by the seal on read-back.
        if writer.write_all(line.as_bytes()).is_err() {
            self.count_drop();
        }
    }
}

/// Reads a trace file back from the real filesystem. See
/// [`read_trace_on`].
///
/// # Errors
///
/// As [`read_trace_on`].
pub fn read_trace(path: impl AsRef<Path>) -> Result<Vec<TraceEvent>, TraceError> {
    read_trace_on(&StdVfs, path.as_ref())
}

/// Reads a trace file back from `vfs`: verifies the header and every
/// line's seal, returning the events in file order.
///
/// # Errors
///
/// Returns [`TraceError::MissingHeader`] when the file is empty or its
/// first line is not an intact sealed header, [`TraceError::Corrupt`] for
/// a bad seal or an unparseable line after that, and [`TraceError::Io`]
/// when the file cannot be read.
pub fn read_trace_on(vfs: &dyn Vfs, path: &Path) -> Result<Vec<TraceEvent>, TraceError> {
    let content = vfs.read_to_string(path)?;
    let mut events = Vec::new();
    let mut saw_header = false;
    for (index, line) in content.lines().enumerate() {
        let number = index + 1;
        if line.trim().is_empty() {
            continue;
        }
        let corrupt = |detail: String| {
            if number == 1 {
                TraceError::MissingHeader { detail }
            } else {
                TraceError::Corrupt {
                    line: number,
                    detail,
                }
            }
        };
        let sealed: TraceLine =
            serde_json::from_str(line).map_err(|err| corrupt(err.to_string()))?;
        if !sealed.verify() {
            return Err(corrupt("seal mismatch".to_string()));
        }
        if number == 1 {
            let header: TraceHeader =
                serde_json::from_str(&sealed.body).map_err(|err| corrupt(err.to_string()))?;
            if header.version != TRACE_VERSION || header.stream != "nms-trace" {
                return Err(corrupt(format!(
                    "unexpected header: version {} stream {:?}",
                    header.version, header.stream
                )));
            }
            saw_header = true;
            continue;
        }
        events.push(
            serde_json::from_str(&sealed.body)
                .map_err(|err| corrupt(err.to_string()))?,
        );
    }
    if !saw_header {
        return Err(TraceError::MissingHeader {
            detail: "file has no lines".to_string(),
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_trace(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("nms-obs-trace-{tag}-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn events_round_trip_through_the_sealed_file() {
        let path = temp_trace("roundtrip");
        let written = vec![
            TraceEvent::new("game_round")
                .day(0)
                .field("round", 1.0)
                .field("delta", 0.25),
            TraceEvent::new("quarantine")
                .day(3)
                .field("meter", 2.0)
                .label("transition", "tripped"),
        ];
        {
            let trace = JsonlTrace::create(&path).unwrap();
            for event in &written {
                trace.event(event);
            }
            assert_eq!(trace.dropped(), 0);
        }
        let read = read_trace(&path).unwrap();
        assert_eq!(read, written);
        assert_eq!(read[1].label_value("transition"), Some("tripped"));
        assert_eq!(read[0].field_value("delta"), Some(0.25));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tampered_line_is_detected() {
        let path = temp_trace("tamper");
        {
            let trace = JsonlTrace::create(&path).unwrap();
            trace.event(&TraceEvent::new("fix").day(1).field("slot", 30.0));
        }
        let tampered = std::fs::read_to_string(&path)
            .unwrap()
            .replace("30", "31");
        std::fs::write(&path, tampered).unwrap();
        match read_trace(&path) {
            Err(TraceError::Corrupt { line, detail }) => {
                assert_eq!(line, 2);
                assert!(detail.contains("seal"), "{detail}");
            }
            other => panic!("expected corrupt line, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_header_is_rejected() {
        let path = temp_trace("header");
        std::fs::write(
            &path,
            {
                let body = "{\"version\":99,\"stream\":\"nms-trace\"}".to_string();
                let line = TraceLine::seal(body);
                format!("{}\n", serde_json::to_string(&line).unwrap())
            },
        )
        .unwrap();
        assert!(matches!(
            read_trace(&path),
            Err(TraceError::MissingHeader { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_or_torn_header_is_a_typed_error_not_a_hole() {
        // An empty file used to read back as "no events"; now the missing
        // header is a typed error, so a torn creation can't masquerade as
        // a quiet run.
        let path = temp_trace("empty");
        std::fs::write(&path, b"").unwrap();
        assert!(matches!(
            read_trace(&path),
            Err(TraceError::MissingHeader { .. })
        ));
        // A torn header line (prefix of a sealed line) is the same story.
        std::fs::write(&path, b"{\"hash\":\"0123456789abcdef\",\"bo").unwrap();
        assert!(matches!(
            read_trace(&path),
            Err(TraceError::MissingHeader { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn create_on_stages_the_header_through_a_tmp_sibling() {
        use nms_vfs::{FaultVfs, IoFaultPlan};

        // Kill the very first operation: the staging write itself. The
        // destination path must not exist at all afterwards — no torn,
        // headerless trace file.
        let vfs = FaultVfs::new(IoFaultPlan::kill_at(0));
        let path = PathBuf::from("trace.jsonl");
        assert!(JsonlTrace::create_on(Arc::new(vfs.clone()), &path).is_err());
        vfs.revive();
        assert!(
            vfs.read_file(&path).is_none(),
            "killed creation must leave no destination file"
        );

        // Kill the rename instead: the tmp sibling holds the staged header
        // but the destination still does not exist.
        let vfs = FaultVfs::new(IoFaultPlan::kill_at(1));
        assert!(JsonlTrace::create_on(Arc::new(vfs.clone()), &path).is_err());
        vfs.revive();
        assert!(vfs.read_file(&path).is_none());

        // And a clean creation is immediately readable with zero events.
        let vfs = FaultVfs::new(IoFaultPlan::none());
        let trace = JsonlTrace::create_on(Arc::new(vfs.clone()), &path).unwrap();
        trace.event(&TraceEvent::new("ping").day(0));
        assert_eq!(trace.dropped(), 0);
        let events = read_trace_on(&vfs, &path).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "ping");
    }

    #[test]
    fn post_header_drops_surface_in_the_shared_ledger() {
        use nms_vfs::{FaultVfs, IoFaultPlan};

        // Probe how many VFS ops a clean creation consumes, then kill the
        // disk exactly there: the header lands, every append after it
        // fails.
        let path = PathBuf::from("trace.jsonl");
        let probe = FaultVfs::new(IoFaultPlan::none());
        drop(JsonlTrace::create_on(Arc::new(probe.clone()), &path).unwrap());
        let creation_ops = probe.ops();

        let vfs = FaultVfs::new(IoFaultPlan::kill_at(creation_ops));
        let ledger = StorageFaultLedger::new();
        let trace = JsonlTrace::create_on(Arc::new(vfs.clone()), &path)
            .unwrap()
            .with_ledger(ledger.clone());
        trace.event(&TraceEvent::new("lost").day(0));
        trace.event(&TraceEvent::new("lost").day(1));
        assert_eq!(trace.dropped(), 2, "local counter still works");
        assert_eq!(
            ledger.snapshot().trace_dropped,
            2,
            "drops after a successful header must reach the shared ledger"
        );
        // The header itself survived; the killed append may have left a
        // torn tail, which the seal must surface as a typed corruption —
        // never as silently parsed events.
        vfs.revive();
        match read_trace_on(&vfs, &path) {
            Ok(events) => assert!(events.is_empty(), "dropped events must not appear"),
            Err(TraceError::Corrupt { line, .. }) => assert!(line >= 2, "header is intact"),
            Err(other) => panic!("unexpected read-back error: {other}"),
        }
    }

    #[test]
    fn seal_event_matches_the_file_line() {
        let path = temp_trace("sealhelper");
        let event = TraceEvent::new("game_round").day(2).field("round", 3.0);
        {
            let trace = JsonlTrace::create(&path).unwrap();
            trace.event(&event);
        }
        let file = std::fs::read_to_string(&path).unwrap();
        let line = file.lines().nth(1).unwrap();
        assert_eq!(seal_event(&event).as_deref(), Some(line));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fnv_matches_the_journal_constants() {
        // Known FNV-1a vector: the empty input hashes to the offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
