//! Hierarchical span profiler: a [`Recorder`] that turns
//! `span_enter`/`span_exit` pairs into a call tree with wall-clock
//! attribution.
//!
//! [`SpanRecorder`] is the profiling sink for the instrumentation points
//! the pipeline already has: day phases, solver stages, journal appends,
//! fleet ladder rungs. Each node of the tree tracks how many times the
//! span ran, its **total** wall time (including children) and its **self**
//! time (total minus children), plus any counters recorded while the span
//! was open — so "where did the day go?" is answerable from one artifact.
//!
//! ## Threading model
//!
//! Spans describe the *sequential* skeleton of a run. The first
//! `span_enter` pins the recorder to its home thread; span and counter
//! calls arriving from any other thread are ignored rather than garbling
//! the tree. That is exactly the PR 4 contract's shape: parallel regions
//! record only commutative metrics (which a [`MetricsRegistry`] teed next
//! to this recorder still receives), while the span tree profiles the
//! supervisor/driver thread that owns control flow.
//!
//! Wall times here are telemetry only — nothing reads them back — so
//! `Instant::now()` stays off the determinism contract, and an active
//! `SpanRecorder` leaves results bit-identical (asserted alongside the
//! other recorders in `tests/obs_determinism.rs`).
//!
//! ## Exports
//!
//! [`SpanRecorder::profile`] snapshots the tree (open spans are credited
//! their elapsed-so-far, so mid-run snapshots are well-formed).
//! [`SpanProfile::report`] renders a human-readable indented table;
//! [`SpanProfile::collapsed`] renders the flamegraph-compatible
//! collapsed-stack format (`root;child;leaf <self-microseconds>` per
//! line), and [`parse_collapsed`] reads that format back.
//!
//! [`MetricsRegistry`]: crate::MetricsRegistry

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

use crate::Recorder;

/// One node of the recorded span tree.
struct Node {
    name: &'static str,
    parent: usize,
    children: Vec<usize>,
    calls: u64,
    total_secs: f64,
    child_secs: f64,
    counters: BTreeMap<String, u64>,
}

impl Node {
    fn new(name: &'static str, parent: usize) -> Self {
        Self {
            name,
            parent,
            children: Vec::new(),
            calls: 0,
            total_secs: 0.0,
            child_secs: 0.0,
            counters: BTreeMap::new(),
        }
    }
}

/// A span currently open on the stack.
struct Frame {
    node: usize,
    started: Instant,
}

struct State {
    /// Node 0 is the synthetic root: never timed, it anchors top-level
    /// spans and absorbs counters recorded outside any span.
    nodes: Vec<Node>,
    stack: Vec<Frame>,
    home: Option<ThreadId>,
}

impl State {
    fn current(&self) -> usize {
        self.stack.last().map(|frame| frame.node).unwrap_or(0)
    }

    fn child_named(&mut self, parent: usize, name: &'static str) -> usize {
        if let Some(&index) = self.nodes[parent]
            .children
            .iter()
            .find(|&&child| self.nodes[child].name == name)
        {
            return index;
        }
        let index = self.nodes.len();
        self.nodes.push(Node::new(name, parent));
        self.nodes[parent].children.push(index);
        index
    }

    /// Closes the top frame, crediting its elapsed time to its node and
    /// to the parent's child tally.
    fn pop_frame(&mut self) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let elapsed = frame.started.elapsed().as_secs_f64();
        let parent = self.nodes[frame.node].parent;
        self.nodes[frame.node].total_secs += elapsed;
        if parent != frame.node {
            self.nodes[parent].child_secs += elapsed;
        }
    }
}

/// The span-tree profiling recorder. Share it (via `Arc` in a
/// [`Tee`](crate::Tee)) alongside a metrics registry: the registry keeps
/// the commutative totals from every thread, this keeps the sequential
/// call tree.
pub struct SpanRecorder {
    inner: Mutex<State>,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanRecorder {
    /// Creates an empty profiler. The first `span_enter` pins its home
    /// thread.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(State {
                nodes: vec![Node::new("", 0)],
                stack: Vec::new(),
                home: None,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // Same poison policy as the metrics registry: telemetry keeps
        // best-effort working after a panicking caller.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// `true` when the calling thread owns the tree (or no thread does
    /// yet). Must be called with the lock held via the passed state.
    fn is_home(state: &mut State) -> bool {
        let me = std::thread::current().id();
        match state.home {
            Some(home) => home == me,
            None => {
                state.home = Some(me);
                true
            }
        }
    }

    /// Snapshots the recorded tree. Spans still open are credited their
    /// elapsed-so-far (in the snapshot only), so a mid-run profile is
    /// well-formed: every node's self time stays non-negative.
    pub fn profile(&self) -> SpanProfile {
        let state = self.lock();
        let mut totals: Vec<f64> = state.nodes.iter().map(|node| node.total_secs).collect();
        let mut child: Vec<f64> = state.nodes.iter().map(|node| node.child_secs).collect();
        for frame in &state.stack {
            let elapsed = frame.started.elapsed().as_secs_f64();
            totals[frame.node] += elapsed;
            let parent = state.nodes[frame.node].parent;
            if parent != frame.node {
                child[parent] += elapsed;
            }
        }
        fn build(
            state: &State,
            totals: &[f64],
            child: &[f64],
            index: usize,
        ) -> SpanNode {
            SpanNode {
                name: state.nodes[index].name.to_string(),
                calls: state.nodes[index].calls,
                total_secs: totals[index],
                self_secs: (totals[index] - child[index]).max(0.0),
                counters: state.nodes[index].counters.clone(),
                children: state.nodes[index]
                    .children
                    .iter()
                    .map(|&c| build(state, totals, child, c))
                    .collect(),
            }
        }
        SpanProfile {
            roots: state.nodes[0]
                .children
                .iter()
                .map(|&c| build(&state, &totals, &child, c))
                .collect(),
            orphan_counters: state.nodes[0].counters.clone(),
        }
    }
}

impl Recorder for SpanRecorder {
    // `enabled` stays false: this recorder ignores events, and call sites
    // consult `enabled` only to decide whether to build event payloads.

    fn add(&self, name: &str, by: u64) {
        let mut state = self.lock();
        if !Self::is_home(&mut state) {
            return;
        }
        let node = state.current();
        *state.nodes[node].counters.entry(name.to_string()).or_insert(0) += by;
    }

    fn span_enter(&self, name: &'static str) {
        let mut state = self.lock();
        if !Self::is_home(&mut state) {
            return;
        }
        let parent = state.current();
        let node = state.child_named(parent, name);
        state.nodes[node].calls += 1;
        state.stack.push(Frame {
            node,
            started: Instant::now(),
        });
    }

    fn span_exit(&self, name: &'static str) {
        let mut state = self.lock();
        if !Self::is_home(&mut state) {
            return;
        }
        // Exit the named span if it is open, closing any unexited inner
        // spans on the way; a name that is not on the stack is ignored
        // (a stray exit must not close someone else's span).
        let Some(position) = state
            .stack
            .iter()
            .rposition(|frame| state.nodes[frame.node].name == name)
        else {
            return;
        };
        while state.stack.len() > position {
            state.pop_frame();
        }
    }
}

/// One node of a snapshot taken by [`SpanRecorder::profile`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// The span's name as given to `span_enter`.
    pub name: String,
    /// Times the span was entered.
    pub calls: u64,
    /// Wall seconds inside the span, children included.
    pub total_secs: f64,
    /// Wall seconds inside the span excluding child spans.
    pub self_secs: f64,
    /// Counters recorded (via [`Recorder::add`]) while this span was the
    /// innermost open span on the home thread.
    pub counters: BTreeMap<String, u64>,
    /// Child spans in first-entered order.
    pub children: Vec<SpanNode>,
}

/// An immutable snapshot of the span tree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanProfile {
    /// Top-level spans in first-entered order.
    pub roots: Vec<SpanNode>,
    /// Counters recorded while no span was open.
    pub orphan_counters: BTreeMap<String, u64>,
}

impl SpanProfile {
    /// Renders a human-readable indented profile: per span its call
    /// count, total and self wall time, and any attributed counters.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<40} {:>8} {:>12} {:>12}",
            "span", "calls", "total_s", "self_s"
        );
        fn walk(out: &mut String, node: &SpanNode, depth: usize) {
            let indent = "  ".repeat(depth);
            let _ = writeln!(
                out,
                "{:<40} {:>8} {:>12.6} {:>12.6}",
                format!("{indent}{}", node.name),
                node.calls,
                node.total_secs,
                node.self_secs,
            );
            for (name, value) in &node.counters {
                let _ = writeln!(out, "{indent}  · {name} = {value}");
            }
            for child in &node.children {
                walk(out, child, depth + 1);
            }
        }
        for root in &self.roots {
            walk(&mut out, root, 0);
        }
        for (name, value) in &self.orphan_counters {
            let _ = writeln!(out, "(no span) · {name} = {value}");
        }
        out
    }

    /// Renders the collapsed-stack (flamegraph-compatible) format: one
    /// line per node, `path;from;root <self-time-in-microseconds>`.
    /// Every node is emitted (zero self time included) so the export is a
    /// lossless skeleton of the tree; [`parse_collapsed`] reads it back.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        fn walk(out: &mut String, node: &SpanNode, path: &mut Vec<String>) {
            path.push(node.name.clone());
            let micros = (node.self_secs * 1e6).round() as u64;
            let _ = writeln!(out, "{} {micros}", path.join(";"));
            for child in &node.children {
                walk(out, child, path);
            }
            path.pop();
        }
        let mut path = Vec::new();
        for root in &self.roots {
            walk(&mut out, root, &mut path);
        }
        out
    }
}

/// Parses the collapsed-stack format emitted by [`SpanProfile::collapsed`]
/// back into `(path, self_microseconds)` rows, in file order.
///
/// # Errors
///
/// Returns a description of the first malformed line: a missing value
/// column, a non-numeric value, or an empty stack path.
pub fn parse_collapsed(text: &str) -> Result<Vec<(Vec<String>, u64)>, String> {
    let mut rows = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let number = index + 1;
        let (stack, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {number}: no value column in {line:?}"))?;
        let value: u64 = value
            .parse()
            .map_err(|err| format!("line {number}: bad value {value:?}: {err}"))?;
        if stack.is_empty() || stack.split(';').any(str::is_empty) {
            return Err(format!("line {number}: empty frame in stack {stack:?}"));
        }
        rows.push((stack.split(';').map(str::to_string).collect(), value));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    #[test]
    fn spans_nest_and_attribute_self_time_and_counters() {
        let rec = SpanRecorder::new();
        {
            let _day = span(&rec, "day");
            rec.add("slots", 24);
            {
                let _solve = span(&rec, "solve");
                rec.add("rounds", 3);
            }
            {
                let _solve = span(&rec, "solve");
                rec.add("rounds", 2);
            }
        }
        let profile = rec.profile();
        assert_eq!(profile.roots.len(), 1);
        let day = &profile.roots[0];
        assert_eq!(day.name, "day");
        assert_eq!(day.calls, 1);
        assert_eq!(day.counters.get("slots"), Some(&24));
        assert_eq!(day.children.len(), 1, "same-name spans share a node");
        let solve = &day.children[0];
        assert_eq!(solve.calls, 2);
        assert_eq!(solve.counters.get("rounds"), Some(&5));
        assert!(day.total_secs >= solve.total_secs);
        assert!(day.self_secs >= 0.0 && solve.self_secs >= 0.0);
        assert!((day.self_secs + solve.total_secs - day.total_secs).abs() < 1e-9);
    }

    #[test]
    fn mismatched_exits_are_contained() {
        let rec = SpanRecorder::new();
        rec.span_exit("never_entered");
        rec.span_enter("outer");
        rec.span_enter("inner");
        // Exiting the outer span closes the unexited inner one too.
        rec.span_exit("outer");
        rec.span_exit("outer");
        let profile = rec.profile();
        assert_eq!(profile.roots.len(), 1);
        assert_eq!(profile.roots[0].name, "outer");
        assert_eq!(profile.roots[0].children[0].name, "inner");
    }

    #[test]
    fn foreign_thread_spans_are_ignored() {
        let rec = std::sync::Arc::new(SpanRecorder::new());
        rec.span_enter("home");
        let foreign = std::sync::Arc::clone(&rec);
        std::thread::spawn(move || {
            foreign.span_enter("intruder");
            foreign.add("intruder_counter", 1);
        })
        .join()
        .unwrap();
        rec.span_exit("home");
        let profile = rec.profile();
        assert_eq!(profile.roots.len(), 1);
        assert_eq!(profile.roots[0].name, "home");
        assert!(profile.roots[0].counters.is_empty());
        assert!(profile.orphan_counters.is_empty());
    }

    #[test]
    fn mid_run_profile_credits_open_spans() {
        let rec = SpanRecorder::new();
        rec.span_enter("open");
        let profile = rec.profile();
        assert_eq!(profile.roots[0].calls, 1);
        assert!(profile.roots[0].total_secs >= 0.0);
        rec.span_exit("open");
    }

    #[test]
    fn collapsed_export_round_trips() {
        let rec = SpanRecorder::new();
        {
            let _a = span(&rec, "fleet_day");
            let _b = span(&rec, "ladder");
            let _c = span(&rec, "resume");
        }
        {
            let _a = span(&rec, "fleet_day");
            let _d = span(&rec, "harvest");
        }
        let profile = rec.profile();
        let collapsed = profile.collapsed();
        let rows = parse_collapsed(&collapsed).expect("round trip");
        let paths: Vec<String> = rows.iter().map(|(path, _)| path.join(";")).collect();
        assert_eq!(
            paths,
            vec![
                "fleet_day",
                "fleet_day;ladder",
                "fleet_day;ladder;resume",
                "fleet_day;harvest",
            ]
        );
        // Values match the profile's self times at microsecond rounding.
        let day_micros = (profile.roots[0].self_secs * 1e6).round() as u64;
        assert_eq!(rows[0].1, day_micros);
    }

    #[test]
    fn parse_collapsed_rejects_malformed_lines() {
        assert!(parse_collapsed("a;b 12\n\n c;d 9").is_ok());
        assert!(parse_collapsed("no_value_column").is_err());
        assert!(parse_collapsed("a;b twelve").is_err());
        assert!(parse_collapsed("a;;b 3").is_err());
        assert!(parse_collapsed(" 3").is_err());
    }

    #[test]
    fn report_renders_counters_and_indentation() {
        let rec = SpanRecorder::new();
        rec.add("orphan", 7);
        {
            let _day = span(&rec, "day");
            rec.add("slots", 24);
        }
        let text = rec.profile().report();
        assert!(text.contains("day"), "{text}");
        assert!(text.contains("slots = 24"), "{text}");
        assert!(text.contains("(no span) · orphan = 7"), "{text}");
    }
}
