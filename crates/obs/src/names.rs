//! Well-known metric names shared between emitters and dashboards.
//!
//! Metric names are stringly-typed at the [`crate::Recorder`] seam by
//! design (the trait stays object-safe and zero-dependency), which makes
//! typos silent: an emitter and an exposition consumer that disagree on a
//! name simply never meet. The constants here are the contract for the
//! names that cross crate boundaries — emitters record through them and
//! tests assert on them, so a rename is a compile error instead of a
//! dashboard that quietly flatlines.

/// Speculative day-pipeline metrics emitted by the `nms-sim` supervised
/// runner (DESIGN.md §15).
pub mod pipeline {
    /// Counter: next-day speculations submitted to the pipeline worker.
    pub const SPECULATION_LAUNCHED: &str = "pipeline_speculation_launched";
    /// Counter: speculations whose compromise-set assumption held and whose
    /// precomputed day inputs were committed.
    pub const SPECULATION_COMMITTED: &str = "pipeline_speculation_committed";
    /// Counter: speculations discarded (assumption diverged or the worker
    /// failed); the day recomputed inline, bit-identically.
    pub const SPECULATION_DISCARDED: &str = "pipeline_speculation_discarded";
}

/// Fleet-supervision metrics emitted by the `nms-fleet` shard runner.
pub mod fleet {
    /// Counter: shard-days closed successfully (any rung).
    pub const DAYS_CLOSED: &str = "fleet_days_closed";
    /// Counter: day-level retry attempts consumed (ladder rung 1).
    pub const DAY_RETRIES: &str = "fleet_day_retries";
    /// Counter: full journal resumes, i.e. shard restarts (ladder rung 2).
    pub const SHARD_RESTARTS: &str = "fleet_shard_restarts";
    /// Counter: shard quarantines, i.e. breaker trips (ladder rung 3).
    pub const QUARANTINES: &str = "fleet_quarantines";
    /// Counter: day closes that breached the fleet's day-close deadline.
    pub const DEADLINE_BREACHES: &str = "fleet_deadline_breaches";
    /// Counter: days covered by degraded suspect-floor verdicts instead of
    /// real detection.
    pub const SUSPECT_FLOOR_DAYS: &str = "fleet_suspect_floor_days";
    /// Counter: shard panics contained by the supervisor.
    pub const PANICS_CONTAINED: &str = "fleet_panics_contained";
    /// Histogram: wall-clock seconds to close one shard-day.
    pub const DAY_CLOSE_SECONDS: &str = "fleet_day_close_seconds";
    /// Gauge: shards currently quarantined.
    pub const SHARDS_QUARANTINED: &str = "fleet_shards_quarantined";
    /// Gauge: shards currently active (not quarantined, not finished).
    pub const SHARDS_ACTIVE: &str = "fleet_shards_active";
}
