//! Observability layer for the detection pipeline (DESIGN.md §10).
//!
//! Every stage of the pipeline — game rounds, cross-entropy solves, DP
//! sweeps, per-day detection phases, sanitize/quarantine transitions,
//! journal appends, parallel workers — reports what it did through one
//! narrow [`Recorder`] trait. The trait has three kinds of signal:
//!
//! - **counters/gauges/histograms** (`add` / `gauge` / `observe`) —
//!   order-independent aggregations, safe to record from parallel workers;
//! - **structured events** (`event`) — one [`TraceEvent`] per interesting
//!   thing that happened, written as hash-sealed JSONL by [`JsonlTrace`]
//!   (the same sealed-line discipline as the run journal);
//! - **nothing** — the default. Every recorder method is a provided no-op,
//!   and [`NoopRecorder`] is what every pre-existing entry point threads
//!   through, so recording is strictly opt-in.
//!
//! ## The RNG-neutrality contract
//!
//! Recording must never change *results*, only telemetry:
//!
//! 1. No recorder method receives or draws from an RNG, and no
//!    instrumented call site consumes an extra draw on behalf of
//!    recording — the caller-visible RNG stream is bit-identical with any
//!    recorder, active or not.
//! 2. Recorded values either are deterministic quantities read from
//!    results the stage already produced (rounds, iterations, cache
//!    tallies) or are wall-clock timings, which exist only inside the
//!    telemetry and never feed back into control flow.
//! 3. Inside parallel regions only the commutative metric methods are
//!    used by the workspace's instrumentation, so metric *totals* stay
//!    reproducible; event order (and per-worker load split) is the one
//!    thing allowed to vary run-to-run.
//!
//! `tests/obs_determinism.rs` asserts the consequence: an active
//! [`JsonlTrace`]+[`MetricsRegistry`] recorder produces bit-identical
//! detection results to [`NoopRecorder`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod names;
pub mod span;
pub mod trace;

use std::sync::Arc;
use std::time::Instant;

pub use metrics::{Histogram, MetricsRegistry};
pub use span::{parse_collapsed, SpanProfile, SpanRecorder};
pub use trace::{
    read_trace, read_trace_on, seal_event, JsonlTrace, TraceError, TraceEvent, TraceField,
    TraceLabel, TRACE_VERSION,
};

/// A sink for pipeline telemetry. All methods are provided no-ops, so a
/// sink implements only what it cares about; all methods take `&self`, so
/// one recorder can be shared across worker threads (`Send + Sync` is part
/// of the trait's contract for exactly that reason).
pub trait Recorder: Send + Sync {
    /// `true` when [`Recorder::event`] goes somewhere. Call sites use this
    /// to skip building event payloads for no-op recorders, keeping the
    /// instrumented hot paths free even of formatting cost.
    fn enabled(&self) -> bool {
        false
    }

    /// Records a structured event.
    fn event(&self, event: &TraceEvent) {
        let _ = event;
    }

    /// Adds `by` to the counter `name`.
    fn add(&self, name: &str, by: u64) {
        let _ = (name, by);
    }

    /// Sets the gauge `name` to `value`.
    fn gauge(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Records one observation of `value` into the histogram `name`.
    fn observe(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Enters a named profiling span. Spans nest: a recorder that builds a
    /// span tree (see [`SpanRecorder`]) pushes `name` onto its stack. Like
    /// every other method this is a provided no-op, so pre-existing
    /// recorders are unaffected. Prefer the RAII [`span`] helper over
    /// calling enter/exit by hand — it exits on every early-return path.
    fn span_enter(&self, name: &'static str) {
        let _ = name;
    }

    /// Exits the named span entered by the matching
    /// [`Recorder::span_enter`].
    fn span_exit(&self, name: &'static str) {
        let _ = name;
    }
}

/// RAII guard returned by [`span`]: exits its span on drop, so `?` and
/// early returns cannot leave the profiler's stack unbalanced.
pub struct SpanGuard<'a> {
    rec: &'a dyn Recorder,
    name: &'static str,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.rec.span_exit(self.name);
    }
}

/// Enters a profiling span on `rec`, exiting it when the guard drops.
///
/// Span names are `&'static str` by design: spans label *code regions*
/// (phases, rungs, solver stages), not data, so the set of names is finite
/// and known at compile time — and the no-op path stays free of any
/// allocation or formatting.
pub fn span<'a>(rec: &'a dyn Recorder, name: &'static str) -> SpanGuard<'a> {
    rec.span_enter(name);
    SpanGuard { rec, name }
}

/// The do-nothing recorder every pre-observability entry point threads
/// through. Zero state, zero cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Fans every signal out to several sinks — e.g. a [`JsonlTrace`] for
/// events plus a [`MetricsRegistry`] for aggregates.
pub struct Tee {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl Tee {
    /// Builds a tee over the given sinks.
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> Self {
        Self { sinks }
    }
}

impl Recorder for Tee {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|sink| sink.enabled())
    }

    fn event(&self, event: &TraceEvent) {
        for sink in &self.sinks {
            sink.event(event);
        }
    }

    fn add(&self, name: &str, by: u64) {
        for sink in &self.sinks {
            sink.add(name, by);
        }
    }

    fn gauge(&self, name: &str, value: f64) {
        for sink in &self.sinks {
            sink.gauge(name, value);
        }
    }

    fn observe(&self, name: &str, value: f64) {
        for sink in &self.sinks {
            sink.observe(name, value);
        }
    }

    fn span_enter(&self, name: &'static str) {
        for sink in &self.sinks {
            sink.span_enter(name);
        }
    }

    fn span_exit(&self, name: &'static str) {
        for sink in &self.sinks {
            sink.span_exit(name);
        }
    }
}

/// A wall-clock stopwatch for phase timings. Timings recorded through this
/// are telemetry only — nothing in the pipeline reads them back, which is
/// what keeps `Instant::now()` off the determinism contract.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts the watch.
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_disabled_and_silent() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.add("x", 1);
        rec.gauge("x", 1.0);
        rec.observe("x", 1.0);
        rec.event(&TraceEvent::new("x"));
    }

    #[test]
    fn tee_fans_out_and_reports_enabled() {
        let metrics = MetricsRegistry::new();
        let tee = Tee::new(vec![Arc::new(metrics.clone())]);
        assert!(!tee.enabled(), "metrics-only tee has no event sink");
        tee.add("hits", 2);
        tee.add("hits", 3);
        tee.gauge("level", 0.5);
        tee.observe("secs", 0.1);
        assert_eq!(metrics.counter("hits"), 5);
        assert_eq!(metrics.gauge_value("level"), Some(0.5));
    }

    #[test]
    fn stopwatch_moves_forward() {
        let watch = Stopwatch::start();
        assert!(watch.secs() >= 0.0);
    }
}
