//! In-memory metrics: counters, gauges, and fixed-bucket histograms, with
//! a Prometheus-style text exposition writer.
//!
//! The registry is a shared handle (`Clone` clones the handle, not the
//! data) guarded by one mutex — contention is irrelevant at the rates the
//! pipeline records (per solve / per day, not per sample). All recording
//! operations are commutative, so totals are independent of the order in
//! which parallel workers land their updates.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

use crate::{Recorder, TraceEvent};

/// Default histogram bucket upper bounds: an exponential ladder that
/// covers both sub-millisecond timings and iteration counts up to a few
/// hundred.
const DEFAULT_BOUNDS: [f64; 12] = [
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 60.0, 100.0, 300.0, 1000.0,
];

/// A fixed-bucket histogram: `counts[i]` tallies observations `<=
/// bounds[i]`, with one extra overflow (`+Inf`) bucket at the end.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    total: u64,
}

impl Histogram {
    /// Builds an empty histogram. Non-finite bounds are dropped and the
    /// rest sorted ascending, so any input yields a usable histogram; an
    /// empty bound list leaves only the overflow bucket.
    pub fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        bounds.dedup();
        let counts = vec![0; bounds.len() + 1];
        Self {
            bounds,
            counts,
            sum: 0.0,
            total: 0,
        }
    }

    /// Records one observation. NaN observations land in the overflow
    /// bucket and contribute nothing to the sum.
    pub fn observe(&mut self, value: f64) {
        let index = self
            .bounds
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(self.bounds.len());
        self.counts[index] += 1;
        self.total += 1;
        if value.is_finite() {
            self.sum += value;
        }
    }

    /// The bucket upper bounds (the final `+Inf` bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Estimates quantile `q` (in `[0, 1]`) from the fixed buckets by
    /// linear interpolation inside the containing bucket — the same
    /// estimator as PromQL's `histogram_quantile`: the first bucket
    /// interpolates from zero, and a target rank landing in the overflow
    /// bucket reports the highest finite bound (the estimator cannot see
    /// past it). `None` for an empty histogram or a `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = q * self.total as f64;
        let mut cumulative = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            let below = cumulative;
            cumulative += count;
            if (cumulative as f64) < rank || count == 0 {
                continue;
            }
            let Some(&upper) = self.bounds.get(index) else {
                // Overflow bucket: the data is beyond the last finite
                // bound, which is the best estimate available.
                return self.bounds.last().copied();
            };
            let lower = if index == 0 { 0.0 } else { self.bounds[index - 1] };
            let fraction = (rank - below as f64) / count as f64;
            return Some(lower + (upper - lower) * fraction);
        }
        self.bounds.last().copied()
    }

    /// Adds `other`'s observations into this histogram. Bucket layouts
    /// must match (both sides should come from the same registration);
    /// mismatched layouts merge only the scalar totals and collapse the
    /// per-bucket detail into the overflow bucket, keeping `_count`/`_sum`
    /// honest rather than silently mis-binning.
    pub fn merge(&mut self, other: &Histogram) {
        self.total += other.total;
        self.sum += other.sum;
        if self.bounds == other.bounds {
            for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
                *mine += theirs;
            }
        } else if let Some(overflow) = self.counts.last_mut() {
            *overflow += other.total;
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// The in-memory metrics sink: counters, gauges, histograms, and a
/// Prometheus-style exposition renderer. Cloning shares the underlying
/// storage.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock means a panicking recorder call elsewhere;
        // telemetry keeps best-effort working rather than cascading.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Pre-registers `name` as a histogram with explicit bucket bounds.
    /// Without this, the first [`MetricsRegistry::observe_value`] creates
    /// the histogram with default bounds.
    pub fn register_histogram(&self, name: &str, bounds: &[f64]) {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds));
    }

    /// Adds `by` to the counter `name` (created at zero on first use).
    pub fn add_counter(&self, name: &str, by: u64) {
        *self.lock().counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets the gauge `name`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    /// Records one histogram observation.
    pub fn observe_value(&self, name: &str, value: f64) {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(&DEFAULT_BOUNDS))
            .observe(value);
    }

    /// Current value of counter `name` (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// A snapshot of histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// Renders every metric in the Prometheus text exposition format.
    /// Metric names are prefixed `nms_` and sanitized to the exposition
    /// charset.
    pub fn render_prometheus(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for (name, value) in &inner.counters {
            let name = metric_name(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &inner.gauges {
            let name = metric_name(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, histogram) in &inner.histograms {
            let name = metric_name(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (bound, count) in histogram.bounds.iter().zip(&histogram.counts) {
                cumulative += count;
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", histogram.total);
            let _ = writeln!(out, "{name}_sum {}", histogram.sum);
            let _ = writeln!(out, "{name}_count {}", histogram.total);
            // Bucket-interpolated quantiles, rendered in the summary style
            // so dashboards get p50/p95/p99 without a PromQL layer.
            for q in [0.5, 0.95, 0.99] {
                if let Some(value) = histogram.quantile(q) {
                    let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {value}");
                }
            }
        }
        out
    }

    /// Folds every metric of `other` into this registry: counters add,
    /// gauges take `other`'s value (last write wins, as for a direct
    /// `set_gauge`), histograms merge bucket-wise. This is the reduction
    /// step for striped registries (`nms-serve`'s `SharedRegistry`), where
    /// each metric name lives in exactly one stripe so the folds are
    /// disjoint.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        // Snapshot `other` first: self and other may share storage (or be
        // locked in opposite order elsewhere), and cloning under one lock
        // at a time cannot deadlock.
        let theirs = {
            let other = other.lock();
            (
                other.counters.clone(),
                other.gauges.clone(),
                other.histograms.clone(),
            )
        };
        let mut inner = self.lock();
        for (name, value) in theirs.0 {
            *inner.counters.entry(name).or_insert(0) += value;
        }
        for (name, value) in theirs.1 {
            inner.gauges.insert(name, value);
        }
        for (name, histogram) in theirs.2 {
            match inner.histograms.get_mut(&name) {
                Some(mine) => mine.merge(&histogram),
                None => {
                    inner.histograms.insert(name, histogram);
                }
            }
        }
    }

    /// Writes the exposition atomically (tmp + rename, the journal's
    /// write discipline) so a scraper never reads a torn file.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write_prometheus(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.render_prometheus())?;
        std::fs::rename(&tmp, path)
    }
}

/// `nms_`-prefixed exposition-safe metric name.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("nms_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

impl Recorder for MetricsRegistry {
    // `enabled` stays false: the registry ignores events, and call sites
    // only consult `enabled` to decide whether building an event payload
    // is worth it.
    fn event(&self, event: &TraceEvent) {
        let _ = event;
    }

    fn add(&self, name: &str, by: u64) {
        self.add_counter(name, by);
    }

    fn gauge(&self, name: &str, value: f64) {
        self.set_gauge(name, value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.observe_value(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let registry = MetricsRegistry::new();
        registry.add_counter("hits", 3);
        registry.add_counter("hits", 4);
        registry.set_gauge("entropy", 1.25);
        registry.set_gauge("entropy", 0.5);
        assert_eq!(registry.counter("hits"), 7);
        assert_eq!(registry.counter("absent"), 0);
        assert_eq!(registry.gauge_value("entropy"), Some(0.5));
        assert_eq!(registry.gauge_value("absent"), None);
    }

    #[test]
    fn empty_histogram_renders_zero() {
        let registry = MetricsRegistry::new();
        registry.register_histogram("idle_seconds", &[0.1, 1.0]);
        let h = registry.histogram("idle_seconds").unwrap();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.counts(), &[0, 0, 0]);
        let exposition = registry.render_prometheus();
        assert!(exposition.contains("nms_idle_seconds_count 0"));
        assert!(exposition.contains("nms_idle_seconds_bucket{le=\"+Inf\"} 0"));
    }

    #[test]
    fn single_sample_lands_in_its_bucket() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(5.0);
        assert_eq!(h.counts(), &[0, 1, 0]);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 5.0);
        // Boundary values are inclusive on the upper bound.
        let mut edge = Histogram::new(&[1.0]);
        edge.observe(1.0);
        assert_eq!(edge.counts(), &[1, 0]);
    }

    #[test]
    fn overflow_and_nan_land_in_the_inf_bucket() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(1e9);
        h.observe(f64::NAN);
        assert_eq!(h.counts(), &[0, 0, 2]);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 1e9, "NaN contributes nothing to the sum");
    }

    #[test]
    fn hostile_bounds_are_sanitized() {
        let h = Histogram::new(&[f64::NAN, 5.0, f64::INFINITY, 1.0, 5.0]);
        assert_eq!(h.bounds(), &[1.0, 5.0]);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_sanitized() {
        let registry = MetricsRegistry::new();
        registry.register_histogram("solve.secs", &[1.0, 10.0]);
        registry.observe_value("solve.secs", 0.5);
        registry.observe_value("solve.secs", 2.0);
        registry.observe_value("solve.secs", 100.0);
        let exposition = registry.render_prometheus();
        assert!(exposition.contains("# TYPE nms_solve_secs histogram"));
        assert!(exposition.contains("nms_solve_secs_bucket{le=\"1\"} 1"));
        assert!(exposition.contains("nms_solve_secs_bucket{le=\"10\"} 2"));
        assert!(exposition.contains("nms_solve_secs_bucket{le=\"+Inf\"} 3"));
        assert!(exposition.contains("nms_solve_secs_sum 102.5"));
        assert!(exposition.contains("nms_solve_secs_count 3"));
    }

    #[test]
    fn quantiles_interpolate_to_hand_computed_values() {
        // bounds [1, 2, 4]; one sample <=1, two in (1,2], one in (2,4].
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for value in [0.5, 1.5, 2.0, 3.0] {
            h.observe(value);
        }
        // p50: rank 2 lands in (1,2] with 1 below → 1 + (2-1)·(2-1)/2 = 1.5
        assert_eq!(h.quantile(0.5), Some(1.5));
        // p95: rank 3.8 lands in (2,4] with 3 below → 2 + 2·0.8 = 3.6
        assert!((h.quantile(0.95).unwrap() - 3.6).abs() < 1e-9);
        // p99: rank 3.96 → 2 + 2·0.96 = 3.92
        assert!((h.quantile(0.99).unwrap() - 3.92).abs() < 1e-9);
        // The first bucket interpolates from zero.
        let mut low = Histogram::new(&[8.0]);
        low.observe(1.0);
        low.observe(2.0);
        assert_eq!(low.quantile(0.5), Some(4.0));
    }

    #[test]
    fn quantile_edges_overflow_and_empty() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        h.observe(1e9);
        assert_eq!(
            h.quantile(0.99),
            Some(10.0),
            "overflow-bucket ranks clamp to the highest finite bound"
        );
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.5), None);
    }

    #[test]
    fn histograms_merge_bucketwise_and_registries_fold() {
        let mut a = Histogram::new(&[1.0, 10.0]);
        a.observe(0.5);
        a.observe(5.0);
        let mut b = Histogram::new(&[1.0, 10.0]);
        b.observe(100.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1, 1]);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 105.5);
        // Mismatched layouts keep totals honest in the overflow bucket.
        let mut odd = Histogram::new(&[7.0]);
        odd.observe(1.0);
        a.merge(&odd);
        assert_eq!(a.count(), 4);
        assert_eq!(a.counts(), &[1, 1, 2]);

        let left = MetricsRegistry::new();
        let right = MetricsRegistry::new();
        left.add_counter("hits", 2);
        right.add_counter("hits", 3);
        right.add_counter("misses", 1);
        left.set_gauge("level", 1.0);
        right.set_gauge("level", 2.0);
        left.observe_value("secs", 0.5);
        right.observe_value("secs", 2.0);
        left.merge_from(&right);
        assert_eq!(left.counter("hits"), 5);
        assert_eq!(left.counter("misses"), 1);
        assert_eq!(left.gauge_value("level"), Some(2.0));
        let merged = left.histogram("secs").unwrap();
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.sum(), 2.5);
    }

    #[test]
    fn exposition_includes_quantile_lines() {
        let registry = MetricsRegistry::new();
        registry.register_histogram("lat", &[1.0, 2.0, 4.0]);
        for value in [0.5, 1.5, 2.0, 3.0] {
            registry.observe_value("lat", value);
        }
        let exposition = registry.render_prometheus();
        assert!(exposition.contains("nms_lat{quantile=\"0.5\"} 1.5"), "{exposition}");
        for (label, expected) in [("0.95", 3.6), ("0.99", 3.92)] {
            let needle = format!("nms_lat{{quantile=\"{label}\"}} ");
            let line = exposition
                .lines()
                .find(|line| line.starts_with(&needle))
                .unwrap_or_else(|| panic!("no {label} quantile line in {exposition}"));
            let value: f64 = line[needle.len()..].parse().unwrap();
            assert!((value - expected).abs() < 1e-9, "{line}");
        }
        // Empty histograms render no quantile lines at all.
        let empty = MetricsRegistry::new();
        empty.register_histogram("idle", &[1.0]);
        assert!(!empty.render_prometheus().contains("quantile"));
    }

    #[test]
    fn write_prometheus_is_atomic_and_readable() {
        let registry = MetricsRegistry::new();
        registry.add_counter("writes", 1);
        let mut path = std::env::temp_dir();
        path.push(format!("nms-obs-metrics-{}.prom", std::process::id()));
        registry.write_prometheus(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("nms_writes 1"));
        assert!(!path.with_extension("tmp").exists());
        let _ = std::fs::remove_file(&path);
    }
}
