//! Bayesian belief states over the POMDP's hidden state.

use serde::{Deserialize, Serialize};

use crate::Pomdp;

/// A probability distribution over states ("the decision maker needs to
/// estimate the state from the observation", §4.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Belief {
    probabilities: Vec<f64>,
}

impl Belief {
    /// The uniform belief over `states` states.
    ///
    /// # Panics
    ///
    /// Panics if `states` is zero.
    pub fn uniform(states: usize) -> Self {
        assert!(states > 0, "belief needs at least one state");
        Self {
            probabilities: vec![1.0 / states as f64; states],
        }
    }

    /// A belief fully concentrated on one state.
    ///
    /// # Panics
    ///
    /// Panics if `state >= states` or `states` is zero.
    pub fn point(states: usize, state: usize) -> Self {
        assert!(states > 0, "belief needs at least one state");
        assert!(state < states, "state {state} out of {states}");
        let mut probabilities = vec![0.0; states];
        probabilities[state] = 1.0;
        Self { probabilities }
    }

    /// Builds a belief from raw weights, normalizing them.
    ///
    /// # Panics
    ///
    /// Panics if weights are empty, negative, non-finite, or all zero.
    pub fn from_weights(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "belief needs at least one state");
        let total: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0) && total > 0.0,
            "weights must be non-negative with positive total"
        );
        Self {
            probabilities: weights.into_iter().map(|w| w / total).collect(),
        }
    }

    /// Number of states.
    #[inline]
    pub fn len(&self) -> usize {
        self.probabilities.len()
    }

    /// Always `false`: constructors reject empty beliefs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The per-state probabilities.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.probabilities
    }

    /// Probability of `state`.
    #[inline]
    pub fn prob(&self, state: usize) -> f64 {
        self.probabilities[state]
    }

    /// The most likely state (first on ties).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (s, &p) in self.probabilities.iter().enumerate() {
            if p > self.probabilities[best] {
                best = s;
            }
        }
        best
    }

    /// Expected value of a per-state function under the belief.
    pub fn expectation(&self, f: impl Fn(usize) -> f64) -> f64 {
        self.probabilities
            .iter()
            .enumerate()
            .map(|(s, &p)| p * f(s))
            .sum()
    }

    /// The Bayes update after taking `action` and observing `observation`:
    ///
    /// ```text
    /// b'(s') ∝ Ω(o | s', a) Σ_s T(s' | s, a) b(s)
    /// ```
    ///
    /// Returns `None` when the observation has zero probability under the
    /// predicted belief (model/observation mismatch) — callers typically
    /// fall back to the predicted (pre-observation) belief.
    pub fn update(&self, pomdp: &Pomdp, action: usize, observation: usize) -> Option<Belief> {
        let n = self.len();
        debug_assert_eq!(n, pomdp.states(), "belief/model state count");
        let mut posterior = vec![0.0; n];
        for (next, cell) in posterior.iter_mut().enumerate() {
            let mut predicted = 0.0;
            for (state, &p) in self.probabilities.iter().enumerate() {
                if p > 0.0 {
                    predicted += p * pomdp.transition_prob(state, action, next);
                }
            }
            *cell = predicted * pomdp.observation_prob(next, action, observation);
        }
        let total: f64 = posterior.iter().sum();
        if total <= 1e-300 {
            return None;
        }
        for p in &mut posterior {
            *p /= total;
        }
        Some(Belief {
            probabilities: posterior,
        })
    }

    /// The predicted belief after taking `action` but before observing
    /// (the marginal over observations).
    pub fn predict(&self, pomdp: &Pomdp, action: usize) -> Belief {
        let n = self.len();
        let mut predicted = vec![0.0; n];
        for (next, cell) in predicted.iter_mut().enumerate() {
            for (state, &p) in self.probabilities.iter().enumerate() {
                *cell += p * pomdp.transition_prob(state, action, next);
            }
        }
        Belief {
            probabilities: predicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn noisy_chain() -> Pomdp {
        // 3 states marching right under action 0; resetting under action 1.
        Pomdp::builder(3, 2, 3)
            .transition(
                0,
                vec![
                    vec![0.5, 0.5, 0.0],
                    vec![0.0, 0.5, 0.5],
                    vec![0.0, 0.0, 1.0],
                ],
            )
            .transition(
                1,
                vec![
                    vec![1.0, 0.0, 0.0],
                    vec![1.0, 0.0, 0.0],
                    vec![1.0, 0.0, 0.0],
                ],
            )
            .observation(
                0,
                vec![
                    vec![0.8, 0.1, 0.1],
                    vec![0.1, 0.8, 0.1],
                    vec![0.1, 0.1, 0.8],
                ],
            )
            .observation(
                1,
                vec![
                    vec![0.8, 0.1, 0.1],
                    vec![0.1, 0.8, 0.1],
                    vec![0.1, 0.1, 0.8],
                ],
            )
            .reward_fn(|_, s, _| -(s as f64))
            .build()
            .unwrap()
    }

    #[test]
    fn constructors() {
        let u = Belief::uniform(4);
        assert!(u.as_slice().iter().all(|&p| (p - 0.25).abs() < 1e-12));
        let p = Belief::point(3, 2);
        assert_eq!(p.prob(2), 1.0);
        assert_eq!(p.argmax(), 2);
        let w = Belief::from_weights(vec![1.0, 3.0]);
        assert!((w.prob(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive total")]
    fn zero_weights_panic() {
        let _ = Belief::from_weights(vec![0.0, 0.0]);
    }

    #[test]
    fn update_sharpens_on_consistent_observations() {
        let pomdp = noisy_chain();
        let mut belief = Belief::uniform(3);
        // Repeatedly observe "2" under the drifting action: belief should
        // concentrate on state 2.
        for _ in 0..6 {
            belief = belief.update(&pomdp, 0, 2).unwrap();
        }
        assert_eq!(belief.argmax(), 2);
        assert!(belief.prob(2) > 0.9);
    }

    #[test]
    fn reset_action_returns_to_state_zero() {
        let pomdp = noisy_chain();
        let belief = Belief::point(3, 2);
        let predicted = belief.predict(&pomdp, 1);
        assert!((predicted.prob(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn impossible_observation_returns_none() {
        // Deterministic observation model where state 0 always emits 0.
        let pomdp = Pomdp::builder(1, 1, 2)
            .transition(0, vec![vec![1.0]])
            .observation(0, vec![vec![1.0, 0.0]])
            .reward_fn(|_, _, _| 0.0)
            .build()
            .unwrap();
        let belief = Belief::point(1, 0);
        assert!(belief.update(&pomdp, 0, 1).is_none());
        assert!(belief.update(&pomdp, 0, 0).is_some());
    }

    #[test]
    fn expectation_weights_by_probability() {
        let belief = Belief::from_weights(vec![1.0, 1.0, 2.0]);
        let expected = belief.expectation(|s| s as f64);
        assert!((expected - (0.25 * 0.0 + 0.25 * 1.0 + 0.5 * 2.0)).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_update_preserves_simplex(
            weights in proptest::collection::vec(0.01_f64..1.0, 3),
            obs in 0_usize..3,
        ) {
            let pomdp = noisy_chain();
            let belief = Belief::from_weights(weights);
            if let Some(updated) = belief.update(&pomdp, 0, obs) {
                let total: f64 = updated.as_slice().iter().sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
                prop_assert!(updated.as_slice().iter().all(|&p| p >= 0.0));
            }
        }
    }
}
