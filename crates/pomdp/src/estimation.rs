//! Estimating the transition and observation models from logged episodes
//! ("the state transition probability T and observation function Ω are
//! trained based on the historical data", §4.2).

use serde::{Deserialize, Serialize};

use nms_types::ValidateError;

/// One logged step of an episode with known ground truth (training data is
/// collected in a controlled setting where the true hacked count is known).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpisodeStep {
    /// State before the action.
    pub state: usize,
    /// Action taken.
    pub action: usize,
    /// State after the action.
    pub next_state: usize,
    /// Observation emitted at the arrival state.
    pub observation: usize,
}

/// Estimates `(transition, observation)` tensors from episodes with
/// add-one (Laplace) smoothing, shaped `[action][state][next]` and
/// `[action][next][observation]` respectively — ready for
/// [`PomdpBuilder`](crate::PomdpBuilder).
///
/// Smoothing guarantees every row is a valid distribution even for
/// state/action pairs never visited.
///
/// # Errors
///
/// Returns [`ValidateError`] when any index is out of range or the
/// cardinalities are zero.
#[allow(clippy::type_complexity)]
pub fn estimate_from_histories(
    episodes: &[Vec<EpisodeStep>],
    states: usize,
    actions: usize,
    observations: usize,
) -> Result<(Vec<Vec<Vec<f64>>>, Vec<Vec<Vec<f64>>>), ValidateError> {
    if states == 0 || actions == 0 || observations == 0 {
        return Err(ValidateError::new(
            "states, actions, and observations must all be positive",
        ));
    }
    let mut t_counts = vec![vec![vec![1.0_f64; states]; states]; actions];
    let mut z_counts = vec![vec![vec![1.0_f64; observations]; states]; actions];
    for (e, episode) in episodes.iter().enumerate() {
        for (i, step) in episode.iter().enumerate() {
            if step.state >= states
                || step.next_state >= states
                || step.action >= actions
                || step.observation >= observations
            {
                return Err(ValidateError::new(format!(
                    "episode {e} step {i} has out-of-range indices: {step:?}"
                )));
            }
            t_counts[step.action][step.state][step.next_state] += 1.0;
            z_counts[step.action][step.next_state][step.observation] += 1.0;
        }
    }
    for plane in t_counts.iter_mut().chain(z_counts.iter_mut()) {
        for row in plane.iter_mut() {
            let total: f64 = row.iter().sum();
            for p in row.iter_mut() {
                *p /= total;
            }
        }
    }
    Ok((t_counts, z_counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pomdp;

    fn step(state: usize, action: usize, next_state: usize, observation: usize) -> EpisodeStep {
        EpisodeStep {
            state,
            action,
            next_state,
            observation,
        }
    }

    #[test]
    fn estimates_recover_dominant_dynamics() {
        // Action 0 keeps the state; action 1 flips it. Observations mirror
        // the arrival state.
        let mut episodes = Vec::new();
        for _ in 0..50 {
            episodes.push(vec![
                step(0, 0, 0, 0),
                step(0, 1, 1, 1),
                step(1, 0, 1, 1),
                step(1, 1, 0, 0),
            ]);
        }
        let (t, z) = estimate_from_histories(&episodes, 2, 2, 2).unwrap();
        assert!(t[0][0][0] > 0.9);
        assert!(t[1][0][1] > 0.9);
        assert!(z[0][1][1] > 0.9);
        assert!(z[1][0][0] > 0.9);
    }

    #[test]
    fn rows_are_distributions_even_unvisited() {
        let (t, z) = estimate_from_histories(&[], 3, 2, 4).unwrap();
        for plane in t.iter().chain(z.iter()) {
            for row in plane {
                let total: f64 = row.iter().sum();
                assert!((total - 1.0).abs() < 1e-9);
            }
        }
        // Laplace prior: unvisited rows are uniform.
        assert!((t[0][0][0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((z[1][2][3] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn estimated_tensors_build_a_valid_pomdp() {
        let episodes = vec![vec![step(0, 0, 1, 1), step(1, 1, 0, 0)]];
        let (t, z) = estimate_from_histories(&episodes, 2, 2, 2).unwrap();
        let mut builder = Pomdp::builder(2, 2, 2).reward_fn(|_, _, _| 0.0);
        for (a, (ta, za)) in t.into_iter().zip(z).enumerate() {
            builder = builder.transition(a, ta).observation(a, za);
        }
        assert!(builder.build().is_ok());
    }

    #[test]
    fn rejects_out_of_range_indices() {
        let episodes = vec![vec![step(5, 0, 0, 0)]];
        assert!(estimate_from_histories(&episodes, 2, 2, 2).is_err());
        let episodes = vec![vec![step(0, 0, 0, 9)]];
        assert!(estimate_from_histories(&episodes, 2, 2, 2).is_err());
        assert!(estimate_from_histories(&[], 0, 1, 1).is_err());
    }
}
