//! Approximate POMDP solvers: QMDP and point-based value iteration.

use serde::{Deserialize, Serialize};

use crate::{Belief, Pomdp};

/// Anything that maps a belief to an action.
pub trait Policy {
    /// The action to take under `belief`.
    fn action(&self, belief: &Belief) -> usize;

    /// The policy's estimate of the discounted value of `belief`.
    fn value(&self, belief: &Belief) -> f64;
}

/// The QMDP approximation: solve the fully observable MDP, then score
/// actions by `Σ_s b(s) Q*(s, a)`.
///
/// QMDP is exact when uncertainty disappears after one step; it
/// under-values information-gathering actions but is fast and a standard
/// baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QmdpPolicy {
    /// `q[s][a]` of the underlying MDP.
    q: Vec<Vec<f64>>,
}

impl QmdpPolicy {
    /// Runs value iteration on the underlying MDP until the Bellman
    /// residual drops below `tolerance` or `max_iters` sweeps pass.
    pub fn solve(pomdp: &Pomdp, tolerance: f64, max_iters: usize) -> Self {
        let n = pomdp.states();
        let m = pomdp.actions();
        let mut v = vec![0.0_f64; n];
        for _ in 0..max_iters {
            let mut residual = 0.0_f64;
            let mut next_v = vec![0.0_f64; n];
            for s in 0..n {
                let mut best = f64::NEG_INFINITY;
                for a in 0..m {
                    let mut q = pomdp.expected_reward(s, a);
                    for (s2, &p) in pomdp.transition_row(s, a).iter().enumerate() {
                        if p > 0.0 {
                            q += pomdp.discount() * p * v[s2];
                        }
                    }
                    best = best.max(q);
                }
                next_v[s] = best;
                residual = residual.max((next_v[s] - v[s]).abs());
            }
            v = next_v;
            if residual < tolerance {
                break;
            }
        }
        // Final Q from the converged V.
        let q = (0..n)
            .map(|s| {
                (0..m)
                    .map(|a| {
                        let mut q = pomdp.expected_reward(s, a);
                        for (s2, &p) in pomdp.transition_row(s, a).iter().enumerate() {
                            if p > 0.0 {
                                q += pomdp.discount() * p * v[s2];
                            }
                        }
                        q
                    })
                    .collect()
            })
            .collect();
        Self { q }
    }

    /// The MDP action-value `Q*(s, a)`.
    #[inline]
    pub fn q(&self, state: usize, action: usize) -> f64 {
        self.q[state][action]
    }
}

impl Policy for QmdpPolicy {
    fn action(&self, belief: &Belief) -> usize {
        let actions = self.q[0].len();
        (0..actions)
            .max_by(|&a, &b| {
                let qa = belief.expectation(|s| self.q[s][a]);
                let qb = belief.expectation(|s| self.q[s][b]);
                qa.partial_cmp(&qb).expect("finite Q values")
            })
            .expect("at least one action")
    }

    fn value(&self, belief: &Belief) -> f64 {
        let actions = self.q[0].len();
        (0..actions)
            .map(|a| belief.expectation(|s| self.q[s][a]))
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Configuration for [`PbviPolicy::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PbviConfig {
    /// Backup iterations (each improves the value function one step
    /// deeper).
    pub iterations: usize,
    /// Number of belief points kept (including the corners added first).
    pub belief_points: usize,
    /// Random-walk expansion depth used to populate the belief set.
    pub expansion_depth: usize,
    /// Seed for the deterministic belief-set expansion.
    pub seed: u64,
}

impl Default for PbviConfig {
    fn default() -> Self {
        Self {
            iterations: 40,
            belief_points: 64,
            expansion_depth: 12,
            seed: 0x5eed,
        }
    }
}

/// Point-based value iteration (Pineau et al. style): maintains one alpha
/// vector per belief point and performs exact Bellman backups at those
/// points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PbviPolicy {
    /// Alpha vectors (`alpha[i][s]`).
    alphas: Vec<Vec<f64>>,
    /// Greedy action associated with each alpha vector.
    actions: Vec<usize>,
}

impl PbviPolicy {
    /// Solves `pomdp` by PBVI over a deterministically expanded belief set.
    pub fn solve(pomdp: &Pomdp, config: &PbviConfig) -> Self {
        let beliefs = Self::expand_beliefs(pomdp, config);
        let n = pomdp.states();

        // Initialize with the "always worst immediate reward" lower bound.
        let r_min = (0..pomdp.actions())
            .flat_map(|a| (0..n).map(move |s| (a, s)))
            .map(|(a, s)| pomdp.expected_reward(s, a))
            .fold(f64::INFINITY, f64::min);
        let floor = r_min / (1.0 - pomdp.discount());
        let mut alphas = vec![vec![floor; n]];
        let mut actions = vec![0usize];

        for _ in 0..config.iterations {
            let mut new_alphas = Vec::with_capacity(beliefs.len());
            let mut new_actions = Vec::with_capacity(beliefs.len());
            for belief in &beliefs {
                let (alpha, action) = Self::backup(pomdp, belief, &alphas);
                new_alphas.push(alpha);
                new_actions.push(action);
            }
            // Deduplicate identical vectors to keep the set lean.
            let mut kept_alphas: Vec<Vec<f64>> = Vec::new();
            let mut kept_actions = Vec::new();
            for (alpha, action) in new_alphas.into_iter().zip(new_actions) {
                let duplicate = kept_alphas.iter().any(|existing: &Vec<f64>| {
                    existing
                        .iter()
                        .zip(&alpha)
                        .all(|(a, b)| (a - b).abs() < 1e-12)
                });
                if !duplicate {
                    kept_alphas.push(alpha);
                    kept_actions.push(action);
                }
            }
            alphas = kept_alphas;
            actions = kept_actions;
        }

        Self { alphas, actions }
    }

    /// The exact point backup at one belief.
    fn backup(pomdp: &Pomdp, belief: &Belief, alphas: &[Vec<f64>]) -> (Vec<f64>, usize) {
        let n = pomdp.states();
        let mut best: Option<(f64, Vec<f64>, usize)> = None;
        for a in 0..pomdp.actions() {
            // g_a(s) = R̄(s, a) + γ Σ_o [best alpha for (a, o)](s)
            let mut g: Vec<f64> = (0..n).map(|s| pomdp.expected_reward(s, a)).collect();
            for o in 0..pomdp.observations() {
                // For each alpha, compute g_{a,o}^α(s) = Σ_{s'} T Ω α(s').
                let mut best_vec: Option<(f64, Vec<f64>)> = None;
                for alpha in alphas {
                    let projected: Vec<f64> = (0..n)
                        .map(|s| {
                            pomdp
                                .transition_row(s, a)
                                .iter()
                                .enumerate()
                                .map(|(s2, &t)| t * pomdp.observation_prob(s2, a, o) * alpha[s2])
                                .sum()
                        })
                        .collect();
                    let score: f64 = belief
                        .as_slice()
                        .iter()
                        .zip(&projected)
                        .map(|(b, v)| b * v)
                        .sum();
                    if best_vec.as_ref().is_none_or(|(s, _)| score > *s) {
                        best_vec = Some((score, projected));
                    }
                }
                if let Some((_, projected)) = best_vec {
                    for s in 0..n {
                        g[s] += pomdp.discount() * projected[s];
                    }
                }
            }
            let score: f64 = belief.as_slice().iter().zip(&g).map(|(b, v)| b * v).sum();
            if best.as_ref().is_none_or(|(s, _, _)| score > *s) {
                best = Some((score, g, a));
            }
        }
        let (_, alpha, action) = best.expect("at least one action");
        (alpha, action)
    }

    /// Deterministic belief-set expansion: corners, the uniform belief, and
    /// successors along a pseudorandom action/observation walk.
    fn expand_beliefs(pomdp: &Pomdp, config: &PbviConfig) -> Vec<Belief> {
        let n = pomdp.states();
        let mut beliefs = vec![Belief::uniform(n)];
        for s in 0..n.min(config.belief_points) {
            beliefs.push(Belief::point(n, s));
        }
        // Simple xorshift for reproducible expansion without pulling a full
        // RNG into the dependency graph of this hot path.
        let mut state = config.seed.max(1);
        let mut next_rand = move |modulus: usize| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as usize) % modulus.max(1)
        };
        let mut frontier = beliefs.clone();
        while beliefs.len() < config.belief_points {
            let mut new_frontier = Vec::new();
            for belief in &frontier {
                for _ in 0..config.expansion_depth {
                    let a = next_rand(pomdp.actions());
                    let o = next_rand(pomdp.observations());
                    if let Some(updated) = belief.update(pomdp, a, o) {
                        new_frontier.push(updated);
                    }
                    if beliefs.len() + new_frontier.len() >= config.belief_points {
                        break;
                    }
                }
            }
            if new_frontier.is_empty() {
                break;
            }
            beliefs.extend(new_frontier.iter().cloned());
            frontier = new_frontier;
        }
        beliefs.truncate(config.belief_points);
        beliefs
    }

    /// Number of alpha vectors retained.
    #[inline]
    pub fn alpha_count(&self) -> usize {
        self.alphas.len()
    }
}

impl Policy for PbviPolicy {
    fn action(&self, belief: &Belief) -> usize {
        let mut best_score = f64::NEG_INFINITY;
        let mut best_action = 0;
        for (alpha, &action) in self.alphas.iter().zip(&self.actions) {
            let score: f64 = belief
                .as_slice()
                .iter()
                .zip(alpha)
                .map(|(b, v)| b * v)
                .sum();
            if score > best_score {
                best_score = score;
                best_action = action;
            }
        }
        best_action
    }

    fn value(&self, belief: &Belief) -> f64 {
        self.alphas
            .iter()
            .map(|alpha| {
                belief
                    .as_slice()
                    .iter()
                    .zip(alpha)
                    .map(|(b, v)| b * v)
                    .sum()
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smart-meter-flavored toy: state = hacked meters bucket {0, 1, 2},
    /// action 0 = monitor (state drifts up), action 1 = fix (reset, labor
    /// cost). Damage grows with the state.
    fn meter_pomdp(observation_accuracy: f64) -> Pomdp {
        let z = |s: usize| {
            let mut row = vec![
                (1.0 - observation_accuracy) / 2.0,
                (1.0 - observation_accuracy) / 2.0,
                (1.0 - observation_accuracy) / 2.0,
            ];
            row[s] = observation_accuracy + (1.0 - observation_accuracy) / 2.0 * 0.0;
            // Normalize: off-diagonal mass split over the other two states.
            let off = (1.0 - observation_accuracy) / 2.0;
            for (i, r) in row.iter_mut().enumerate() {
                *r = if i == s { observation_accuracy } else { off };
            }
            row
        };
        Pomdp::builder(3, 2, 3)
            .transition(
                0,
                vec![
                    vec![0.7, 0.3, 0.0],
                    vec![0.0, 0.7, 0.3],
                    vec![0.0, 0.0, 1.0],
                ],
            )
            .transition(
                1,
                vec![
                    vec![1.0, 0.0, 0.0],
                    vec![1.0, 0.0, 0.0],
                    vec![1.0, 0.0, 0.0],
                ],
            )
            .observation(0, vec![z(0), z(1), z(2)])
            .observation(1, vec![z(0), z(1), z(2)])
            .reward_fn(|a, s, _| {
                let damage = -4.0 * s as f64;
                let labor = if a == 1 { -2.0 } else { 0.0 };
                damage + labor
            })
            .discount(0.9)
            .build()
            .unwrap()
    }

    #[test]
    fn qmdp_fixes_when_certainly_hacked() {
        let pomdp = meter_pomdp(0.9);
        let policy = QmdpPolicy::solve(&pomdp, 1e-10, 2000);
        assert_eq!(policy.action(&Belief::point(3, 2)), 1);
        assert_eq!(policy.action(&Belief::point(3, 0)), 0);
    }

    #[test]
    fn qmdp_q_values_ordered_sensibly() {
        let pomdp = meter_pomdp(0.9);
        let policy = QmdpPolicy::solve(&pomdp, 1e-10, 2000);
        // In the worst state, fixing dominates monitoring.
        assert!(policy.q(2, 1) > policy.q(2, 0));
        // In the clean state, monitoring dominates paying labor.
        assert!(policy.q(0, 0) > policy.q(0, 1));
    }

    #[test]
    fn qmdp_value_is_max_over_actions() {
        let pomdp = meter_pomdp(0.8);
        let policy = QmdpPolicy::solve(&pomdp, 1e-10, 2000);
        let b = Belief::uniform(3);
        let v = policy.value(&b);
        let q0 = b.expectation(|s| policy.q(s, 0));
        let q1 = b.expectation(|s| policy.q(s, 1));
        assert!((v - q0.max(q1)).abs() < 1e-12);
    }

    #[test]
    fn pbvi_agrees_with_qmdp_on_certain_beliefs() {
        let pomdp = meter_pomdp(0.9);
        let pbvi = PbviPolicy::solve(&pomdp, &PbviConfig::default());
        assert_eq!(pbvi.action(&Belief::point(3, 2)), 1);
        assert_eq!(pbvi.action(&Belief::point(3, 0)), 0);
        assert!(pbvi.alpha_count() >= 1);
    }

    #[test]
    fn pbvi_value_dominates_floor() {
        let pomdp = meter_pomdp(0.85);
        let pbvi = PbviPolicy::solve(&pomdp, &PbviConfig::default());
        let floor = -6.0 / (1.0 - 0.9) - 1.0;
        for s in 0..3 {
            assert!(pbvi.value(&Belief::point(3, s)) > floor);
        }
    }

    #[test]
    fn pbvi_values_weakly_improve_with_iterations() {
        let pomdp = meter_pomdp(0.85);
        let shallow = PbviPolicy::solve(
            &pomdp,
            &PbviConfig {
                iterations: 2,
                ..PbviConfig::default()
            },
        );
        let deep = PbviPolicy::solve(
            &pomdp,
            &PbviConfig {
                iterations: 30,
                ..PbviConfig::default()
            },
        );
        let b = Belief::uniform(3);
        assert!(deep.value(&b) >= shallow.value(&b) - 1e-9);
    }

    #[test]
    fn noisier_observations_reduce_pbvi_value() {
        // With worse observations the controller wastes labor / misses
        // compromises, so the achievable value drops.
        let sharp = meter_pomdp(0.95);
        let blurry = meter_pomdp(0.45);
        let config = PbviConfig::default();
        let v_sharp = PbviPolicy::solve(&sharp, &config).value(&Belief::uniform(3));
        let v_blurry = PbviPolicy::solve(&blurry, &config).value(&Belief::uniform(3));
        assert!(
            v_sharp >= v_blurry - 1e-9,
            "sharp {v_sharp} vs blurry {v_blurry}"
        );
    }
}
