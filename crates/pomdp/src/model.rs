//! The validated POMDP model `⟨S, O, A, T, R, Ω⟩`.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Why a [`PomdpBuilder`] rejected a model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BuildPomdpError {
    /// A tensor has the wrong shape.
    Shape {
        /// Human-readable detail.
        detail: String,
    },
    /// A probability row does not sum to one (tolerance `1e-6`) or contains
    /// values outside `[0, 1]`.
    NotADistribution {
        /// Human-readable detail.
        detail: String,
    },
    /// Transition/observation rows were not provided for every action.
    Missing {
        /// Human-readable detail.
        detail: String,
    },
    /// The discount is outside `[0, 1)`.
    BadDiscount {
        /// Supplied discount.
        discount: f64,
    },
}

impl fmt::Display for BuildPomdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Shape { detail } => write!(f, "shape error: {detail}"),
            Self::NotADistribution { detail } => write!(f, "not a distribution: {detail}"),
            Self::Missing { detail } => write!(f, "missing model component: {detail}"),
            Self::BadDiscount { discount } => {
                write!(f, "discount {discount} outside [0, 1)")
            }
        }
    }
}

impl Error for BuildPomdpError {}

/// A finite POMDP with dense tensors.
///
/// * `T(s' | s, a)` — transition probability;
/// * `Ω(o | s', a)` — observation probability conditioned on the *arrival*
///   state (the convention of \[4\]);
/// * `R(s, a, s')` — immediate reward.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pomdp {
    states: usize,
    actions: usize,
    observations: usize,
    /// `transition[a][s][s']`.
    transition: Vec<Vec<Vec<f64>>>,
    /// `observation[a][s'][o]`.
    observation: Vec<Vec<Vec<f64>>>,
    /// `reward[a][s][s']`.
    reward: Vec<Vec<Vec<f64>>>,
    discount: f64,
}

impl Pomdp {
    /// Starts building a model with the given cardinalities.
    pub fn builder(states: usize, actions: usize, observations: usize) -> PomdpBuilder {
        PomdpBuilder {
            states,
            actions,
            observations,
            transition: vec![None; actions],
            observation: vec![None; actions],
            reward: None,
            discount: 0.95,
        }
    }

    /// Number of states `|S|`.
    #[inline]
    pub fn states(&self) -> usize {
        self.states
    }

    /// Number of actions `|A|`.
    #[inline]
    pub fn actions(&self) -> usize {
        self.actions
    }

    /// Number of observations `|O|`.
    #[inline]
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Discount factor `γ`.
    #[inline]
    pub fn discount(&self) -> f64 {
        self.discount
    }

    /// `T(s' | s, a)`.
    #[inline]
    pub fn transition_prob(&self, state: usize, action: usize, next: usize) -> f64 {
        self.transition[action][state][next]
    }

    /// `Ω(o | s', a)`.
    #[inline]
    pub fn observation_prob(&self, next: usize, action: usize, observation: usize) -> f64 {
        self.observation[action][next][observation]
    }

    /// `R(s, a, s')`.
    #[inline]
    pub fn reward(&self, state: usize, action: usize, next: usize) -> f64 {
        self.reward[action][state][next]
    }

    /// Expected immediate reward `R̄(s, a) = Σ_{s'} T(s'|s,a) R(s,a,s')`.
    pub fn expected_reward(&self, state: usize, action: usize) -> f64 {
        (0..self.states)
            .map(|next| self.transition[action][state][next] * self.reward[action][state][next])
            .sum()
    }

    /// The transition row `T(· | s, a)`.
    #[inline]
    pub fn transition_row(&self, state: usize, action: usize) -> &[f64] {
        &self.transition[action][state]
    }

    /// The observation row `Ω(· | s', a)`.
    #[inline]
    pub fn observation_row(&self, next: usize, action: usize) -> &[f64] {
        &self.observation[action][next]
    }
}

/// Builder for [`Pomdp`]; see [`Pomdp::builder`].
#[derive(Debug, Clone)]
pub struct PomdpBuilder {
    states: usize,
    actions: usize,
    observations: usize,
    transition: Vec<Option<Vec<Vec<f64>>>>,
    observation: Vec<Option<Vec<Vec<f64>>>>,
    reward: Option<Vec<Vec<Vec<f64>>>>,
    discount: f64,
}

impl PomdpBuilder {
    /// Sets the transition matrix `T[s][s']` for one action.
    pub fn transition(mut self, action: usize, matrix: Vec<Vec<f64>>) -> Self {
        self.transition[action] = Some(matrix);
        self
    }

    /// Sets the observation matrix `Ω[s'][o]` for one action.
    pub fn observation(mut self, action: usize, matrix: Vec<Vec<f64>>) -> Self {
        self.observation[action] = Some(matrix);
        self
    }

    /// Sets the reward via a function `R(a, s, s')` evaluated densely.
    pub fn reward_fn(mut self, f: impl Fn(usize, usize, usize) -> f64) -> Self {
        let tensor = (0..self.actions)
            .map(|a| {
                (0..self.states)
                    .map(|s| (0..self.states).map(|s2| f(a, s, s2)).collect())
                    .collect()
            })
            .collect();
        self.reward = Some(tensor);
        self
    }

    /// Sets the discount factor (default 0.95).
    pub fn discount(mut self, discount: f64) -> Self {
        self.discount = discount;
        self
    }

    /// Validates and builds the model.
    ///
    /// # Errors
    ///
    /// Returns [`BuildPomdpError`] when components are missing, have the
    /// wrong shape, rows are not probability distributions, rewards are
    /// non-finite, or the discount is outside `[0, 1)`.
    pub fn build(self) -> Result<Pomdp, BuildPomdpError> {
        if self.states == 0 || self.actions == 0 || self.observations == 0 {
            return Err(BuildPomdpError::Shape {
                detail: "states, actions, and observations must all be positive".into(),
            });
        }
        if !(0.0..1.0).contains(&self.discount) || !self.discount.is_finite() {
            return Err(BuildPomdpError::BadDiscount {
                discount: self.discount,
            });
        }
        let mut transition = Vec::with_capacity(self.actions);
        for (a, t) in self.transition.into_iter().enumerate() {
            let t = t.ok_or_else(|| BuildPomdpError::Missing {
                detail: format!("transition matrix for action {a}"),
            })?;
            check_stochastic(&t, self.states, self.states, &format!("T[a={a}]"))?;
            transition.push(t);
        }
        let mut observation = Vec::with_capacity(self.actions);
        for (a, z) in self.observation.into_iter().enumerate() {
            let z = z.ok_or_else(|| BuildPomdpError::Missing {
                detail: format!("observation matrix for action {a}"),
            })?;
            check_stochastic(&z, self.states, self.observations, &format!("Ω[a={a}]"))?;
            observation.push(z);
        }
        let reward = self.reward.ok_or_else(|| BuildPomdpError::Missing {
            detail: "reward tensor".into(),
        })?;
        for plane in &reward {
            for row in plane {
                for &r in row {
                    if !r.is_finite() {
                        return Err(BuildPomdpError::Shape {
                            detail: "reward tensor contains non-finite values".into(),
                        });
                    }
                }
            }
        }
        Ok(Pomdp {
            states: self.states,
            actions: self.actions,
            observations: self.observations,
            transition,
            observation,
            reward,
            discount: self.discount,
        })
    }
}

fn check_stochastic(
    matrix: &[Vec<f64>],
    rows: usize,
    cols: usize,
    name: &str,
) -> Result<(), BuildPomdpError> {
    if matrix.len() != rows {
        return Err(BuildPomdpError::Shape {
            detail: format!("{name} has {} rows, expected {rows}", matrix.len()),
        });
    }
    for (i, row) in matrix.iter().enumerate() {
        if row.len() != cols {
            return Err(BuildPomdpError::Shape {
                detail: format!("{name} row {i} has {} entries, expected {cols}", row.len()),
            });
        }
        let mut sum = 0.0;
        for &p in row {
            if !(0.0..=1.0 + 1e-9).contains(&p) || !p.is_finite() {
                return Err(BuildPomdpError::NotADistribution {
                    detail: format!("{name} row {i} has entry {p}"),
                });
            }
            sum += p;
        }
        if (sum - 1.0).abs() > 1e-6 {
            return Err(BuildPomdpError::NotADistribution {
                detail: format!("{name} row {i} sums to {sum}"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Pomdp {
        Pomdp::builder(2, 2, 2)
            .transition(0, vec![vec![0.9, 0.1], vec![0.0, 1.0]])
            .transition(1, vec![vec![1.0, 0.0], vec![1.0, 0.0]])
            .observation(0, vec![vec![0.8, 0.2], vec![0.3, 0.7]])
            .observation(1, vec![vec![0.8, 0.2], vec![0.3, 0.7]])
            .reward_fn(|a, s, _| if s == 1 { -10.0 } else { 0.0 } - a as f64)
            .discount(0.9)
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_exposes_model() {
        let p = tiny();
        assert_eq!(p.states(), 2);
        assert_eq!(p.actions(), 2);
        assert_eq!(p.observations(), 2);
        assert_eq!(p.transition_prob(0, 0, 1), 0.1);
        assert_eq!(p.observation_prob(1, 0, 1), 0.7);
        assert_eq!(p.reward(1, 1, 0), -11.0);
        assert!((p.discount() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn expected_reward_marginalizes_transitions() {
        let p = tiny();
        // From s=0, a=0: 0.9·0 + 0.1·0 = 0 (reward depends only on s here).
        assert_eq!(p.expected_reward(0, 0), 0.0);
        assert_eq!(p.expected_reward(1, 0), -10.0);
        assert_eq!(p.expected_reward(1, 1), -11.0);
    }

    #[test]
    fn rejects_bad_rows() {
        let result = Pomdp::builder(2, 1, 2)
            .transition(0, vec![vec![0.5, 0.6], vec![0.0, 1.0]])
            .observation(0, vec![vec![1.0, 0.0], vec![0.0, 1.0]])
            .reward_fn(|_, _, _| 0.0)
            .build();
        assert!(matches!(
            result,
            Err(BuildPomdpError::NotADistribution { .. })
        ));
    }

    #[test]
    fn rejects_missing_components() {
        let result = Pomdp::builder(2, 1, 2)
            .observation(0, vec![vec![1.0, 0.0], vec![0.0, 1.0]])
            .reward_fn(|_, _, _| 0.0)
            .build();
        assert!(matches!(result, Err(BuildPomdpError::Missing { .. })));
        let result = Pomdp::builder(2, 1, 2)
            .transition(0, vec![vec![1.0, 0.0], vec![0.0, 1.0]])
            .observation(0, vec![vec![1.0, 0.0], vec![0.0, 1.0]])
            .build();
        assert!(matches!(result, Err(BuildPomdpError::Missing { .. })));
    }

    #[test]
    fn rejects_bad_shapes_and_discount() {
        let result = Pomdp::builder(2, 1, 2)
            .transition(0, vec![vec![1.0, 0.0]])
            .observation(0, vec![vec![1.0, 0.0], vec![0.0, 1.0]])
            .reward_fn(|_, _, _| 0.0)
            .build();
        assert!(matches!(result, Err(BuildPomdpError::Shape { .. })));

        let result = Pomdp::builder(2, 1, 2)
            .transition(0, vec![vec![1.0, 0.0], vec![0.0, 1.0]])
            .observation(0, vec![vec![1.0, 0.0], vec![0.0, 1.0]])
            .reward_fn(|_, _, _| 0.0)
            .discount(1.0)
            .build();
        assert!(matches!(result, Err(BuildPomdpError::BadDiscount { .. })));
    }

    #[test]
    fn rejects_non_finite_reward() {
        let result = Pomdp::builder(2, 1, 2)
            .transition(0, vec![vec![1.0, 0.0], vec![0.0, 1.0]])
            .observation(0, vec![vec![1.0, 0.0], vec![0.0, 1.0]])
            .reward_fn(|_, _, _| f64::NAN)
            .build();
        assert!(matches!(result, Err(BuildPomdpError::Shape { .. })));
    }

    #[test]
    fn error_display() {
        let err = BuildPomdpError::BadDiscount { discount: 1.5 };
        assert!(err.to_string().contains("1.5"));
    }
}
