//! A finite partially observable Markov decision process (POMDP) substrate
//! (paper §4.2, following Kaelbling–Littman–Cassandra \[4\]).
//!
//! The paper's long-term detector is a POMDP `⟨S, O, A, T, R, Ω⟩` whose
//! states count hacked smart meters, whose observations come from the SVR
//! single-event detector, and whose two actions are *continue monitoring*
//! and *check & fix*. This crate provides the general machinery:
//!
//! * [`Pomdp`] — validated model (transition, observation, reward tensors);
//! * [`Belief`] — Bayesian belief tracking over states;
//! * [`QmdpPolicy`] / [`PbviPolicy`] — two standard approximate solvers
//!   (QMDP underestimates information value; point-based value iteration
//!   handles it properly at higher cost);
//! * [`estimate_from_histories`] — training `T` and `Ω` from logged
//!   episodes ("trained based on the historical data", §4.2);
//! * [`rollout`] — Monte-Carlo policy evaluation against the generative
//!   model.
//!
//! # Examples
//!
//! ```
//! use nms_pomdp::{Belief, Pomdp, Policy, QmdpPolicy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The classic 2-state tiger-style problem, reduced: state 0 = safe,
//! // state 1 = hacked; action 0 = wait, action 1 = fix.
//! let pomdp = Pomdp::builder(2, 2, 2)
//!     .transition(0, vec![vec![0.9, 0.1], vec![0.0, 1.0]])
//!     .transition(1, vec![vec![1.0, 0.0], vec![1.0, 0.0]])
//!     .observation(0, vec![vec![0.8, 0.2], vec![0.2, 0.8]])
//!     .observation(1, vec![vec![0.8, 0.2], vec![0.2, 0.8]])
//!     .reward_fn(|action, state, _| {
//!         let damage = if state == 1 { -10.0 } else { 0.0 };
//!         let labor = if action == 1 { -2.0 } else { 0.0 };
//!         damage + labor
//!     })
//!     .discount(0.9)
//!     .build()?;
//! let policy = QmdpPolicy::solve(&pomdp, 1e-9, 1000);
//! // Certain compromise ⇒ fix.
//! assert_eq!(policy.action(&Belief::point(2, 1)), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod belief;
mod estimation;
mod grid;
mod model;
mod rollout;
mod solvers;

pub use belief::Belief;
pub use estimation::{estimate_from_histories, EpisodeStep};
pub use grid::{GridConfig, GridPolicy};
pub use model::{BuildPomdpError, Pomdp, PomdpBuilder};
pub use rollout::{rollout, RolloutOutcome};
pub use solvers::{PbviConfig, PbviPolicy, Policy, QmdpPolicy};
