//! Monte-Carlo policy evaluation against the generative model.

use rand::Rng;

use crate::{Belief, Policy, Pomdp};

/// Outcome of one simulated episode.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutOutcome {
    /// Discounted return collected over the episode.
    pub discounted_return: f64,
    /// Undiscounted sum of rewards.
    pub total_reward: f64,
    /// Actions taken per step.
    pub actions: Vec<usize>,
    /// Fraction of steps where the belief's most likely state equaled the
    /// true state — the paper's "observation accuracy" analogue at the
    /// belief level.
    pub state_tracking_accuracy: f64,
}

/// Samples an index from a probability row.
fn sample_row(row: &[f64], rng: &mut impl Rng) -> usize {
    let mut u: f64 = rng.gen();
    for (i, &p) in row.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return i;
        }
    }
    row.len() - 1
}

/// Simulates `policy` for `steps` steps from `initial_state`, tracking the
/// belief with Bayes updates (falling back to the predicted belief when an
/// observation is impossible under the model).
///
/// # Panics
///
/// Panics if `initial_state` is out of range.
pub fn rollout(
    pomdp: &Pomdp,
    policy: &dyn Policy,
    initial_state: usize,
    steps: usize,
    rng: &mut impl Rng,
) -> RolloutOutcome {
    assert!(initial_state < pomdp.states(), "initial state out of range");
    let mut state = initial_state;
    let mut belief = Belief::point(pomdp.states(), initial_state);
    let mut discounted_return = 0.0;
    let mut total_reward = 0.0;
    let mut discount = 1.0;
    let mut actions = Vec::with_capacity(steps);
    let mut tracked = 0usize;

    for _ in 0..steps {
        let action = policy.action(&belief);
        actions.push(action);
        let next = sample_row(pomdp.transition_row(state, action), rng);
        let observation = sample_row(pomdp.observation_row(next, action), rng);
        let reward = pomdp.reward(state, action, next);
        discounted_return += discount * reward;
        total_reward += reward;
        discount *= pomdp.discount();

        belief = belief
            .update(pomdp, action, observation)
            .unwrap_or_else(|| belief.predict(pomdp, action));
        state = next;
        if belief.argmax() == state {
            tracked += 1;
        }
    }

    RolloutOutcome {
        discounted_return,
        total_reward,
        actions,
        state_tracking_accuracy: if steps == 0 {
            1.0
        } else {
            tracked as f64 / steps as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PbviConfig, PbviPolicy, QmdpPolicy};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn drift_and_fix() -> Pomdp {
        Pomdp::builder(2, 2, 2)
            .transition(0, vec![vec![0.8, 0.2], vec![0.0, 1.0]])
            .transition(1, vec![vec![1.0, 0.0], vec![1.0, 0.0]])
            .observation(0, vec![vec![0.9, 0.1], vec![0.1, 0.9]])
            .observation(1, vec![vec![0.9, 0.1], vec![0.1, 0.9]])
            .reward_fn(|a, s, _| -(6.0 * s as f64) - if a == 1 { 1.5 } else { 0.0 })
            .discount(0.9)
            .build()
            .unwrap()
    }

    #[test]
    fn policy_beats_never_acting() {
        struct Never;
        impl Policy for Never {
            fn action(&self, _: &Belief) -> usize {
                0
            }
            fn value(&self, _: &Belief) -> f64 {
                0.0
            }
        }

        let pomdp = drift_and_fix();
        let qmdp = QmdpPolicy::solve(&pomdp, 1e-10, 2000);
        let mut total_smart = 0.0;
        let mut total_lazy = 0.0;
        for seed in 0..20 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            total_smart += rollout(&pomdp, &qmdp, 0, 60, &mut rng).discounted_return;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            total_lazy += rollout(&pomdp, &Never, 0, 60, &mut rng).discounted_return;
        }
        assert!(
            total_smart > total_lazy,
            "smart {total_smart} vs lazy {total_lazy}"
        );
    }

    #[test]
    fn rollout_reports_consistent_fields() {
        let pomdp = drift_and_fix();
        let qmdp = QmdpPolicy::solve(&pomdp, 1e-10, 2000);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let outcome = rollout(&pomdp, &qmdp, 0, 25, &mut rng);
        assert_eq!(outcome.actions.len(), 25);
        assert!((0.0..=1.0).contains(&outcome.state_tracking_accuracy));
        // Discounted return has smaller magnitude than total when rewards
        // are all non-positive.
        assert!(outcome.discounted_return >= outcome.total_reward);
    }

    #[test]
    fn zero_steps_is_benign() {
        let pomdp = drift_and_fix();
        let qmdp = QmdpPolicy::solve(&pomdp, 1e-10, 100);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let outcome = rollout(&pomdp, &qmdp, 0, 0, &mut rng);
        assert_eq!(outcome.discounted_return, 0.0);
        assert_eq!(outcome.state_tracking_accuracy, 1.0);
    }

    #[test]
    fn pbvi_rollout_comparable_to_qmdp() {
        let pomdp = drift_and_fix();
        let qmdp = QmdpPolicy::solve(&pomdp, 1e-10, 2000);
        let pbvi = PbviPolicy::solve(&pomdp, &PbviConfig::default());
        let mut q_total = 0.0;
        let mut p_total = 0.0;
        for seed in 0..30 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            q_total += rollout(&pomdp, &qmdp, 0, 40, &mut rng).discounted_return;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            p_total += rollout(&pomdp, &pbvi, 0, 40, &mut rng).discounted_return;
        }
        // PBVI accounts for information value; it should be in the same
        // ballpark or better on average.
        assert!(p_total > q_total - 30.0, "pbvi {p_total} vs qmdp {q_total}");
    }
}
