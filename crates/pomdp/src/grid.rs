//! Lovejoy's fixed-grid value iteration over the belief simplex.
//!
//! The belief simplex is discretized into the regular grid
//! `{b : b_i = k_i / r, Σ k_i = r}` and value iteration runs over the grid
//! points, with off-grid beliefs (the Bayes updates) evaluated by
//! *Freudenthal interpolation* — the barycentric scheme over the simplex
//! triangulation that makes the approximation an upper bound on the true
//! value function (Lovejoy, 1991). This is the classic alternative to
//! point-based methods: dense and regular where PBVI is adaptive.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::{Belief, Policy, Pomdp};

/// Configuration for [`GridPolicy::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridConfig {
    /// Grid resolution `r`: beliefs are multiples of `1/r`. The grid has
    /// `C(r + |S| − 1, |S| − 1)` points — keep `r·|S|` modest.
    pub resolution: usize,
    /// Maximum value-iteration sweeps.
    pub iterations: usize,
    /// Stop when the largest grid-value change falls below this.
    pub tolerance: f64,
}

impl Default for GridConfig {
    fn default() -> Self {
        Self {
            resolution: 4,
            iterations: 120,
            tolerance: 1e-6,
        }
    }
}

/// A solved fixed-grid policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridPolicy {
    /// Grid beliefs, as integer compositions `k` with `Σ k_i = r`.
    compositions: Vec<Vec<u32>>,
    /// Value at each grid point.
    values: Vec<f64>,
    resolution: usize,
    /// The model is retained for one-step lookahead at action time.
    pomdp: Pomdp,
}

impl GridPolicy {
    /// Solves `pomdp` by value iteration over the regular belief grid.
    ///
    /// # Panics
    ///
    /// Panics if `config.resolution` is zero.
    pub fn solve(pomdp: &Pomdp, config: &GridConfig) -> Self {
        assert!(config.resolution > 0, "grid resolution must be positive");
        let n = pomdp.states();
        let r = config.resolution;
        let compositions = enumerate_compositions(n, r as u32);
        let index: HashMap<Vec<u32>, usize> = compositions
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, c)| (c, i))
            .collect();

        let mut values = vec![0.0_f64; compositions.len()];
        for _ in 0..config.iterations {
            let mut next = vec![0.0_f64; compositions.len()];
            let mut residual = 0.0_f64;
            for (i, composition) in compositions.iter().enumerate() {
                let belief = composition_belief(composition, r);
                next[i] = bellman_backup(pomdp, &belief, r, &index, &values, &compositions).0;
                residual = residual.max((next[i] - values[i]).abs());
            }
            values = next;
            if residual < config.tolerance {
                break;
            }
        }

        Self {
            compositions,
            values,
            resolution: r,
            pomdp: pomdp.clone(),
        }
    }

    /// Number of grid points.
    #[inline]
    pub fn grid_size(&self) -> usize {
        self.compositions.len()
    }

    fn index_map(&self) -> HashMap<Vec<u32>, usize> {
        self.compositions
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, c)| (c, i))
            .collect()
    }
}

impl Policy for GridPolicy {
    fn action(&self, belief: &Belief) -> usize {
        let index = self.index_map();
        bellman_backup(
            &self.pomdp,
            belief,
            self.resolution,
            &index,
            &self.values,
            &self.compositions,
        )
        .1
    }

    fn value(&self, belief: &Belief) -> f64 {
        let index = self.index_map();
        interpolate(belief, self.resolution, &index, &self.values)
    }
}

/// One-step lookahead with interpolated continuation values; returns
/// `(value, argmax action)`.
fn bellman_backup(
    pomdp: &Pomdp,
    belief: &Belief,
    resolution: usize,
    index: &HashMap<Vec<u32>, usize>,
    values: &[f64],
    _compositions: &[Vec<u32>],
) -> (f64, usize) {
    let mut best = (f64::NEG_INFINITY, 0usize);
    for a in 0..pomdp.actions() {
        let immediate = belief.expectation(|s| pomdp.expected_reward(s, a));
        let mut continuation = 0.0;
        for o in 0..pomdp.observations() {
            // P(o | b, a) = Σ_{s'} Ω(o|s',a) Σ_s T(s'|s,a) b(s).
            let predicted = belief.predict(pomdp, a);
            let p_o: f64 = (0..pomdp.states())
                .map(|s2| predicted.prob(s2) * pomdp.observation_prob(s2, a, o))
                .sum();
            if p_o <= 1e-12 {
                continue;
            }
            let updated = belief
                .update(pomdp, a, o)
                .expect("observation has positive probability");
            continuation += p_o * interpolate(&updated, resolution, index, values);
        }
        let q = immediate + pomdp.discount() * continuation;
        if q > best.0 {
            best = (q, a);
        }
    }
    best
}

/// Freudenthal interpolation of grid values at an arbitrary belief.
fn interpolate(
    belief: &Belief,
    resolution: usize,
    index: &HashMap<Vec<u32>, usize>,
    values: &[f64],
) -> f64 {
    let mut total = 0.0;
    for (composition, weight) in freudenthal_vertices(belief.as_slice(), resolution) {
        let i = *index
            .get(&composition)
            .expect("freudenthal vertices lie on the grid");
        total += weight * values[i];
    }
    total
}

/// The Freudenthal simplex vertices containing `belief` (scaled by `r`),
/// with barycentric weights. Weights are non-negative and sum to one.
fn freudenthal_vertices(belief: &[f64], resolution: usize) -> Vec<(Vec<u32>, f64)> {
    let n = belief.len();
    let r = resolution as f64;
    // Staircase coordinates: x_i = r · Σ_{j ≥ i} b_j (non-increasing,
    // x_0 = r, implicit x_n = 0).
    let mut x = vec![0.0_f64; n];
    let mut acc = 0.0;
    for i in (0..n).rev() {
        acc += belief[i];
        x[i] = (r * acc).min(r);
    }
    x[0] = r; // exact by construction

    let base: Vec<u32> = x.iter().map(|v| v.floor() as u32).collect();
    let frac: Vec<f64> = x
        .iter()
        .zip(&base)
        .map(|(v, b)| (v - *b as f64).clamp(0.0, 1.0))
        .collect();

    // Sort dimensions by descending fractional part; walk the staircase.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| frac[j].partial_cmp(&frac[i]).expect("finite fractions"));

    // Vertex 0 = base; vertex k = vertex k−1 + e_{order[k−1]}.
    let mut vertices_staircase = Vec::with_capacity(n + 1);
    let mut current = base.clone();
    vertices_staircase.push(current.clone());
    for &dim in &order {
        current[dim] += 1;
        vertices_staircase.push(current.clone());
    }
    // Barycentric weights: λ_0 = 1 − d_(1), λ_k = d_(k) − d_(k+1), λ_n = d_(n).
    let mut weights = Vec::with_capacity(n + 1);
    let sorted: Vec<f64> = order.iter().map(|&i| frac[i]).collect();
    weights.push(1.0 - sorted.first().copied().unwrap_or(0.0));
    for k in 0..n {
        let next = sorted.get(k + 1).copied().unwrap_or(0.0);
        weights.push(sorted[k] - next);
    }

    // Convert staircase vertices back to grid compositions:
    // k_i = x_i − x_{i+1} (with x_n = 0). Some vertices may be invalid
    // staircases (non-monotone) when their weight is zero; skip those.
    let mut out = Vec::with_capacity(n + 1);
    for (vertex, weight) in vertices_staircase.into_iter().zip(weights) {
        if weight <= 1e-12 {
            continue;
        }
        let mut composition = Vec::with_capacity(n);
        let mut valid = true;
        for i in 0..n {
            let hi = vertex[i];
            let lo = if i + 1 < n { vertex[i + 1] } else { 0 };
            if hi < lo {
                valid = false;
                break;
            }
            composition.push(hi - lo);
        }
        if valid && composition.iter().sum::<u32>() == resolution as u32 {
            out.push((composition, weight));
        }
    }
    // Renormalize in case degenerate vertices were skipped.
    let total: f64 = out.iter().map(|(_, w)| w).sum();
    if total > 0.0 {
        for (_, w) in &mut out {
            *w /= total;
        }
    }
    out
}

/// All integer compositions of `total` into `parts` parts.
fn enumerate_compositions(parts: usize, total: u32) -> Vec<Vec<u32>> {
    fn recurse(parts: usize, total: u32, prefix: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if parts == 1 {
            prefix.push(total);
            out.push(prefix.clone());
            prefix.pop();
            return;
        }
        for k in 0..=total {
            prefix.push(k);
            recurse(parts - 1, total - k, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    recurse(parts, total, &mut Vec::new(), &mut out);
    out
}

fn composition_belief(composition: &[u32], resolution: usize) -> Belief {
    Belief::from_weights(
        composition
            .iter()
            .map(|&k| k as f64 / resolution as f64 + 1e-15)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PbviConfig, PbviPolicy, QmdpPolicy};

    fn meter_pomdp() -> Pomdp {
        let z = |s: usize| {
            let mut row = vec![0.05, 0.05, 0.05];
            row[s] = 0.9;
            row
        };
        Pomdp::builder(3, 2, 3)
            .transition(
                0,
                vec![
                    vec![0.7, 0.3, 0.0],
                    vec![0.0, 0.7, 0.3],
                    vec![0.0, 0.0, 1.0],
                ],
            )
            .transition(
                1,
                vec![
                    vec![1.0, 0.0, 0.0],
                    vec![1.0, 0.0, 0.0],
                    vec![1.0, 0.0, 0.0],
                ],
            )
            .observation(0, vec![z(0), z(1), z(2)])
            .observation(1, vec![z(0), z(1), z(2)])
            .reward_fn(|a, s, _| -4.0 * s as f64 - if a == 1 { 2.0 } else { 0.0 })
            .discount(0.9)
            .build()
            .unwrap()
    }

    #[test]
    fn composition_enumeration_counts() {
        // C(r + n − 1, n − 1): n = 3, r = 4 → C(6, 2) = 15.
        assert_eq!(enumerate_compositions(3, 4).len(), 15);
        assert_eq!(enumerate_compositions(2, 5).len(), 6);
        for composition in enumerate_compositions(4, 3) {
            assert_eq!(composition.iter().sum::<u32>(), 3);
        }
    }

    #[test]
    fn freudenthal_weights_are_barycentric() {
        for belief in [
            vec![1.0, 0.0, 0.0],
            vec![0.25, 0.5, 0.25],
            vec![0.37, 0.21, 0.42],
            vec![0.0, 0.0, 1.0],
        ] {
            let vertices = freudenthal_vertices(&belief, 4);
            let total: f64 = vertices.iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "weights sum {total}");
            for (composition, weight) in &vertices {
                assert!(*weight >= 0.0);
                assert_eq!(composition.iter().sum::<u32>(), 4);
            }
            // The interpolated belief reconstructs the input.
            for i in 0..belief.len() {
                let recon: f64 = vertices.iter().map(|(c, w)| w * c[i] as f64 / 4.0).sum();
                assert!(
                    (recon - belief[i]).abs() < 1e-9,
                    "component {i}: {recon} vs {}",
                    belief[i]
                );
            }
        }
    }

    #[test]
    fn interpolation_exact_on_grid_points() {
        let pomdp = meter_pomdp();
        let policy = GridPolicy::solve(&pomdp, &GridConfig::default());
        let index = policy.index_map();
        for (i, composition) in policy.compositions.iter().enumerate() {
            let belief = composition_belief(composition, policy.resolution);
            let v = interpolate(&belief, policy.resolution, &index, &policy.values);
            assert!(
                (v - policy.values[i]).abs() < 1e-9,
                "grid point {i}: {v} vs {}",
                policy.values[i]
            );
        }
    }

    #[test]
    fn grid_policy_acts_like_other_solvers_at_corners() {
        let pomdp = meter_pomdp();
        let grid = GridPolicy::solve(&pomdp, &GridConfig::default());
        assert_eq!(
            grid.action(&Belief::point(3, 2)),
            1,
            "fix when fully hacked"
        );
        assert_eq!(grid.action(&Belief::point(3, 0)), 0, "monitor when clean");
    }

    #[test]
    fn grid_value_brackets_pbvi_lower_bound() {
        // Grid VI is an upper bound on V*; PBVI's alpha vectors are a lower
        // bound. The gap should be modest for this small problem.
        let pomdp = meter_pomdp();
        let grid = GridPolicy::solve(
            &pomdp,
            &GridConfig {
                resolution: 6,
                ..GridConfig::default()
            },
        );
        let pbvi = PbviPolicy::solve(&pomdp, &PbviConfig::default());
        let qmdp = QmdpPolicy::solve(&pomdp, 1e-10, 5000);
        for weights in [vec![1.0, 1.0, 1.0], vec![3.0, 1.0, 0.5]] {
            let b = Belief::from_weights(weights);
            let v_grid = grid.value(&b);
            let v_pbvi = pbvi.value(&b);
            let v_qmdp = qmdp.value(&b);
            assert!(
                v_grid >= v_pbvi - 0.5,
                "grid {v_grid} should not sit far below pbvi {v_pbvi}"
            );
            // QMDP is also an upper bound; both should land in a band.
            assert!((v_grid - v_qmdp).abs() < 10.0);
        }
    }

    #[test]
    fn finer_grids_do_not_worsen_the_upper_bound() {
        let pomdp = meter_pomdp();
        let coarse = GridPolicy::solve(
            &pomdp,
            &GridConfig {
                resolution: 2,
                ..GridConfig::default()
            },
        );
        let fine = GridPolicy::solve(
            &pomdp,
            &GridConfig {
                resolution: 8,
                ..GridConfig::default()
            },
        );
        assert!(fine.grid_size() > coarse.grid_size());
        let b = Belief::uniform(3);
        // Finer grids tighten (reduce) the upper bound, modulo tolerance.
        assert!(fine.value(&b) <= coarse.value(&b) + 0.5);
    }
}
