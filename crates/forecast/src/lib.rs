//! Forecasting substrate: ε-support-vector regression implemented from
//! scratch (paper §4.1, following the LS-SVM time-series approach of \[10\]),
//! plus the feature maps that turn price/renewable/demand histories into
//! training sets.
//!
//! The paper predicts the next day's guideline price two ways:
//!
//! * *naive* (\[8\]): SVR on the lagged price series `p` alone;
//! * *net-metering aware* (this paper): SVR on the series
//!   `G(p, V, D)` that also sees the renewable generation `V` and energy
//!   demand `D` — concretely, the net-demand `D − V` features that drive
//!   the utility's price design.
//!
//! No external ML crate is used: the dual problem is solved by a pairwise
//! coordinate (SMO-style) method under the equality and box constraints.
//!
//! # Examples
//!
//! ```
//! use nms_forecast::{Kernel, Svr, SvrParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Learn y = 2x − 1 from a handful of points.
//! let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 10.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] - 1.0).collect();
//! let model = Svr::fit(&xs, &ys, &SvrParams::default())?;
//! let prediction = model.predict(&[0.55]);
//! assert!((prediction - 0.1).abs() < 0.1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod features;
mod kernel;
mod metrics;
mod scaler;
mod svr;

pub use baseline::{persistence_forecast, seasonal_mean_forecast};
pub use features::{FeatureConfig, PriceHistory, SlidingWindowDataset};
pub use kernel::Kernel;
pub use metrics::{mae, mape, rmse};
pub use scaler::StandardScaler;
pub use svr::{Svr, SvrFitReport, SvrParams, TrainSvrError};
