//! Kernel functions for the SVR.

use serde::{Deserialize, Serialize};

/// A positive-definite kernel `K(x, x')`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Kernel {
    /// The linear kernel `⟨x, x'⟩`.
    Linear,
    /// The Gaussian radial basis function `exp(−γ‖x − x'‖²)`.
    Rbf {
        /// Bandwidth parameter `γ > 0`.
        gamma: f64,
    },
    /// The inhomogeneous polynomial kernel `(⟨x, x'⟩ + coef0)^degree`.
    Polynomial {
        /// Polynomial degree (≥ 1).
        degree: u32,
        /// Additive constant.
        coef0: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the two points have different
    /// dimensions.
    pub fn evaluate(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "kernel arguments must share dimension");
        match *self {
            Self::Linear => dot(a, b),
            Self::Rbf { gamma } => {
                let dist2: f64 = a
                    .iter()
                    .zip(b)
                    .map(|(x, y)| {
                        let d = x - y;
                        d * d
                    })
                    .sum();
                (-gamma * dist2).exp()
            }
            Self::Polynomial { degree, coef0 } => (dot(a, b) + coef0).powi(degree as i32),
        }
    }

    /// Returns `true` for parameterizations that define a valid kernel.
    pub fn is_valid(&self) -> bool {
        match *self {
            Self::Linear => true,
            Self::Rbf { gamma } => gamma.is_finite() && gamma > 0.0,
            Self::Polynomial { degree, coef0 } => degree >= 1 && coef0.is_finite() && coef0 >= 0.0,
        }
    }
}

impl Default for Kernel {
    /// RBF with `γ = 0.5`, a sensible default for standardized features.
    fn default() -> Self {
        Self::Rbf { gamma: 0.5 }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_kernel_is_dot_product() {
        let k = Kernel::Linear;
        assert_eq!(k.evaluate(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn rbf_kernel_properties() {
        let k = Kernel::Rbf { gamma: 1.0 };
        // K(x, x) = 1.
        assert!((k.evaluate(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-12);
        // Decreases with distance.
        let near = k.evaluate(&[0.0], &[0.1]);
        let far = k.evaluate(&[0.0], &[2.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn polynomial_kernel() {
        let k = Kernel::Polynomial {
            degree: 2,
            coef0: 1.0,
        };
        // (1·1 + 1)² = 4.
        assert_eq!(k.evaluate(&[1.0], &[1.0]), 4.0);
    }

    #[test]
    fn validity() {
        assert!(Kernel::Linear.is_valid());
        assert!(Kernel::Rbf { gamma: 0.1 }.is_valid());
        assert!(!Kernel::Rbf { gamma: 0.0 }.is_valid());
        assert!(!Kernel::Rbf { gamma: f64::NAN }.is_valid());
        assert!(Kernel::Polynomial {
            degree: 3,
            coef0: 0.0
        }
        .is_valid());
        assert!(!Kernel::Polynomial {
            degree: 0,
            coef0: 0.0
        }
        .is_valid());
    }

    proptest! {
        #[test]
        fn prop_kernels_symmetric(
            a in proptest::collection::vec(-5.0_f64..5.0, 3),
            b in proptest::collection::vec(-5.0_f64..5.0, 3),
        ) {
            for kernel in [
                Kernel::Linear,
                Kernel::Rbf { gamma: 0.7 },
                Kernel::Polynomial { degree: 2, coef0: 1.0 },
            ] {
                prop_assert!((kernel.evaluate(&a, &b) - kernel.evaluate(&b, &a)).abs() < 1e-10);
            }
        }

        #[test]
        fn prop_rbf_bounded(
            a in proptest::collection::vec(-5.0_f64..5.0, 3),
            b in proptest::collection::vec(-5.0_f64..5.0, 3),
        ) {
            let k = Kernel::Rbf { gamma: 0.3 }.evaluate(&a, &b);
            prop_assert!(k > 0.0 && k <= 1.0 + 1e-12);
        }
    }
}
