//! Forecast-quality metrics.

/// Root-mean-square error between predictions and targets.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn rmse(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    assert!(!predictions.is_empty(), "empty inputs");
    let mse: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / predictions.len() as f64;
    mse.sqrt()
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mae(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    assert!(!predictions.is_empty(), "empty inputs");
    predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / predictions.len() as f64
}

/// Mean absolute percentage error, skipping targets with magnitude below
/// `1e-12` (a percentage error against zero is undefined).
///
/// Returns `None` when every target is (near-)zero.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mape(predictions: &[f64], targets: &[f64]) -> Option<f64> {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    let mut total = 0.0;
    let mut count = 0usize;
    for (p, t) in predictions.iter().zip(targets) {
        if t.abs() > 1e-12 {
            total += ((p - t) / t).abs();
            count += 1;
        }
    }
    (count > 0).then(|| 100.0 * total / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_of_perfect_prediction_is_zero() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn rmse_matches_hand_computation() {
        // Errors 1 and -1: rmse = 1.
        assert!((rmse(&[2.0, 1.0], &[1.0, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mae_matches_hand_computation() {
        assert!((mae(&[2.0, 0.0], &[1.0, 2.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_targets() {
        let m = mape(&[1.1, 5.0], &[1.0, 0.0]).unwrap();
        assert!((m - 10.0).abs() < 1e-9);
        assert!(mape(&[1.0], &[0.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rmse_checks_lengths() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty inputs")]
    fn rmse_rejects_empty() {
        let _ = rmse(&[], &[]);
    }
}
