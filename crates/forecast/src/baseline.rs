//! Non-learning forecasting baselines.
//!
//! These anchor the SVR ablations: a learned model that cannot beat
//! persistence ("tomorrow looks like today") or the seasonal mean
//! ("tomorrow's 3 PM looks like the average 3 PM") is not earning its
//! complexity.

use nms_types::ValidateError;

use crate::PriceHistory;

/// Persistence forecast: the next `steps` slots repeat the most recent
/// `steps` recorded slots (for day-ahead work, "tomorrow equals today").
///
/// # Errors
///
/// Returns [`ValidateError`] when the history is shorter than `steps` or
/// `steps` is zero.
pub fn persistence_forecast(
    history: &PriceHistory,
    steps: usize,
) -> Result<Vec<f64>, ValidateError> {
    if steps == 0 {
        return Err(ValidateError::new("forecast needs at least one step"));
    }
    if history.len() < steps {
        return Err(ValidateError::new(format!(
            "history of {} slots cannot seed a {steps}-step persistence forecast",
            history.len()
        )));
    }
    Ok(history.prices()[history.len() - steps..].to_vec())
}

/// Seasonal-mean forecast: each future slot takes the average recorded
/// price of its slot-of-day. Non-finite recordings (corrupted telemetry
/// that slipped in via [`PriceHistory::push`]) are skipped, so the forecast
/// is finite whenever at least one clean sample exists per slot-of-day.
///
/// # Errors
///
/// Returns [`ValidateError`] when the history is shorter than one full day
/// or `steps` is zero.
pub fn seasonal_mean_forecast(
    history: &PriceHistory,
    steps: usize,
) -> Result<Vec<f64>, ValidateError> {
    if steps == 0 {
        return Err(ValidateError::new("forecast needs at least one step"));
    }
    let spd = history.slots_per_day();
    if history.len() < spd {
        return Err(ValidateError::new(format!(
            "history of {} slots is shorter than one {spd}-slot day",
            history.len()
        )));
    }
    let mut sums = vec![0.0; spd];
    let mut counts = vec![0usize; spd];
    for (t, &p) in history.prices().iter().enumerate() {
        if p.is_finite() {
            sums[t % spd] += p;
            counts[t % spd] += 1;
        }
    }
    let means: Vec<f64> = sums
        .iter()
        .zip(&counts)
        .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    let start = history.len();
    Ok((0..steps).map(|k| means[(start + k) % spd]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history(days: usize) -> PriceHistory {
        let spd = 24;
        let prices: Vec<f64> = (0..spd * days)
            .map(|t| 0.05 + 0.01 * (t % spd) as f64 + 0.001 * (t / spd) as f64)
            .collect();
        let n = prices.len();
        PriceHistory::new(prices, vec![0.0; n], vec![1.0; n], spd).unwrap()
    }

    #[test]
    fn persistence_repeats_last_window() {
        let h = history(3);
        let forecast = persistence_forecast(&h, 24).unwrap();
        assert_eq!(forecast.len(), 24);
        assert_eq!(forecast, h.prices()[48..].to_vec());
        assert!(persistence_forecast(&h, 0).is_err());
        let tiny = history(1);
        assert!(persistence_forecast(&tiny, 48).is_err());
    }

    #[test]
    fn seasonal_mean_averages_by_hour() {
        let h = history(3);
        let forecast = seasonal_mean_forecast(&h, 24).unwrap();
        // Hour 0 mean of days {0,1,2}: 0.05 + 0.001·mean(0,1,2) = 0.051.
        assert!((forecast[0] - 0.051).abs() < 1e-12);
        // Hour 5: 0.05 + 0.05 + 0.001 = 0.101.
        assert!((forecast[5] - (0.05 + 0.01 * 5.0 + 0.001)).abs() < 1e-12);
        assert!(seasonal_mean_forecast(&h, 0).is_err());
    }

    #[test]
    fn seasonal_mean_aligns_phase_with_history_end() {
        // History ending mid-day: the forecast's first slot continues from
        // the next slot-of-day.
        let mut h = history(2);
        h.push(9.9, 0.0, 1.0); // records hour 0 of day 2: history ends at hour 1
        let forecast = seasonal_mean_forecast(&h, 24).unwrap();
        // First forecast slot corresponds to hour 1, averaged over days 0
        // and 1 (the pushed 9.9 sample sits at hour 0).
        let expected_hour1 = (0.06 + 0.061) / 2.0;
        assert!(
            (forecast[0] - expected_hour1).abs() < 1e-9,
            "got {}",
            forecast[0]
        );
        // The hour-0 forecast slot (23 steps later, wrapping) includes
        // the 9.9 outlier.
        let expected_hour0 = (0.05 + 0.051 + 9.9) / 3.0;
        assert!((forecast[23] - expected_hour0).abs() < 1e-9);
    }

    #[test]
    fn multi_day_forecast_wraps() {
        let h = history(2);
        let forecast = seasonal_mean_forecast(&h, 48).unwrap();
        for k in 0..24 {
            assert!((forecast[k] - forecast[k + 24]).abs() < 1e-12);
        }
    }
}
