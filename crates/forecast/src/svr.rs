//! ε-support-vector regression trained with a pairwise (SMO-style)
//! coordinate method.
//!
//! In the `β` parameterization (`β_i = α_i − α_i*`) the dual of ε-SVR is
//!
//! ```text
//! minimize  W(β) = ½ βᵀKβ − yᵀβ + ε‖β‖₁
//! subject to Σ_i β_i = 0,  |β_i| ≤ C
//! ```
//!
//! Working on one pair `(i, j)` at a time with `β_i + β_j` held constant
//! keeps the equality constraint satisfied; each pairwise subproblem is a
//! one-dimensional piecewise quadratic that we minimize exactly over its
//! breakpoints.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use nms_types::{BudgetClock, RetryPolicy, SolveBudget};

use crate::{Kernel, StandardScaler};

/// Hyperparameters for [`Svr::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvrParams {
    /// Box constraint `C > 0` (regularization strength inverse).
    pub c: f64,
    /// Width `ε ≥ 0` of the insensitive tube.
    pub epsilon: f64,
    /// The kernel.
    pub kernel: Kernel,
    /// Maximum passes over all pairs.
    pub max_passes: usize,
    /// Stop when the best objective improvement in a full pass falls below
    /// this value.
    pub tolerance: f64,
    /// Standardize features before training/prediction.
    pub standardize: bool,
}

impl Default for SvrParams {
    fn default() -> Self {
        Self {
            c: 10.0,
            epsilon: 0.01,
            kernel: Kernel::default(),
            max_passes: 60,
            tolerance: 1e-8,
            standardize: true,
        }
    }
}

/// Why training failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrainSvrError {
    /// No training samples were supplied.
    EmptyTrainingSet,
    /// Features and targets differ in length, or rows are ragged.
    ShapeMismatch {
        /// Human-readable detail.
        detail: String,
    },
    /// A hyperparameter is out of range.
    InvalidParams {
        /// Human-readable detail.
        detail: String,
    },
    /// A feature or target is NaN/infinite.
    NonFiniteData,
}

impl fmt::Display for TrainSvrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyTrainingSet => write!(f, "training set is empty"),
            Self::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            Self::InvalidParams { detail } => write!(f, "invalid SVR parameters: {detail}"),
            Self::NonFiniteData => write!(f, "training data contains non-finite values"),
        }
    }
}

impl Error for TrainSvrError {}

/// How an SMO fit went — fuel for the caller's health ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SvrFitReport {
    /// The pass loop stopped because improvements fell below tolerance
    /// (rather than exhausting `max_passes`).
    pub converged: bool,
    /// Passes actually executed by the winning fit.
    pub passes: usize,
    /// Fit attempts consumed (1 unless trained via [`Svr::fit_with_retry`]).
    pub attempts: usize,
    /// A watchdog [`SolveBudget`](nms_types::SolveBudget) stopped the pass
    /// loop before the SMO's own limits did. Absent in pre-budget
    /// serialized reports.
    #[serde(default)]
    pub budget_breached: bool,
}

/// A trained ε-SVR model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Svr {
    support_vectors: Vec<Vec<f64>>,
    betas: Vec<f64>,
    bias: f64,
    kernel: Kernel,
    scaler: Option<StandardScaler>,
}

impl Svr {
    /// Trains on row-major features `xs` and targets `ys`.
    ///
    /// # Errors
    ///
    /// Returns [`TrainSvrError`] on empty/ragged/non-finite data or invalid
    /// hyperparameters.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], params: &SvrParams) -> Result<Self, TrainSvrError> {
        Self::fit_with_report(xs, ys, params).map(|(model, _)| model)
    }

    /// Like [`Svr::fit`], but also reports whether the SMO pass loop
    /// converged and how many passes it spent.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Svr::fit`].
    pub fn fit_with_report(
        xs: &[Vec<f64>],
        ys: &[f64],
        params: &SvrParams,
    ) -> Result<(Self, SvrFitReport), TrainSvrError> {
        Self::fit_with_report_budgeted(xs, ys, params, None)
    }

    /// Like [`Svr::fit_with_report`], but the SMO pass loop is watched by
    /// an optional running [`BudgetClock`]; a breach stops the loop cleanly
    /// and surfaces via [`SvrFitReport::budget_breached`] — the partially
    /// trained model is still returned (unconverged) so the caller can
    /// decide whether to fall back.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Svr::fit`].
    pub fn fit_with_report_budgeted(
        xs: &[Vec<f64>],
        ys: &[f64],
        params: &SvrParams,
        clock: Option<&BudgetClock>,
    ) -> Result<(Self, SvrFitReport), TrainSvrError> {
        if xs.is_empty() {
            return Err(TrainSvrError::EmptyTrainingSet);
        }
        if xs.len() != ys.len() {
            return Err(TrainSvrError::ShapeMismatch {
                detail: format!("{} feature rows vs {} targets", xs.len(), ys.len()),
            });
        }
        let dim = xs[0].len();
        if xs.iter().any(|row| row.len() != dim) {
            return Err(TrainSvrError::ShapeMismatch {
                detail: "ragged feature rows".into(),
            });
        }
        if xs.iter().flatten().any(|v| !v.is_finite()) || ys.iter().any(|v| !v.is_finite()) {
            return Err(TrainSvrError::NonFiniteData);
        }
        if !(params.c > 0.0 && params.c.is_finite()) {
            return Err(TrainSvrError::InvalidParams {
                detail: format!("C must be positive, got {}", params.c),
            });
        }
        if !(params.epsilon >= 0.0 && params.epsilon.is_finite()) {
            return Err(TrainSvrError::InvalidParams {
                detail: format!("epsilon must be non-negative, got {}", params.epsilon),
            });
        }
        if !params.kernel.is_valid() {
            return Err(TrainSvrError::InvalidParams {
                detail: format!("invalid kernel {:?}", params.kernel),
            });
        }

        let (scaler, features) = if params.standardize {
            let scaler = StandardScaler::fit(xs).map_err(|e| TrainSvrError::ShapeMismatch {
                detail: e.to_string(),
            })?;
            let transformed = scaler.transform_all(xs);
            (Some(scaler), transformed)
        } else {
            (None, xs.to_vec())
        };

        let n = features.len();
        // Gram matrix (n is time-series scale here: hundreds, not millions).
        let mut gram = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let k = params.kernel.evaluate(&features[i], &features[j]);
                gram[i * n + j] = k;
                gram[j * n + i] = k;
            }
        }

        let mut beta = vec![0.0_f64; n];
        // g[i] = (Kβ)_i, kept incrementally.
        let mut g = vec![0.0_f64; n];

        let mut converged = false;
        let mut budget_breached = false;
        let mut passes = 0usize;
        for _pass in 0..params.max_passes {
            if let Some(clock) = clock {
                if clock.breach(passes).is_some() {
                    budget_breached = true;
                    break;
                }
            }
            passes += 1;
            let mut best_improvement = 0.0_f64;
            for i in 0..n {
                let j = (i + 1) % n;
                if n == 1 {
                    break;
                }
                let improvement = Self::optimize_pair(
                    i,
                    j,
                    &mut beta,
                    &mut g,
                    &gram,
                    ys,
                    params.c,
                    params.epsilon,
                    n,
                );
                best_improvement = best_improvement.max(improvement);
                // A second partner further away accelerates mixing.
                let j2 = (i + n / 2) % n;
                if j2 != i && j2 != j {
                    let improvement = Self::optimize_pair(
                        i,
                        j2,
                        &mut beta,
                        &mut g,
                        &gram,
                        ys,
                        params.c,
                        params.epsilon,
                        n,
                    );
                    best_improvement = best_improvement.max(improvement);
                }
            }
            if best_improvement < params.tolerance {
                converged = true;
                break;
            }
        }

        // Bias from free support vectors' KKT conditions; fall back to the
        // mean residual.
        let mut bias_sum = 0.0;
        let mut bias_count = 0usize;
        for i in 0..n {
            let b = beta[i];
            if b.abs() > 1e-9 && b.abs() < params.c - 1e-9 {
                let sign = if b > 0.0 { 1.0 } else { -1.0 };
                bias_sum += ys[i] - g[i] - sign * params.epsilon;
                bias_count += 1;
            }
        }
        let bias = if bias_count > 0 {
            bias_sum / bias_count as f64
        } else {
            let residual: f64 = (0..n).map(|i| ys[i] - g[i]).sum();
            residual / n as f64
        };

        // Keep only support vectors.
        let mut support_vectors = Vec::new();
        let mut betas = Vec::new();
        for (i, &b) in beta.iter().enumerate() {
            if b.abs() > 1e-10 {
                support_vectors.push(features[i].clone());
                betas.push(b);
            }
        }

        Ok((
            Self {
                support_vectors,
                betas,
                bias,
                kernel: params.kernel,
                scaler,
            },
            SvrFitReport {
                converged,
                passes,
                attempts: 1,
                budget_breached,
            },
        ))
    }

    /// Trains with escalating pass budgets under a [`RetryPolicy`]: attempt
    /// `k` gets `policy.budget(params.max_passes, k)` passes. Stops at the
    /// first converged fit; when every attempt exhausts its budget the last
    /// (unconverged) model is returned with `converged: false` so callers
    /// can decide whether to fall back.
    ///
    /// # Errors
    ///
    /// Returns [`TrainSvrError::InvalidParams`] for an invalid policy, and
    /// the same data/parameter errors as [`Svr::fit`].
    pub fn fit_with_retry(
        xs: &[Vec<f64>],
        ys: &[f64],
        params: &SvrParams,
        policy: &RetryPolicy,
    ) -> Result<(Self, SvrFitReport), TrainSvrError> {
        Self::fit_with_retry_budgeted(xs, ys, params, policy, &SolveBudget::unlimited())
    }

    /// Like [`Svr::fit_with_retry`], but the whole retry sequence is
    /// watched by a [`SolveBudget`]: the wall-clock deadline spans all
    /// attempts, while the iteration cap bounds each attempt's passes. A
    /// breach abandons remaining retries — the budget is already spent —
    /// and returns the last (unconverged) model with
    /// [`SvrFitReport::budget_breached`] set.
    ///
    /// # Errors
    ///
    /// Returns [`TrainSvrError::InvalidParams`] for an invalid policy or
    /// budget, and the same data/parameter errors as [`Svr::fit`].
    pub fn fit_with_retry_budgeted(
        xs: &[Vec<f64>],
        ys: &[f64],
        params: &SvrParams,
        policy: &RetryPolicy,
        budget: &SolveBudget,
    ) -> Result<(Self, SvrFitReport), TrainSvrError> {
        policy.validate().map_err(|e| TrainSvrError::InvalidParams {
            detail: format!("retry policy: {e}"),
        })?;
        budget.validate().map_err(|e| TrainSvrError::InvalidParams {
            detail: format!("solve budget: {e}"),
        })?;
        let clock = budget.start();
        let mut last = None;
        for attempt in 0..policy.max_attempts {
            let escalated = SvrParams {
                max_passes: policy.budget(params.max_passes, attempt),
                ..*params
            };
            let (model, mut report) = Self::fit_with_report_budgeted(xs, ys, &escalated, Some(&clock))?;
            report.attempts = attempt + 1;
            if report.converged {
                return Ok((model, report));
            }
            last = Some((model, report));
            if report.budget_breached {
                // The budget is spent; retrying would breach again.
                break;
            }
        }
        Ok(last.expect("max_attempts >= 1 is enforced by validate"))
    }

    /// Exactly minimizes the pairwise subproblem, returning the objective
    /// improvement.
    #[allow(clippy::too_many_arguments)]
    fn optimize_pair(
        i: usize,
        j: usize,
        beta: &mut [f64],
        g: &mut [f64],
        gram: &[f64],
        ys: &[f64],
        c: f64,
        epsilon: f64,
        n: usize,
    ) -> f64 {
        let kii = gram[i * n + i];
        let kjj = gram[j * n + j];
        let kij = gram[i * n + j];
        let curvature = kii + kjj - 2.0 * kij;
        let bi = beta[i];
        let bj = beta[j];

        // Move β_i by t and β_j by −t. Objective delta as a function of t:
        // ΔW(t) = ½ curvature t² + (g_i − g_j − y_i + y_j) t
        //         + ε(|b_i + t| − |b_i|) + ε(|b_j − t| − |b_j|).
        let linear = g[i] - g[j] - ys[i] + ys[j];
        let t_lo = (-c - bi).max(bj - c);
        let t_hi = (c - bi).min(bj + c);
        if t_lo >= t_hi {
            return 0.0;
        }

        let delta = |t: f64| {
            0.5 * curvature * t * t
                + linear * t
                + epsilon * ((bi + t).abs() - bi.abs())
                + epsilon * ((bj - t).abs() - bj.abs())
        };

        // Candidate minimizers: the quadratic vertex of each smooth branch
        // (the ℓ1 gradient contribution is ±ε per term), the kinks, and the
        // box edges.
        let mut candidates = vec![t_lo, t_hi, -bi, bj, 0.0];
        if curvature > 1e-12 {
            for si in [-1.0, 1.0] {
                for sj in [-1.0, 1.0] {
                    // On the branch sign(b_i + t) = si, sign(b_j − t) = sj:
                    // d/dt = curvature·t + linear + ε·si − ε·sj = 0.
                    candidates.push(-(linear + epsilon * si - epsilon * sj) / curvature);
                }
            }
        }

        let mut best_t = 0.0;
        let mut best_delta = 0.0;
        for &t in &candidates {
            let t = t.clamp(t_lo, t_hi);
            let d = delta(t);
            if d < best_delta {
                best_delta = d;
                best_t = t;
            }
        }
        if best_delta >= 0.0 {
            return 0.0;
        }

        beta[i] += best_t;
        beta[j] -= best_t;
        for r in 0..n {
            g[r] += best_t * (gram[r * n + i] - gram[r * n + j]);
        }
        -best_delta
    }

    /// Predicts the target for one raw (unstandardized) sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample dimension differs from the training dimension.
    pub fn predict(&self, sample: &[f64]) -> f64 {
        let transformed;
        let x: &[f64] = match &self.scaler {
            Some(scaler) => {
                transformed = scaler.transform(sample);
                &transformed
            }
            None => sample,
        };
        self.betas
            .iter()
            .zip(&self.support_vectors)
            .map(|(b, sv)| b * self.kernel.evaluate(sv, x))
            .sum::<f64>()
            + self.bias
    }

    /// Predicts a batch of samples.
    pub fn predict_all(&self, samples: &[Vec<f64>]) -> Vec<f64> {
        samples.iter().map(|s| self.predict(s)).collect()
    }

    /// Number of support vectors retained.
    #[inline]
    pub fn support_vector_count(&self) -> usize {
        self.support_vectors.len()
    }

    /// The fitted bias term.
    #[inline]
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmse;

    fn linear_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let ys = xs.iter().map(|x| 3.0 * x[0] + 0.5).collect();
        (xs, ys)
    }

    #[test]
    fn fits_linear_function_with_linear_kernel() {
        let (xs, ys) = linear_data(30);
        let params = SvrParams {
            kernel: Kernel::Linear,
            epsilon: 0.001,
            ..SvrParams::default()
        };
        let model = Svr::fit(&xs, &ys, &params).unwrap();
        let preds = model.predict_all(&xs);
        assert!(rmse(&preds, &ys) < 0.05, "rmse {}", rmse(&preds, &ys));
    }

    #[test]
    fn fits_sine_with_rbf_kernel() {
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 * 0.1]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0].sin()).collect();
        let params = SvrParams {
            kernel: Kernel::Rbf { gamma: 2.0 },
            c: 50.0,
            epsilon: 0.01,
            max_passes: 120,
            ..SvrParams::default()
        };
        let model = Svr::fit(&xs, &ys, &params).unwrap();
        let preds = model.predict_all(&xs);
        assert!(rmse(&preds, &ys) < 0.08, "rmse {}", rmse(&preds, &ys));
        // Interpolates between training points too.
        let mid = model.predict(&[1.05]);
        assert!((mid - 1.05_f64.sin()).abs() < 0.15);
    }

    #[test]
    fn epsilon_tube_sparsifies() {
        let (xs, ys) = linear_data(40);
        let tight = Svr::fit(
            &xs,
            &ys,
            &SvrParams {
                kernel: Kernel::Linear,
                epsilon: 0.0,
                ..SvrParams::default()
            },
        )
        .unwrap();
        let loose = Svr::fit(
            &xs,
            &ys,
            &SvrParams {
                kernel: Kernel::Linear,
                epsilon: 0.5,
                ..SvrParams::default()
            },
        )
        .unwrap();
        // A wide tube swallows most points: fewer support vectors.
        assert!(loose.support_vector_count() <= tight.support_vector_count());
    }

    #[test]
    fn constant_target_learned_via_bias() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys = vec![4.2; 10];
        let model = Svr::fit(&xs, &ys, &SvrParams::default()).unwrap();
        assert!((model.predict(&[3.0]) - 4.2).abs() < 0.05);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let (xs, ys) = linear_data(5);
        assert!(matches!(
            Svr::fit(&[], &[], &SvrParams::default()),
            Err(TrainSvrError::EmptyTrainingSet)
        ));
        assert!(matches!(
            Svr::fit(&xs, &ys[..3], &SvrParams::default()),
            Err(TrainSvrError::ShapeMismatch { .. })
        ));
        let bad_c = SvrParams {
            c: 0.0,
            ..SvrParams::default()
        };
        assert!(matches!(
            Svr::fit(&xs, &ys, &bad_c),
            Err(TrainSvrError::InvalidParams { .. })
        ));
        let bad_eps = SvrParams {
            epsilon: -1.0,
            ..SvrParams::default()
        };
        assert!(Svr::fit(&xs, &ys, &bad_eps).is_err());
        let mut xs_nan = xs.clone();
        xs_nan[0][0] = f64::NAN;
        assert!(matches!(
            Svr::fit(&xs_nan, &ys, &SvrParams::default()),
            Err(TrainSvrError::NonFiniteData)
        ));
        let ragged = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(Svr::fit(&ragged, &[1.0, 2.0], &SvrParams::default()).is_err());
    }

    #[test]
    fn multivariate_features() {
        // y = x0 + 2·x1.
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 7) as f64, (i % 5) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] + 2.0 * x[1]).collect();
        let params = SvrParams {
            kernel: Kernel::Linear,
            c: 100.0,
            epsilon: 0.01,
            ..SvrParams::default()
        };
        let model = Svr::fit(&xs, &ys, &params).unwrap();
        assert!((model.predict(&[3.0, 4.0]) - 11.0).abs() < 0.3);
    }

    #[test]
    fn single_sample_degenerates_to_bias() {
        let model = Svr::fit(&[vec![1.0]], &[5.0], &SvrParams::default()).unwrap();
        assert!((model.predict(&[1.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn fit_report_tracks_convergence() {
        let (xs, ys) = linear_data(30);
        let params = SvrParams {
            kernel: Kernel::Linear,
            ..SvrParams::default()
        };
        let (_, report) = Svr::fit_with_report(&xs, &ys, &params).unwrap();
        assert!(report.converged);
        assert!(report.passes <= params.max_passes);
        assert_eq!(report.attempts, 1);

        // A one-pass budget with an unreachable tolerance cannot converge.
        let strangled = SvrParams {
            max_passes: 1,
            tolerance: 0.0,
            ..params
        };
        let (_, report) = Svr::fit_with_report(&xs, &ys, &strangled).unwrap();
        assert!(!report.converged);
        assert_eq!(report.passes, 1);
    }

    #[test]
    fn retry_escalates_pass_budget_until_convergence() {
        let (xs, ys) = linear_data(30);
        // One pass is not enough for this tolerance; the retry doubles the
        // budget each attempt until the fit converges.
        let params = SvrParams {
            kernel: Kernel::Linear,
            max_passes: 1,
            tolerance: 1e-10,
            ..SvrParams::default()
        };
        let policy = RetryPolicy {
            max_attempts: 8,
            iteration_growth: 2.0,
            reseed_stride: 1,
        };
        let (model, report) = Svr::fit_with_retry(&xs, &ys, &params, &policy).unwrap();
        assert!(report.converged, "report {report:?}");
        assert!(report.attempts > 1, "report {report:?}");
        let preds = model.predict_all(&xs);
        assert!(rmse(&preds, &ys) < 0.05);
    }

    #[test]
    fn retry_returns_unconverged_model_when_budget_exhausts() {
        let (xs, ys) = linear_data(30);
        let params = SvrParams {
            kernel: Kernel::Linear,
            max_passes: 1,
            tolerance: 0.0, // improvements can never drop below zero
            ..SvrParams::default()
        };
        let policy = RetryPolicy {
            max_attempts: 2,
            iteration_growth: 1.0,
            reseed_stride: 1,
        };
        let (_, report) = Svr::fit_with_retry(&xs, &ys, &params, &policy).unwrap();
        assert!(!report.converged);
        assert_eq!(report.attempts, 2);

        let bad_policy = RetryPolicy {
            max_attempts: 0,
            ..policy
        };
        assert!(matches!(
            Svr::fit_with_retry(&xs, &ys, &params, &bad_policy),
            Err(TrainSvrError::InvalidParams { .. })
        ));
    }

    #[test]
    fn watchdog_budget_stops_smo_and_abandons_retries() {
        let (xs, ys) = linear_data(30);
        let params = SvrParams {
            kernel: Kernel::Linear,
            max_passes: 50,
            tolerance: 0.0, // can never converge on its own
            ..SvrParams::default()
        };
        let policy = RetryPolicy {
            max_attempts: 4,
            iteration_growth: 2.0,
            reseed_stride: 1,
        };
        let budget = SolveBudget {
            max_iterations: Some(2),
            max_wall_secs: None,
        };
        let (model, report) =
            Svr::fit_with_retry_budgeted(&xs, &ys, &params, &policy, &budget).unwrap();
        assert!(report.budget_breached, "report {report:?}");
        assert!(!report.converged);
        assert_eq!(report.attempts, 1, "breach must stop further attempts");
        assert_eq!(report.passes, 2);
        // The partially trained model still predicts finite values.
        assert!(model.predict(&xs[0]).is_finite());

        // An invalid budget is reported like an invalid policy.
        let bad = SolveBudget {
            max_iterations: None,
            max_wall_secs: Some(-1.0),
        };
        assert!(matches!(
            Svr::fit_with_retry_budgeted(&xs, &ys, &params, &policy, &bad),
            Err(TrainSvrError::InvalidParams { .. })
        ));
    }

    #[test]
    fn standardization_helps_scale_mismatched_features() {
        // One feature in thousands, target depends on it linearly.
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 1000.0]).collect();
        let ys: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let params = SvrParams {
            kernel: Kernel::Rbf { gamma: 0.5 },
            c: 100.0,
            ..SvrParams::default()
        };
        let model = Svr::fit(&xs, &ys, &params).unwrap();
        let preds = model.predict_all(&xs);
        assert!(rmse(&preds, &ys) < 1.0, "rmse {}", rmse(&preds, &ys));
    }
}
