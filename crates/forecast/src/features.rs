//! Time-series featureization, including the paper's net-metering-aware
//! feature map `G(p, V, D)` (§4.1).
//!
//! The naive predictor of \[8\] sees only the lagged guideline price `p`.
//! The paper's predictor additionally sees the renewable generation `V` and
//! the energy demand `D` — concretely the lagged *net demand* `D − V`, the
//! quantity the utility actually prices, plus the (forecastable) renewable
//! generation of the target slot itself.

use serde::{Deserialize, Serialize};

use nms_types::ValidateError;

use crate::Svr;

/// Which features the price model sees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Lags (in slots, ≥ 1) into the guideline-price series.
    pub price_lags: Vec<usize>,
    /// Lags (in slots, ≥ `slots_per_day` for day-ahead use) into the net
    /// demand series `D − V`. Empty for the naive model.
    pub net_demand_lags: Vec<usize>,
    /// Include the target slot's own renewable-generation forecast
    /// (the paper: `θ` is "approximately known in advance").
    pub target_generation: bool,
    /// Include sin/cos encodings of the hour of day.
    pub hour_encoding: bool,
    /// Slots per day of the underlying series (24 for hourly).
    pub slots_per_day: usize,
}

impl FeatureConfig {
    /// The naive configuration of \[8\]: price history only.
    pub fn naive(slots_per_day: usize) -> Self {
        Self {
            price_lags: vec![1, 2, slots_per_day],
            net_demand_lags: Vec::new(),
            target_generation: false,
            hour_encoding: true,
            slots_per_day,
        }
    }

    /// The paper's net-metering-aware configuration `G(p, V, D)`.
    pub fn net_metering_aware(slots_per_day: usize) -> Self {
        Self {
            price_lags: vec![1, 2, slots_per_day],
            net_demand_lags: vec![slots_per_day, 2 * slots_per_day],
            target_generation: true,
            hour_encoding: true,
            slots_per_day,
        }
    }

    /// The largest lag referenced; a sample at slot `t` needs `t ≥ max_lag`.
    pub fn max_lag(&self) -> usize {
        self.price_lags
            .iter()
            .chain(&self.net_demand_lags)
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] on zero lags, a zero `slots_per_day`, or a
    /// configuration with no features at all.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.slots_per_day == 0 {
            return Err(ValidateError::new("slots_per_day must be positive"));
        }
        if self
            .price_lags
            .iter()
            .chain(&self.net_demand_lags)
            .any(|&l| l == 0)
        {
            return Err(ValidateError::new("lags must be at least 1"));
        }
        if self.price_lags.is_empty()
            && self.net_demand_lags.is_empty()
            && !self.target_generation
            && !self.hour_encoding
        {
            return Err(ValidateError::new(
                "feature configuration selects no features",
            ));
        }
        Ok(())
    }
}

/// A training set produced by sliding a feature window over a history.
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingWindowDataset {
    /// Row-major feature matrix.
    pub xs: Vec<Vec<f64>>,
    /// Target prices aligned with `xs`.
    pub ys: Vec<f64>,
}

impl SlidingWindowDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.ys.len()
    }

    /// `true` when the history was too short to produce any sample.
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }
}

/// An aligned history of guideline prices `p_t`, community renewable
/// generation `Θ_t`, and community energy demand `L_t`.
///
/// # Examples
///
/// ```
/// use nms_forecast::{FeatureConfig, PriceHistory};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let slots = 24 * 5;
/// let prices: Vec<f64> = (0..slots).map(|t| 0.1 + 0.01 * ((t % 24) as f64)).collect();
/// let generation = vec![0.0; slots];
/// let demand = vec![100.0; slots];
/// let history = PriceHistory::new(prices, generation, demand, 24)?;
/// let dataset = history.training_set(&FeatureConfig::naive(24));
/// assert!(!dataset.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceHistory {
    prices: Vec<f64>,
    generation: Vec<f64>,
    demand: Vec<f64>,
    slots_per_day: usize,
}

impl PriceHistory {
    /// Builds a history from aligned series.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when the series differ in length, contain
    /// non-finite values, or `slots_per_day` is zero.
    pub fn new(
        prices: Vec<f64>,
        generation: Vec<f64>,
        demand: Vec<f64>,
        slots_per_day: usize,
    ) -> Result<Self, ValidateError> {
        if slots_per_day == 0 {
            return Err(ValidateError::new("slots_per_day must be positive"));
        }
        if prices.len() != generation.len() || prices.len() != demand.len() {
            return Err(ValidateError::new(format!(
                "series lengths differ: {} prices, {} generation, {} demand",
                prices.len(),
                generation.len(),
                demand.len()
            )));
        }
        for (name, series) in [
            ("prices", &prices),
            ("generation", &generation),
            ("demand", &demand),
        ] {
            if series.iter().any(|v| !v.is_finite()) {
                return Err(ValidateError::new(format!(
                    "{name} contains non-finite values"
                )));
            }
        }
        Ok(Self {
            prices,
            generation,
            demand,
            slots_per_day,
        })
    }

    /// Number of recorded slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// `true` when no slots were recorded yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }

    /// The recorded prices.
    #[inline]
    pub fn prices(&self) -> &[f64] {
        &self.prices
    }

    /// Slots per day the series was recorded at.
    #[inline]
    pub fn slots_per_day(&self) -> usize {
        self.slots_per_day
    }

    /// Appends one observed slot.
    pub fn push(&mut self, price: f64, generation: f64, demand: f64) {
        self.prices.push(price);
        self.generation.push(generation);
        self.demand.push(demand);
    }

    /// A copy containing only the first `slots` recorded slots (used for
    /// backtesting a predictor against the tail of its own history).
    ///
    /// # Panics
    ///
    /// Panics if `slots` exceeds the recorded length.
    pub fn truncated(&self, slots: usize) -> PriceHistory {
        assert!(
            slots <= self.len(),
            "cannot truncate {slots} from {}",
            self.len()
        );
        PriceHistory {
            prices: self.prices[..slots].to_vec(),
            generation: self.generation[..slots].to_vec(),
            demand: self.demand[..slots].to_vec(),
            slots_per_day: self.slots_per_day,
        }
    }

    /// Net demand `D_t − V_t` at a recorded slot.
    #[inline]
    fn net_demand(&self, t: usize) -> f64 {
        self.demand[t] - self.generation[t]
    }

    fn hour_features(&self, t: usize) -> [f64; 2] {
        let phase = 2.0 * std::f64::consts::PI * (t % self.slots_per_day) as f64
            / self.slots_per_day as f64;
        [phase.sin(), phase.cos()]
    }

    /// The feature vector predicting the price at recorded slot `t`, or
    /// `None` when `t` does not have enough history behind it.
    ///
    /// `target_generation_override` supplies the target slot's generation
    /// forecast when `t` is beyond the recorded series (future slot).
    fn features_for(
        &self,
        t: usize,
        config: &FeatureConfig,
        extended_prices: &[f64],
        target_generation_override: Option<f64>,
    ) -> Option<Vec<f64>> {
        if t < config.max_lag() {
            return None;
        }
        let mut features = Vec::new();
        for &lag in &config.price_lags {
            features.push(extended_prices[t - lag]);
        }
        for &lag in &config.net_demand_lags {
            // Net-demand lags must reference recorded slots.
            if t - lag >= self.len() {
                return None;
            }
            features.push(self.net_demand(t - lag));
        }
        if config.target_generation {
            let g = if t < self.len() {
                self.generation[t]
            } else {
                target_generation_override?
            };
            features.push(g);
        }
        if config.hour_encoding {
            features.extend(self.hour_features(t));
        }
        Some(features)
    }

    /// Builds the sliding-window training set for `config` over the
    /// recorded history.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; call [`FeatureConfig::validate`]
    /// first for user-supplied configs.
    pub fn training_set(&self, config: &FeatureConfig) -> SlidingWindowDataset {
        config.validate().expect("invalid feature configuration");
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for t in config.max_lag()..self.len() {
            if let Some(features) = self.features_for(t, config, &self.prices, None) {
                xs.push(features);
                ys.push(self.prices[t]);
            }
        }
        SlidingWindowDataset { xs, ys }
    }

    /// Recursively forecasts the `steps` slots following the recorded
    /// history with a trained model, feeding predictions back in as price
    /// lags.
    ///
    /// `future_generation[k]` is the generation forecast for future slot
    /// `k` (required when the config uses `target_generation`).
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when the history is shorter than the
    /// configuration's largest lag, when `future_generation` is missing or
    /// too short while required, or when a net-demand lag would reach into
    /// the unrecorded future (use lags ≥ `steps` for day-ahead work).
    pub fn forecast(
        &self,
        model: &Svr,
        config: &FeatureConfig,
        steps: usize,
        future_generation: Option<&[f64]>,
    ) -> Result<Vec<f64>, ValidateError> {
        config.validate()?;
        if self.len() < config.max_lag() {
            return Err(ValidateError::new(format!(
                "history of {} slots shorter than max lag {}",
                self.len(),
                config.max_lag()
            )));
        }
        if config.target_generation {
            match future_generation {
                Some(g) if g.len() >= steps => {}
                _ => {
                    return Err(ValidateError::new(
                        "target_generation is enabled but future generation forecast is missing or too short",
                    ))
                }
            }
        }
        if let Some(&min_nd_lag) = config.net_demand_lags.iter().min() {
            if min_nd_lag < steps {
                return Err(ValidateError::new(format!(
                    "net demand lag {min_nd_lag} reaches into the forecast window of {steps} slots"
                )));
            }
        }

        let mut extended = self.prices.clone();
        let mut predictions = Vec::with_capacity(steps);
        for k in 0..steps {
            let t = self.len() + k;
            let features = self
                .features_for(t, config, &extended, future_generation.map(|g| g[k]))
                .ok_or_else(|| ValidateError::new("insufficient history for forecast"))?;
            // Prices are non-negative; clamp the regression output.
            let predicted = model.predict(&features).max(0.0);
            predictions.push(predicted);
            extended.push(predicted);
        }
        Ok(predictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Kernel, SvrParams};

    /// A history whose price is a daily sinusoid shifted by PV generation.
    fn pv_coupled_history(days: usize) -> PriceHistory {
        let spd = 24;
        let slots = spd * days;
        let mut prices = Vec::with_capacity(slots);
        let mut generation = Vec::with_capacity(slots);
        let mut demand = Vec::with_capacity(slots);
        for t in 0..slots {
            let hour = (t % spd) as f64;
            let pv = if (6.0..18.0).contains(&hour) {
                50.0 * (1.0 - ((hour - 12.0) / 6.0).powi(2))
            } else {
                0.0
            };
            let base_demand = 100.0 + -(30.0 * ((hour - 19.0) / 3.0).powi(2).min(1.0)) + 30.0;
            let net = base_demand - pv;
            prices.push(0.04 + 0.001 * net.max(0.0));
            generation.push(pv);
            demand.push(base_demand);
        }
        PriceHistory::new(prices, generation, demand, spd).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(PriceHistory::new(vec![1.0], vec![1.0], vec![1.0], 0).is_err());
        assert!(PriceHistory::new(vec![1.0], vec![1.0, 2.0], vec![1.0], 24).is_err());
        assert!(PriceHistory::new(vec![f64::NAN], vec![0.0], vec![0.0], 24).is_err());
    }

    #[test]
    fn config_presets_validate() {
        assert!(FeatureConfig::naive(24).validate().is_ok());
        assert!(FeatureConfig::net_metering_aware(24).validate().is_ok());
        assert_eq!(FeatureConfig::naive(24).max_lag(), 24);
        assert_eq!(FeatureConfig::net_metering_aware(24).max_lag(), 48);
        let mut bad = FeatureConfig::naive(24);
        bad.price_lags.push(0);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn training_set_shapes() {
        let history = pv_coupled_history(5);
        let naive = history.training_set(&FeatureConfig::naive(24));
        assert_eq!(naive.len(), 24 * 5 - 24);
        // price lags (3) + hour sin/cos (2).
        assert_eq!(naive.xs[0].len(), 5);
        let aware = history.training_set(&FeatureConfig::net_metering_aware(24));
        assert_eq!(aware.len(), 24 * 5 - 48);
        // 3 price lags + 2 net-demand lags + generation + 2 hour.
        assert_eq!(aware.xs[0].len(), 8);
        assert!(!aware.is_empty());
    }

    #[test]
    fn aware_features_beat_naive_on_pv_coupled_prices() {
        let history = pv_coupled_history(8);
        let params = SvrParams {
            kernel: Kernel::Rbf { gamma: 0.3 },
            c: 50.0,
            epsilon: 0.0005,
            max_passes: 100,
            ..SvrParams::default()
        };

        // Hold out the final day.
        let train_slots = 24 * 7;
        let train = PriceHistory::new(
            history.prices[..train_slots].to_vec(),
            history.generation[..train_slots].to_vec(),
            history.demand[..train_slots].to_vec(),
            24,
        )
        .unwrap();
        let actual_last_day = &history.prices[train_slots..];
        let future_generation = &history.generation[train_slots..];

        let run = |config: &FeatureConfig| {
            let dataset = train.training_set(config);
            let model = Svr::fit(&dataset.xs, &dataset.ys, &params).unwrap();
            train
                .forecast(&model, config, 24, Some(future_generation))
                .unwrap()
        };
        let naive_pred = run(&FeatureConfig::naive(24));
        let aware_pred = run(&FeatureConfig::net_metering_aware(24));

        let naive_rmse = crate::rmse(&naive_pred, actual_last_day);
        let aware_rmse = crate::rmse(&aware_pred, actual_last_day);
        // Both should be sane, and the aware model at least as good.
        assert!(aware_rmse <= naive_rmse * 1.2 + 1e-9);
        assert!(aware_rmse < 0.05);
    }

    #[test]
    fn forecast_validates_inputs() {
        let history = pv_coupled_history(3);
        let config = FeatureConfig::net_metering_aware(24);
        let dataset = history.training_set(&config);
        let model = Svr::fit(&dataset.xs, &dataset.ys, &SvrParams::default()).unwrap();
        // Missing generation forecast.
        assert!(history.forecast(&model, &config, 24, None).is_err());
        // Too-short generation forecast.
        assert!(history
            .forecast(&model, &config, 24, Some(&[0.0; 3]))
            .is_err());
        // Net-demand lag shorter than the window.
        let mut bad = config.clone();
        bad.net_demand_lags = vec![3];
        assert!(history
            .forecast(&model, &bad, 24, Some(&[0.0; 24]))
            .is_err());
        // Short history.
        let short = PriceHistory::new(vec![0.1; 4], vec![0.0; 4], vec![1.0; 4], 24).unwrap();
        assert!(short
            .forecast(&model, &config, 24, Some(&[0.0; 24]))
            .is_err());
    }

    #[test]
    fn forecast_is_non_negative() {
        let spd = 24;
        // Prices that trend hard toward zero.
        let prices: Vec<f64> = (0..spd * 4)
            .map(|t| (1.0 - t as f64 * 0.02).max(0.0))
            .collect();
        let history =
            PriceHistory::new(prices, vec![0.0; spd * 4], vec![1.0; spd * 4], spd).unwrap();
        let config = FeatureConfig::naive(spd);
        let dataset = history.training_set(&config);
        let params = SvrParams {
            kernel: Kernel::Linear,
            ..SvrParams::default()
        };
        let model = Svr::fit(&dataset.xs, &dataset.ys, &params).unwrap();
        let forecast = history.forecast(&model, &config, spd, None).unwrap();
        assert!(forecast.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn push_extends_history() {
        let mut history = pv_coupled_history(2);
        let before = history.len();
        history.push(0.1, 5.0, 80.0);
        assert_eq!(history.len(), before + 1);
        assert_eq!(*history.prices().last().unwrap(), 0.1);
    }
}
