//! Feature standardization (zero mean, unit variance per column).

use serde::{Deserialize, Serialize};

use nms_types::ValidateError;

/// Per-feature standardizer fitted on a training matrix.
///
/// Constant features are passed through unshifted in scale (std clamped to
/// 1), so standardizing never divides by zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler on row-major samples.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] on an empty sample set, ragged rows, or
    /// non-finite values.
    pub fn fit(samples: &[Vec<f64>]) -> Result<Self, ValidateError> {
        let first = samples
            .first()
            .ok_or_else(|| ValidateError::new("cannot fit scaler on zero samples"))?;
        let dim = first.len();
        for (i, row) in samples.iter().enumerate() {
            if row.len() != dim {
                return Err(ValidateError::new(format!(
                    "row {i} has {} features, expected {dim}",
                    row.len()
                )));
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(ValidateError::new(format!(
                    "row {i} has non-finite feature"
                )));
            }
        }
        let n = samples.len() as f64;
        let mut means = vec![0.0; dim];
        for row in samples {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; dim];
        for row in samples {
            for ((s, v), m) in stds.iter_mut().zip(row).zip(&means) {
                let d = v - m;
                *s += d * d;
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Ok(Self { means, stds })
    }

    /// Number of features the scaler was fitted on.
    #[inline]
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Standardizes one sample.
    ///
    /// # Panics
    ///
    /// Panics if `sample` has the wrong dimension.
    pub fn transform(&self, sample: &[f64]) -> Vec<f64> {
        assert_eq!(sample.len(), self.dim(), "sample dimension");
        sample
            .iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    /// Standardizes a whole matrix.
    pub fn transform_all(&self, samples: &[Vec<f64>]) -> Vec<Vec<f64>> {
        samples.iter().map(|row| self.transform(row)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let samples = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]];
        let scaler = StandardScaler::fit(&samples).unwrap();
        let transformed = scaler.transform_all(&samples);
        for col in 0..2 {
            let mean: f64 = transformed.iter().map(|r| r[col]).sum::<f64>() / 3.0;
            let var: f64 = transformed.iter().map(|r| r[col] * r[col]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_feature_passes_through() {
        let samples = vec![vec![7.0], vec![7.0], vec![7.0]];
        let scaler = StandardScaler::fit(&samples).unwrap();
        assert_eq!(scaler.transform(&[7.0]), vec![0.0]);
        assert_eq!(scaler.transform(&[8.0]), vec![1.0]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(StandardScaler::fit(&[]).is_err());
        assert!(StandardScaler::fit(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(StandardScaler::fit(&[vec![f64::NAN]]).is_err());
    }

    #[test]
    #[should_panic(expected = "sample dimension")]
    fn transform_checks_dimension() {
        let scaler = StandardScaler::fit(&[vec![1.0], vec![2.0]]).unwrap();
        let _ = scaler.transform(&[1.0, 2.0]);
    }
}
