//! Shared helpers for the benchmark suite.
//!
//! Each bench target regenerates one of the paper's artifacts (printing
//! the paper-style output once) and then measures the computation with
//! Criterion. Community size and seed can be overridden with the
//! `NMS_BENCH_CUSTOMERS` / `NMS_BENCH_SEED` environment variables; the
//! defaults keep `cargo bench` tractable, while
//! `NMS_BENCH_CUSTOMERS=500 cargo bench` reproduces the paper's scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nms_sim::PaperScenario;

/// Community size used by the benches (default 40; env-overridable).
pub fn bench_customers() -> usize {
    std::env::var("NMS_BENCH_CUSTOMERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

/// Seed used by the benches (default 2015; env-overridable).
pub fn bench_seed() -> u64 {
    std::env::var("NMS_BENCH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2015)
}

/// The benchmark scenario derived from the environment.
pub fn bench_scenario() -> PaperScenario {
    let customers = bench_customers();
    if customers >= 500 {
        PaperScenario::paper(bench_seed())
    } else {
        PaperScenario::small(customers, bench_seed())
    }
}

/// A smaller scenario used for the Criterion *timing* loops of the heavy
/// artifact benches (the artifact itself is regenerated and printed at
/// [`bench_scenario`] scale). Override with `NMS_BENCH_TIMING_CUSTOMERS`.
pub fn timing_scenario() -> PaperScenario {
    let customers = std::env::var("NMS_BENCH_TIMING_CUSTOMERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    PaperScenario::small(customers, bench_seed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let scenario = bench_scenario();
        assert!(scenario.customers > 0);
        assert!(scenario.validate().is_ok());
    }
}
