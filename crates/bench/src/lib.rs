//! Shared helpers for the benchmark suite.
//!
//! Each bench target regenerates one of the paper's artifacts (printing
//! the paper-style output once) and then measures the computation with
//! Criterion. Community size and seed can be overridden with the
//! `NMS_BENCH_CUSTOMERS` / `NMS_BENCH_SEED` environment variables; the
//! defaults keep `cargo bench` tractable, while
//! `NMS_BENCH_CUSTOMERS=500 cargo bench` reproduces the paper's scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nms_sim::PaperScenario;

/// Community size used by the benches (default 40; env-overridable).
pub fn bench_customers() -> usize {
    std::env::var("NMS_BENCH_CUSTOMERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

/// Seed used by the benches (default 2015; env-overridable).
pub fn bench_seed() -> u64 {
    std::env::var("NMS_BENCH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2015)
}

/// The benchmark scenario derived from the environment.
pub fn bench_scenario() -> PaperScenario {
    let customers = bench_customers();
    if customers >= 500 {
        PaperScenario::paper(bench_seed())
    } else {
        PaperScenario::small(customers, bench_seed())
    }
}

/// A smaller scenario used for the Criterion *timing* loops of the heavy
/// artifact benches (the artifact itself is regenerated and printed at
/// [`bench_scenario`] scale). Override with `NMS_BENCH_TIMING_CUSTOMERS`.
pub fn timing_scenario() -> PaperScenario {
    let customers = std::env::var("NMS_BENCH_TIMING_CUSTOMERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    PaperScenario::small(customers, bench_seed())
}

/// One measured benchmark target, as persisted in `BENCH_results.json`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BenchRecord {
    /// Benchmark target name, e.g. `"sweep_attack_window/par"`.
    pub target: String,
    /// Wall-clock seconds for one run of the target.
    pub wall_secs: f64,
    /// Community size the target ran at.
    pub customers: usize,
    /// Scenario seed.
    pub seed: u64,
    /// Worker threads the target ran with (1 = sequential).
    pub threads: usize,
    /// Logical cores available on the host that produced the record
    /// (`0` in records written before this field existed).
    #[serde(default)]
    pub host_cores: usize,
    /// Total best-response rounds executed across the target's games.
    #[serde(default)]
    pub solver_rounds: u64,
    /// Solver memo-cache hits across the target's games (zero when the
    /// cache is disabled, the default).
    #[serde(default)]
    pub cache_hits: u64,
    /// Solver memo-cache misses across the target's games.
    #[serde(default)]
    pub cache_misses: u64,
    /// Free-form provenance note (thread/chunking choices, iteration
    /// counts) so a record explains its own measurement conditions.
    #[serde(default)]
    pub note: String,
    /// Wall-clock ratio of this record's baseline counterpart to this
    /// record — filled in by the merge-writer for the optimized side of a
    /// `{before,after}`, `{seq,par}`, or `{seq,spec}` target pair (e.g.
    /// `game_round/n500/after` gets `before/after`). `0` on baselines,
    /// unpaired targets, and records written before this field existed.
    #[serde(default)]
    pub speedup: f64,
}

/// The `baseline → optimized` target-suffix pairs the merge-writer
/// recognizes when computing [`BenchRecord::speedup`].
const SPEEDUP_PAIRS: [(&str, &str); 3] = [("before", "after"), ("seq", "par"), ("seq", "spec")];

/// Fills [`BenchRecord::speedup`] on every record whose target ends in an
/// optimized-side suffix and whose baseline counterpart is present in the
/// same merged set. Runs over the *merged* records, so a pair recorded by
/// two separate bench invocations still gets its ratio.
fn apply_speedups(records: &mut [BenchRecord]) {
    let walls: std::collections::HashMap<String, f64> = records
        .iter()
        .map(|r| (r.target.clone(), r.wall_secs))
        .collect();
    for record in records.iter_mut() {
        for (baseline, optimized) in SPEEDUP_PAIRS {
            let Some(stem) = record.target.strip_suffix(optimized) else {
                continue;
            };
            if !stem.is_empty() && !stem.ends_with('/') {
                continue;
            }
            if let Some(&base) = walls.get(&format!("{stem}{baseline}")) {
                if record.wall_secs > 0.0 && base.is_finite() {
                    record.speedup = base / record.wall_secs;
                }
            }
        }
    }
}

/// Logical cores on this host (0 when the count cannot be determined).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get)
}

/// Where bench records land: `NMS_BENCH_RESULTS` if set, else
/// `BENCH_results.json` at the workspace root.
pub fn bench_results_path() -> std::path::PathBuf {
    match std::env::var_os("NMS_BENCH_RESULTS") {
        Some(path) => path.into(),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_results.json"),
    }
}

/// Merges `records` into the results file by target name: an existing
/// record for the same target is replaced, everything else is kept, and
/// the file is written atomically (`.tmp` then rename) with bounded
/// retries under the default [`nms_vfs::StoragePolicy`]. A missing or
/// unparsable results file starts fresh rather than failing the bench.
///
/// # Errors
///
/// Returns [`std::io::Error`] when the file cannot be written after the
/// policy's retries are exhausted.
pub fn record_bench_results(records: &[BenchRecord]) -> std::io::Result<()> {
    record_bench_results_on(&nms_vfs::StdVfs, records)
}

/// [`record_bench_results`] with the storage injectable, so storage-fault
/// tests can drive the merge-writer through a fault-injecting VFS.
///
/// # Errors
///
/// As [`record_bench_results`].
pub fn record_bench_results_on(
    vfs: &dyn nms_vfs::Vfs,
    records: &[BenchRecord],
) -> std::io::Result<()> {
    let path = bench_results_path();
    let mut merged: Vec<BenchRecord> = vfs
        .read_to_string(&path)
        .ok()
        .and_then(|content| serde_json::from_str(&content).ok())
        .unwrap_or_default();
    merged.retain(|existing: &BenchRecord| !records.iter().any(|r| r.target == existing.target));
    merged.extend(records.iter().cloned());
    merged.sort_by(|a, b| a.target.cmp(&b.target));
    apply_speedups(&mut merged);
    let content = serde_json::to_string(&merged)
        .map_err(|err| std::io::Error::new(std::io::ErrorKind::InvalidData, err.to_string()))?;
    nms_vfs::write_atomic(
        vfs,
        &path,
        (content + "\n").as_bytes(),
        &nms_vfs::StoragePolicy::default(),
    )
    .map(|_| ())
    .map_err(|err| match err {
        nms_vfs::StorageError::Render(err) => err,
        nms_vfs::StorageError::Exhausted { last, .. } => last,
        _ => std::io::Error::other(err.to_string()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that point `NMS_BENCH_RESULTS` (process-global)
    /// at a scratch file, so the parallel test runner cannot interleave them.
    static RESULTS_ENV: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn defaults_are_sane() {
        let scenario = bench_scenario();
        assert!(scenario.customers > 0);
        assert!(scenario.validate().is_ok());
    }

    #[test]
    fn legacy_records_without_host_fields_deserialize() {
        let legacy = "{\"target\":\"a\",\"wall_secs\":1.0,\"customers\":8,\
                      \"seed\":1,\"threads\":2}";
        let record: BenchRecord = serde_json::from_str(legacy).unwrap();
        assert_eq!(record.host_cores, 0);
        assert_eq!(record.cache_hits, 0);
        assert_eq!(record.cache_misses, 0);
        assert_eq!(record.note, "");
        assert!(host_cores() >= 1, "this host has at least one core");
    }

    #[test]
    fn bench_records_merge_by_target() {
        let _env = RESULTS_ENV.lock().unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("nms-bench-results-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("NMS_BENCH_RESULTS", &path);
        let record = |target: &str, wall: f64| BenchRecord {
            target: target.into(),
            wall_secs: wall,
            customers: 8,
            seed: 1,
            threads: 2,
            host_cores: host_cores(),
            solver_rounds: 0,
            cache_hits: 0,
            cache_misses: 0,
            note: String::new(),
            speedup: 0.0,
        };
        record_bench_results(&[record("a", 1.0), record("b", 2.0)]).unwrap();
        record_bench_results(&[record("b", 3.0)]).unwrap();
        let loaded: Vec<BenchRecord> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::env::remove_var("NMS_BENCH_RESULTS");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].target, "a");
        assert_eq!(loaded[1].wall_secs, 3.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_writer_fills_speedup_on_paired_targets() {
        let _env = RESULTS_ENV.lock().unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("nms-bench-speedup-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("NMS_BENCH_RESULTS", &path);
        let record = |target: &str, wall: f64| BenchRecord {
            target: target.into(),
            wall_secs: wall,
            customers: 8,
            seed: 1,
            threads: 1,
            host_cores: host_cores(),
            solver_rounds: 0,
            cache_hits: 0,
            cache_misses: 0,
            note: String::new(),
            speedup: 0.0,
        };
        // The pair lands across *two* invocations: the merge-writer must
        // compute the ratio over the merged set, not the current batch.
        record_bench_results(&[record("day_pipeline/seq", 2.0), record("lonely/after", 1.0)])
            .unwrap();
        record_bench_results(&[
            record("day_pipeline/spec", 0.5),
            record("game_round/n500/before", 3.0),
            record("game_round/n500/after", 1.5),
        ])
        .unwrap();
        let loaded: Vec<BenchRecord> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::env::remove_var("NMS_BENCH_RESULTS");
        let by_target = |t: &str| loaded.iter().find(|r| r.target == t).unwrap();
        assert_eq!(by_target("day_pipeline/spec").speedup, 4.0);
        assert_eq!(by_target("game_round/n500/after").speedup, 2.0);
        assert_eq!(by_target("day_pipeline/seq").speedup, 0.0, "baselines stay 0");
        assert_eq!(by_target("lonely/after").speedup, 0.0, "unpaired stays 0");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn legacy_records_without_speedup_deserialize_to_zero() {
        let legacy = "{\"target\":\"a/after\",\"wall_secs\":1.0,\"customers\":8,\
                      \"seed\":1,\"threads\":2}";
        let record: BenchRecord = serde_json::from_str(legacy).unwrap();
        assert_eq!(record.speedup, 0.0);
    }
}
