//! Regenerates **Table 1**: PAR and normalized labor cost for no
//! detection, detection without net metering, and detection with net
//! metering, over the 48-hour attack scenario.
//!
//! The paper reports PAR 1.6509 / 1.5422 / 1.4112 and a normalized labor
//! cost of 1.0067 for the net-metering-aware detector.

use criterion::{criterion_group, criterion_main, Criterion};

use nms_bench::{bench_scenario, timing_scenario};
use nms_sim::experiments::run_table1;

fn bench(c: &mut Criterion) {
    let scenario = bench_scenario();
    let result = run_table1(&scenario).expect("table1 runs");
    println!(
        "\n=== Table 1 (paper: 1.6509 / 1.5422 / 1.4112, labor 1.0067) ===\n{}",
        result.render()
    );

    let timing = timing_scenario();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("detection_comparison_48h", |b| {
        b.iter(|| run_table1(&timing).expect("table1 runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
