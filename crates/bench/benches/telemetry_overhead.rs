//! Telemetry plane overhead: the same fleet with the recorder off vs the
//! full live plane on.
//!
//! Runs a K-community fleet twice — once with `NoopRecorder` and no
//! server, once with the striped registry + span profiler teed in and a
//! resident `TelemetryServer` republished at every day close — proves the
//! results are bit-identical (telemetry never feeds back), and records
//! both wall times as `telemetry/overhead/{off,on}` in
//! `BENCH_results.json` with the measured overhead in the note.
//!
//! Environment: `NMS_BENCH_THREADS` (default 4), `NMS_BENCH_CUSTOMERS`,
//! `NMS_BENCH_SEED`, and `NMS_BENCH_SMOKE` to shrink the fleet and skip
//! the Criterion timing loops (the CI smoke gate).

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use nms_attack::{AttackTimeline, PriceAttack};
use nms_bench::{bench_scenario, host_cores, record_bench_results, BenchRecord};
use nms_fleet::{run_fleet, DayCloseObserver, FleetConfig, FleetOptions, ShardSpec};
use nms_obs::{Recorder, SpanRecorder, Tee};
use nms_serve::{SharedRegistry, TelemetryServer};
use nms_sim::{
    LongTermRunConfig, LongTermRunResult, PaperScenario, Parallelism, SupervisedOptions,
};
use nms_types::SolveBudget;
use nms_vfs::{FaultVfs, IoFaultPlan};

const JOURNAL: &str = "fleet/shard.jsonl";

fn bench_threads() -> usize {
    std::env::var("NMS_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

fn smoke() -> bool {
    std::env::var_os("NMS_BENCH_SMOKE").is_some()
}

fn community_scenario(index: usize) -> PaperScenario {
    let mut scenario = bench_scenario();
    scenario.seed = scenario.seed.wrapping_add(31 + index as u64);
    scenario.training_days = scenario.training_days.clamp(3, 4);
    scenario
}

fn run_config(days: usize) -> LongTermRunConfig {
    LongTermRunConfig {
        detection_days: days,
        detector: None,
        timeline: AttackTimeline::new(
            vec![(4, 2), (20, 2)],
            PriceAttack::zero_window(16.0, 18.0).expect("window"),
        )
        .expect("timeline"),
        buckets: 4,
        bucket_fraction_step: 0.15,
        labor_per_fix: 10.0,
        labor_per_meter: 1.0,
        faults: None,
        sanitize: Default::default(),
        retry: Default::default(),
        budget: SolveBudget::unlimited(),
        quarantine: Default::default(),
        parallelism: Default::default(),
        clearing_iterations: 2,
    }
}

/// The bit-identity comparison form: `Debug` with the process-local
/// storage tally zeroed (observability, not part of the contract).
fn normalized(mut result: LongTermRunResult) -> String {
    result.health.storage = Default::default();
    format!("{result:?}")
}

fn specs(shards: usize, days: usize) -> Vec<ShardSpec> {
    (0..shards)
        .map(|index| {
            ShardSpec::derived(
                format!("community-{index}"),
                community_scenario(index),
                run_config(days),
                23,
                index,
                JOURNAL,
            )
        })
        .collect()
}

fn shard_options(shards: usize) -> Vec<SupervisedOptions> {
    (0..shards)
        .map(|_| SupervisedOptions {
            vfs: Arc::new(FaultVfs::new(IoFaultPlan::none())),
            ..SupervisedOptions::default()
        })
        .collect()
}

/// One fleet run on fresh in-memory disks: recorder off (`telemetry` =
/// false) or the full live plane on. Returns normalized per-shard results
/// and the wall time.
fn fleet_once(shards: usize, days: usize, threads: usize, telemetry: bool) -> (Vec<String>, f64) {
    let config = FleetConfig {
        parallelism: Parallelism::new(threads),
        ..FleetConfig::default()
    };
    let mut options = FleetOptions {
        shard_options: shard_options(shards),
        ..FleetOptions::default()
    };
    let _server = if telemetry {
        let server = TelemetryServer::bind("127.0.0.1:0").expect("bind");
        let publisher = server.publisher();
        let shared = SharedRegistry::new();
        let spans = Arc::new(SpanRecorder::new());
        options.recorder = Arc::new(Tee::new(vec![
            Arc::new(shared.clone()) as Arc<dyn Recorder>,
            spans as Arc<dyn Recorder>,
        ]));
        let observer: DayCloseObserver =
            Arc::new(move |day: usize, health: &nms_types::FleetHealth| {
                publisher.publish_shared(&shared);
                publisher.publish_health(Some(day), health, Default::default());
            });
        options.on_day_close = Some(observer);
        Some(server)
    } else {
        None
    };
    let start = Instant::now();
    let report = run_fleet(specs(shards, days), &config, options).expect("healthy fleet runs");
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(report.health.healthy(), shards, "bench fleet must stay healthy");
    let results = report
        .shards
        .into_iter()
        .map(|shard| normalized(shard.result.expect("healthy shard has a result")))
        .collect();
    (results, secs)
}

fn bench(c: &mut Criterion) {
    let threads = bench_threads();
    let (shards, days) = if smoke() { (3, 2) } else { (4, 3) };

    let (off, off_secs) = fleet_once(shards, days, threads, false);
    let (on, on_secs) = fleet_once(shards, days, threads, true);
    assert_eq!(off, on, "telemetry must not perturb fleet results");

    let overhead_pct = (on_secs / off_secs.max(1e-9) - 1.0) * 100.0;
    println!("\n=== Telemetry overhead ({shards} shards × {days} days, bit-identical) ===");
    println!(
        "telemetry/overhead | off {off_secs:>7.2}s | on {on_secs:>7.2}s | {overhead_pct:>+6.2}%"
    );

    let scenario = bench_scenario();
    let record = |target: &str, wall_secs: f64| BenchRecord {
        target: target.to_string(),
        wall_secs,
        customers: scenario.customers,
        seed: scenario.seed,
        threads,
        host_cores: host_cores(),
        solver_rounds: 0,
        cache_hits: 0,
        cache_misses: 0,
        note: format!(
            "{shards} shards × {days} days; striped registry + spans + /metrics server; \
             overhead {overhead_pct:+.2}%"
        ),
        speedup: 0.0,
    };
    record_bench_results(&[
        record("telemetry/overhead/off", off_secs),
        record("telemetry/overhead/on", on_secs),
    ])
    .expect("bench results written");
    println!("recorded to {}", nms_bench::bench_results_path().display());

    if smoke() {
        return;
    }

    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.bench_function("fleet_with_live_plane", |b| {
        b.iter(|| fleet_once(2, 1, threads, true));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
