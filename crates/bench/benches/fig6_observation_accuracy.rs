//! Regenerates **Fig 6**: POMDP observation accuracy over 48 hours with
//! and without net metering considered.
//!
//! The paper reports 95.14% average observation accuracy for the
//! net-metering-aware detector against 65.95% for the state of the art.
//!
//! This is the heaviest artifact (two full 48-hour detection simulations
//! including training, calibration, and per-slot game realizations), so
//! the Criterion measurement uses the minimum sample count.

use criterion::{criterion_group, criterion_main, Criterion};

use nms_bench::{bench_scenario, timing_scenario};
use nms_sim::experiments::run_fig6;

fn bench(c: &mut Criterion) {
    let scenario = bench_scenario();
    let result = run_fig6(&scenario).expect("fig6 runs");
    println!(
        "\n=== Fig 6 (paper: 95.14% vs 65.95%) ===\n{}",
        result.render()
    );

    let timing = timing_scenario();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("observation_accuracy_48h", |b| {
        b.iter(|| run_fig6(&timing).expect("fig6 runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
