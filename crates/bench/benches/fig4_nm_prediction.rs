//! Regenerates **Fig 4**: guideline-price prediction and load PAR *with*
//! net metering considered (the paper's method).
//!
//! The paper reports a predicted-load PAR of 1.3986 — 5.11% below Fig 3's
//! — and a predicted price that tracks the received one.

use criterion::{criterion_group, criterion_main, Criterion};

use nms_bench::{bench_scenario, timing_scenario};
use nms_sim::experiments::{run_fig3, run_fig4};

fn bench(c: &mut Criterion) {
    let scenario = bench_scenario();
    let fig4 = run_fig4(&scenario).expect("fig4 runs");
    println!("\n=== Fig 4 (paper: PAR 1.3986) ===\n{}", fig4.render());
    // The paper's headline comparison against Fig 3.
    let fig3 = run_fig3(&scenario).expect("fig3 runs");
    println!(
        "PAR gap (paper: naive 5.11% higher): naive {:.4} vs aware {:.4} ({:+.2}%)",
        fig3.par,
        fig4.par,
        100.0 * (fig3.par - fig4.par) / fig4.par
    );
    println!(
        "price RMSE (paper: aware matches better): naive {:.5} vs aware {:.5}",
        fig3.price_rmse, fig4.price_rmse
    );

    let timing = timing_scenario();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("nm_aware_prediction_pipeline", |b| {
        b.iter(|| run_fig4(&timing).expect("fig4 runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
