//! Performance micro-benchmarks for the solver substrates: cross-entropy
//! optimization, the DP appliance scheduler, SVR training, POMDP solving,
//! and a full community game round.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use nms_bench::bench_scenario;
use nms_forecast::{FeatureConfig, Kernel, PriceHistory, Svr, SvrParams};
use nms_pomdp::{PbviConfig, PbviPolicy, Pomdp, QmdpPolicy};
use nms_pricing::{NetMeteringTariff, PriceSignal};
use nms_smarthome::{Appliance, ApplianceKind, PowerLevels, TaskSpec};
use nms_solver::{CeConfig, CrossEntropyOptimizer, DpScheduler, GameConfig, GameEngine};
use nms_types::{ApplianceId, Horizon, Kw, Kwh};

fn bench_cross_entropy(c: &mut Criterion) {
    let optimizer = CrossEntropyOptimizer::new(CeConfig::fast());
    let bounds = vec![(0.0, 5.0); 24];
    let init = vec![2.5; 24];
    c.bench_function("ce/24dim_quadratic", |b| {
        b.iter_batched(
            || ChaCha8Rng::seed_from_u64(7),
            |mut rng| {
                optimizer.minimize(
                    |x| x.iter().map(|v| (v - 1.3).powi(2)).sum(),
                    &bounds,
                    &init,
                    &mut rng,
                )
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_dp(c: &mut Criterion) {
    let horizon = Horizon::hourly_day();
    let appliance = Appliance::new(
        ApplianceId::new(0),
        ApplianceKind::ElectricVehicle,
        PowerLevels::stepped(Kw::new(3.3), 3).unwrap(),
        TaskSpec::new(Kwh::new(9.0), 0, 23).unwrap(),
    );
    let scheduler = DpScheduler::new(4);
    c.bench_function("dp/ev_full_day", |b| {
        b.iter(|| {
            scheduler
                .schedule(&appliance, horizon, |slot, e| {
                    (0.05 + 0.01 * (slot % 7) as f64) * e * (1.0 + e)
                })
                .expect("feasible")
        })
    });
}

fn bench_svr(c: &mut Criterion) {
    let spd = 24;
    let slots = spd * 8;
    let prices: Vec<f64> = (0..slots)
        .map(|t| 0.05 + 0.01 * ((t % spd) as f64 / 4.0).sin().abs())
        .collect();
    let history = PriceHistory::new(prices, vec![0.0; slots], vec![100.0; slots], spd).unwrap();
    let config = FeatureConfig::naive(spd);
    let dataset = history.training_set(&config);
    let params = SvrParams {
        kernel: Kernel::Rbf { gamma: 0.3 },
        ..SvrParams::default()
    };
    c.bench_function("svr/train_8day_history", |b| {
        b.iter(|| Svr::fit(&dataset.xs, &dataset.ys, &params).expect("trains"))
    });
}

fn bench_pomdp(c: &mut Criterion) {
    let buckets = 6;
    let drift = |s: usize| {
        let mut row = vec![0.0; buckets];
        if s + 1 < buckets {
            row[s] = 0.75;
            row[s + 1] = 0.25;
        } else {
            row[s] = 1.0;
        }
        row
    };
    let reset = |_: usize| {
        let mut row = vec![0.0; buckets];
        row[0] = 1.0;
        row
    };
    let obs = |s: usize| {
        let mut row = vec![0.1 / (buckets - 1) as f64; buckets];
        row[s] = 0.9;
        let total: f64 = row.iter().sum();
        row.iter_mut().for_each(|p| *p /= total);
        row
    };
    let pomdp = Pomdp::builder(buckets, 2, buckets)
        .transition(0, (0..buckets).map(drift).collect())
        .transition(1, (0..buckets).map(reset).collect())
        .observation(0, (0..buckets).map(obs).collect())
        .observation(1, (0..buckets).map(obs).collect())
        .reward_fn(|a, s, _| -4.0 * s as f64 - if a == 1 { 6.0 } else { 0.0 })
        .discount(0.9)
        .build()
        .unwrap();
    c.bench_function("pomdp/qmdp_6buckets", |b| {
        b.iter(|| QmdpPolicy::solve(&pomdp, 1e-9, 5000))
    });
    c.bench_function("pomdp/pbvi_6buckets", |b| {
        b.iter(|| PbviPolicy::solve(&pomdp, &PbviConfig::default()))
    });
}

fn bench_game(c: &mut Criterion) {
    let scenario = bench_scenario();
    let generator = scenario.generator();
    let weather = scenario.weather_factors(1);
    let community = generator.community_for_day(0, weather[0]);
    let prices = PriceSignal::time_of_use(community.horizon(), 0.05, 0.2).unwrap();
    let mut group = c.benchmark_group("game");
    group.sample_size(10);
    group.bench_function(&format!("equilibrium_n{}", community.len()), |b| {
        b.iter_batched(
            || ChaCha8Rng::seed_from_u64(3),
            |mut rng| {
                let engine = GameEngine::new(
                    &community,
                    &prices,
                    NetMeteringTariff::default(),
                    GameConfig::fast(),
                )
                .unwrap();
                engine.solve(&mut rng).expect("solves")
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cross_entropy,
    bench_dp,
    bench_svr,
    bench_pomdp,
    bench_game
);
criterion_main!(benches);
