//! Regenerates **Fig 5**: the impact of the zero-price cyberattack on the
//! energy load.
//!
//! The paper reports PAR 1.9037 under attack — 29.50% above Fig 3's
//! predicted load and 36.11% above Fig 4's — with the load peaking in the
//! manipulated 16:00–17:00 window.

use criterion::{criterion_group, criterion_main, Criterion};

use nms_bench::{bench_scenario, timing_scenario};
use nms_sim::experiments::run_fig5;

fn bench(c: &mut Criterion) {
    let scenario = bench_scenario();
    let result = run_fig5(&scenario).expect("fig5 runs");
    println!(
        "\n=== Fig 5 (paper: PAR 1.9037, +29.5%/+36.1%) ===\n{}",
        result.render()
    );

    let timing = timing_scenario();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("attack_impact_pipeline", |b| {
        b.iter(|| run_fig5(&timing).expect("fig5 runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
