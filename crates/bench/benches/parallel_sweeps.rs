//! Sequential-vs-parallel sweep benchmark (DESIGN.md §9).
//!
//! Runs `sweep_attack_window` and `sweep_fault_tolerance` once on one
//! thread and once on `NMS_BENCH_THREADS` workers, proves the outputs are
//! bit-identical (down to the serialized CSV bytes), and records both wall
//! times in `BENCH_results.json` so the speedup is a tracked artifact
//! rather than a claim.
//!
//! Environment:
//!
//! - `NMS_BENCH_THREADS` — parallel worker count (default 4);
//! - `NMS_BENCH_SMOKE` — set to run a tiny point set and skip the
//!   Criterion timing loops (the CI smoke gate);
//! - `NMS_BENCH_CUSTOMERS` / `NMS_BENCH_SEED` — as for every bench.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use nms_bench::{bench_scenario, host_cores, record_bench_results, timing_scenario, BenchRecord};
use nms_sim::sweeps::{
    sweep_attack_window, sweep_fault_tolerance, AttackWindowPoint, FaultTolerancePoint,
};
use nms_sim::Parallelism;

fn bench_threads() -> usize {
    std::env::var("NMS_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

fn smoke() -> bool {
    std::env::var_os("NMS_BENCH_SMOKE").is_some()
}

/// CSV rendering uses `f64`'s shortest-roundtrip `Display`, so two CSVs
/// are byte-identical exactly when the underlying floats are bit-identical.
fn attack_csv(points: &[AttackWindowPoint]) -> String {
    let mut buffer = Vec::new();
    nms_sim::export::export_attack_window(&mut buffer, points).expect("vec write cannot fail");
    String::from_utf8(buffer).expect("CSV is UTF-8")
}

fn fault_csv(points: &[FaultTolerancePoint]) -> String {
    let mut csv = String::from(
        "fault_rate,aware_accuracy,naive_accuracy,aware_par,naive_par,slots_imputed,faults_injected\n",
    );
    for p in points {
        csv.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            p.fault_rate,
            p.aware_accuracy,
            p.naive_accuracy,
            p.aware_par,
            p.naive_par,
            p.slots_imputed,
            p.faults_injected
        ));
    }
    csv
}

fn timed<T>(run: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = run();
    (value, start.elapsed().as_secs_f64())
}

fn bench(c: &mut Criterion) {
    let threads = bench_threads();
    let parallel = Parallelism::new(threads);
    let scenario = {
        let mut s = bench_scenario();
        s.training_days = s.training_days.max(4);
        s
    };
    let (windows, rates): (Vec<f64>, Vec<f64>) = if smoke() {
        (vec![3.0, 16.0], vec![0.0, 0.1])
    } else {
        ((0..8).map(|i| f64::from(i) * 3.0).collect(), vec![0.0, 0.05, 0.1, 0.2])
    };

    let (attack_seq, attack_seq_secs) = timed(|| {
        sweep_attack_window(&scenario, &windows, &Parallelism::SEQUENTIAL).expect("sweep runs")
    });
    let (attack_par, attack_par_secs) =
        timed(|| sweep_attack_window(&scenario, &windows, &parallel).expect("sweep runs"));
    assert_eq!(attack_seq, attack_par, "parallel attack sweep diverged");
    assert_eq!(
        attack_csv(&attack_seq),
        attack_csv(&attack_par),
        "attack sweep CSV bytes diverged"
    );

    let (fault_seq, fault_seq_secs) = timed(|| {
        sweep_fault_tolerance(&scenario, &rates, &Parallelism::SEQUENTIAL).expect("sweep runs")
    });
    let (fault_par, fault_par_secs) =
        timed(|| sweep_fault_tolerance(&scenario, &rates, &parallel).expect("sweep runs"));
    assert_eq!(fault_seq, fault_par, "parallel fault sweep diverged");
    assert_eq!(
        fault_csv(&fault_seq),
        fault_csv(&fault_par),
        "fault sweep CSV bytes diverged"
    );

    // Perf is advisory, correctness is the hard gate: warn (never fail)
    // when the parallel run was slower than sequential, which on an
    // oversubscribed or single-core host is expected overhead.
    let warn_if_slower = |name: &str, seq: f64, par: f64| {
        if par > seq {
            eprintln!(
                "warning: {name}/par ({par:.2}s) slower than seq ({seq:.2}s) at \
                 {threads} threads on {} core(s); treat the speedup column as \
                 host-bound, not a regression gate",
                host_cores()
            );
        }
    };
    warn_if_slower("sweep_attack_window", attack_seq_secs, attack_par_secs);
    warn_if_slower("sweep_fault_tolerance", fault_seq_secs, fault_par_secs);

    println!("\n=== Parallel sweeps ({threads} threads, bit-identical to sequential) ===");
    println!(
        "sweep_attack_window   | seq {attack_seq_secs:>7.2}s | par {attack_par_secs:>7.2}s | {:>5.2}x",
        attack_seq_secs / attack_par_secs.max(1e-9)
    );
    println!(
        "sweep_fault_tolerance | seq {fault_seq_secs:>7.2}s | par {fault_par_secs:>7.2}s | {:>5.2}x",
        fault_seq_secs / fault_par_secs.max(1e-9)
    );

    // Solver effort and cache tallies are deterministic point fields, so
    // the seq/par pairs share them by construction (asserted above).
    let attack_rounds: u64 = attack_seq.iter().map(|p| p.solver_rounds as u64).sum();
    let attack_hits: u64 = attack_seq.iter().map(|p| p.cache_hits as u64).sum();
    let attack_misses: u64 = attack_seq.iter().map(|p| p.cache_misses as u64).sum();
    let sweep_note = |requested: usize| {
        if requested == 1 {
            "sequential".to_string()
        } else {
            format!(
                "requested {requested} workers, clamped to host cores; \
                 chunk 1 (few expensive sweep points)"
            )
        }
    };
    let record = |target: &str, wall_secs: f64, threads: usize, rounds: u64, hits: u64, misses: u64| {
        BenchRecord {
            target: target.to_string(),
            wall_secs,
            customers: scenario.customers,
            seed: scenario.seed,
            threads,
            host_cores: host_cores(),
            solver_rounds: rounds,
            cache_hits: hits,
            cache_misses: misses,
            note: sweep_note(threads),
            speedup: 0.0,
        }
    };
    record_bench_results(&[
        record(
            "sweep_attack_window/seq",
            attack_seq_secs,
            1,
            attack_rounds,
            attack_hits,
            attack_misses,
        ),
        record(
            "sweep_attack_window/par",
            attack_par_secs,
            threads,
            attack_rounds,
            attack_hits,
            attack_misses,
        ),
        record("sweep_fault_tolerance/seq", fault_seq_secs, 1, 0, 0, 0),
        record("sweep_fault_tolerance/par", fault_par_secs, threads, 0, 0, 0),
    ])
    .expect("bench results written");
    println!("recorded to {}", nms_bench::bench_results_path().display());

    if smoke() {
        return;
    }

    // Criterion loops at the smaller timing scale: the tracked number is
    // the seq/par pair above; this keeps a regression trail on both paths.
    let timing = {
        let mut s = timing_scenario();
        s.training_days = s.training_days.max(4);
        s
    };
    let mut group = c.benchmark_group("parallel_sweeps");
    group.sample_size(10);
    group.bench_function("attack_window_seq", |b| {
        b.iter(|| {
            sweep_attack_window(&timing, &windows, &Parallelism::SEQUENTIAL).expect("sweep runs")
        })
    });
    group.bench_function("attack_window_par", |b| {
        b.iter(|| sweep_attack_window(&timing, &windows, &parallel).expect("sweep runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
