//! Regenerates **Fig 3**: guideline-price prediction and load PAR
//! *without* considering net metering (the SVR-only baseline of \[8\]).
//!
//! The paper reports a predicted-load PAR of 1.4700 and a predicted price
//! that misses the received price's midday gap.

use criterion::{criterion_group, criterion_main, Criterion};

use nms_bench::{bench_scenario, timing_scenario};
use nms_sim::experiments::run_fig3;

fn bench(c: &mut Criterion) {
    let scenario = bench_scenario();
    // Regenerate the paper artifact once, with the paper-style rendering.
    let result = run_fig3(&scenario).expect("fig3 runs");
    println!("\n=== Fig 3 (paper: PAR 1.4700) ===\n{}", result.render());

    let timing = timing_scenario();
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("naive_prediction_pipeline", |b| {
        b.iter(|| run_fig3(&timing).expect("fig3 runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
