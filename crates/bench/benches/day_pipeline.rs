//! Sequential vs speculative supervised-day driving (DESIGN.md §15).
//!
//! Runs the same multi-day supervised detection run twice — once through
//! the plain sequential driver with cross-day caching off
//! (`SupervisedRun::run`), once through the speculative day pipeline with
//! the [`DayCacheConfig`] persistent caches on
//! (`SupervisedRun::run_speculative`) — proves the two are bit-identical,
//! and records both wall times as `day_pipeline/{seq,spec}` in
//! `BENCH_results.json` (training/construction excluded from both).
//!
//! The scenario is shaped so the caches have something to say: no
//! batteries (battery-active responses consume the CE RNG stream and are
//! never memoized) and quantized published prices
//! (`UtilityConfig::price_quantum`), which put the market's fixed-point
//! clearing iteration on a finite price grid. Within a few iterations the
//! designed price repeats bitwise (a fixed point or a short cycle), every
//! later iteration re-poses an earlier solve input-for-input, and the
//! persistent cache answers it wholesale instead of re-running the DP.
//! With continuous prices none of that happens — the chaotic last float
//! bits of the game equilibrium keep every price distinct and the
//! exact-verified cache never fires (measured ~1% hit rate vs ~60% here).
//!
//! Environment: `NMS_BENCH_CUSTOMERS` / `NMS_BENCH_SEED` as for every
//! bench; `NMS_BENCH_TOLERANCE` / `NMS_BENCH_MAX_ROUNDS` /
//! `NMS_BENCH_CLEARING_ITERS` / `NMS_BENCH_PRICE_QUANTUM` shape the game;
//! `NMS_BENCH_SMOKE` shrinks the run to two detection days and skips the
//! Criterion timing loops (the CI smoke gate).

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use nms_attack::{AttackTimeline, PriceAttack};
use nms_bench::{bench_scenario, host_cores, record_bench_results, BenchRecord};
use nms_sim::{
    DayCacheConfig, LongTermRunConfig, LongTermRunResult, PaperScenario, SupervisedOptions,
    SupervisedRun,
};
use nms_types::SolveBudget;
use nms_vfs::{FaultVfs, IoFaultPlan};

const JOURNAL: &str = "day_pipeline/journal.jsonl";

fn smoke() -> bool {
    std::env::var_os("NMS_BENCH_SMOKE").is_some()
}

fn envf(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn pipeline_scenario() -> PaperScenario {
    let mut scenario = bench_scenario();
    scenario.battery_ownership = 0.0;
    scenario.game.tolerance = envf("NMS_BENCH_TOLERANCE", 1e-9);
    scenario.game.max_rounds = envf("NMS_BENCH_MAX_ROUNDS", 10.0) as usize;
    // Tenth-of-a-cent published prices: the clearing iteration then lives
    // on a finite price grid and reaches a bitwise fixed point (or short
    // cycle) within a few rounds, after which every later clearing
    // iteration replays an earlier solve input-for-input and the
    // persistent cache answers it wholesale.
    scenario.utility.price_quantum = envf("NMS_BENCH_PRICE_QUANTUM", 0.005);
    scenario.training_days = 3;
    scenario
}

fn run_config(days: usize) -> LongTermRunConfig {
    LongTermRunConfig {
        detection_days: days,
        // No detector: no mid-day fixes, so every speculation commits and
        // the pair isolates the pipeline + cache cost, not POMDP behavior
        // (`tests/day_pipeline.rs` covers the divergence path).
        detector: None,
        timeline: AttackTimeline::new(
            vec![(4, 2), (20, 2)],
            PriceAttack::zero_window(16.0, 18.0).expect("window"),
        )
        .expect("timeline"),
        buckets: 4,
        bucket_fraction_step: 0.15,
        labor_per_fix: 10.0,
        labor_per_meter: 1.0,
        faults: None,
        sanitize: Default::default(),
        retry: Default::default(),
        budget: SolveBudget::unlimited(),
        quarantine: Default::default(),
        parallelism: Default::default(),
        clearing_iterations: envf("NMS_BENCH_CLEARING_ITERS", 8.0) as usize,
    }
}

/// A fresh run on a clean in-memory disk; construction performs the
/// training days, so the timed sections cover detection only.
fn build(
    scenario: &PaperScenario,
    config: &LongTermRunConfig,
    cache: DayCacheConfig,
) -> SupervisedRun {
    SupervisedRun::with_options(
        scenario,
        config,
        scenario.seed,
        Path::new(JOURNAL),
        SupervisedOptions {
            vfs: Arc::new(FaultVfs::new(IoFaultPlan::none())),
            cache,
            ..SupervisedOptions::default()
        },
    )
    .expect("supervised run builds")
}

/// The bit-identity comparison form: `Debug` with the process-local
/// storage tally zeroed (observability, not part of the contract).
fn normalized(mut result: LongTermRunResult) -> String {
    result.health.storage = Default::default();
    format!("{result:?}")
}

fn bench(c: &mut Criterion) {
    let days = if smoke() { 2 } else { 6 };
    let scenario = pipeline_scenario();
    let config = run_config(days);

    let seq_run = build(&scenario, &config, DayCacheConfig::default());
    let start = Instant::now();
    let seq = seq_run.run().expect("sequential run");
    let seq_secs = start.elapsed().as_secs_f64();

    let spec_run = build(&scenario, &config, DayCacheConfig::on());
    let start = Instant::now();
    let (spec, report) = spec_run.run_speculative().expect("speculative run");
    let spec_secs = start.elapsed().as_secs_f64();

    assert_eq!(
        normalized(seq),
        normalized(spec),
        "speculative pipeline diverged from the sequential driver"
    );
    assert_eq!(report.launched, (days - 1) as u64, "every later day speculates");
    assert_eq!(
        report.committed, report.launched,
        "without a detector nothing can diverge: {report:?}"
    );

    // One more cached run, stepped by hand, to harvest the main-thread
    // cache counters (the timed runs consume themselves before they can be
    // asked). Deterministic, so these are exactly the sequential-cached
    // run's statistics.
    let mut probe = build(&scenario, &config, DayCacheConfig::on());
    while !probe.is_finished() {
        probe.step_day().expect("probe day");
    }
    let stats = probe.cache_stats();
    probe.finish().expect("probe finishes");

    println!("\n=== Day pipeline ({days} detection days, bit-identical) ===");
    println!(
        "day_pipeline | seq {seq_secs:>7.2}s | spec {spec_secs:>7.2}s | {:>5.2}x | \
         cache hit rate {:.1}% | {report:?}",
        seq_secs / spec_secs.max(1e-9),
        100.0 * stats.hit_rate(),
    );

    let record = |target: &str, wall_secs: f64, hits: usize, misses: usize| BenchRecord {
        target: target.to_string(),
        wall_secs,
        customers: scenario.customers,
        seed: scenario.seed,
        threads: 1,
        host_cores: host_cores(),
        solver_rounds: 0,
        cache_hits: hits as u64,
        cache_misses: misses as u64,
        note: format!(
            "{days} detection days, no detector, battery-free limit-cycle scenario; \
             spec = speculative pipeline + persistent caches \
             ({} committed / {} discarded)",
            report.committed, report.discarded
        ),
        speedup: 0.0,
    };
    record_bench_results(&[
        record("day_pipeline/seq", seq_secs, 0, 0),
        record("day_pipeline/spec", spec_secs, stats.hits, stats.misses),
    ])
    .expect("bench results written");
    println!("recorded to {}", nms_bench::bench_results_path().display());

    if smoke() {
        return;
    }

    // A small Criterion trail on the speculative path; the tracked numbers
    // are the seq/spec pair above.
    let short = run_config(2);
    let mut group = c.benchmark_group("day_pipeline");
    group.sample_size(10);
    group.bench_function("spec", |b| {
        b.iter(|| {
            build(&scenario, &short, DayCacheConfig::on())
                .run_speculative()
                .expect("speculative run")
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
