//! Before/after wall times for the zero-allocation solver kernels
//! (DESIGN.md §11).
//!
//! Three kernels are measured on the same inputs through both code paths:
//!
//! * `dp_solve` — one DP appliance schedule: fresh tables per solve
//!   (`DpScheduler::schedule`) vs a warm [`DpWorkspace`]
//!   (`DpScheduler::schedule_in`);
//! * `best_response` — one full customer best response: fresh allocations
//!   plus the per-cell billing closure (`best_response_reference`) vs a warm
//!   [`ResponseWorkspace`] plus the hoisted cost table (`best_response_in`);
//! * `jacobi_round` — one synchronous round of best responses across the
//!   whole community, reference path vs one warm workspace carried across
//!   customers.
//!
//! A fourth pair, `game_round/n500`, pins the paper's scale: one
//! Gauss–Seidel community round over N = 500 customers (regardless of
//! `NMS_BENCH_CUSTOMERS`), TimeSeries-per-customer reference vs the flat
//! SoA [`BatchResponseWorkspace`] lanes the game engine runs on
//! (DESIGN.md §15).
//!
//! The community-round pairs (`jacobi_round`, `game_round/n500`) run
//! battery-free: the CE battery step is the same code on both paths and
//! two orders of magnitude more expensive than the DP it wraps, so timing
//! it would only bury the workspace/representation difference under
//! Monte-Carlo variance.
//!
//! Every pair is asserted bit-identical before its wall times are recorded
//! into `BENCH_results.json` (targets `solver_kernels/<kernel>/before` and
//! `.../after`), so the perf trajectory tracks two implementations of
//! provably the same function.
//!
//! Environment: `NMS_BENCH_CUSTOMERS` / `NMS_BENCH_SEED` as for every
//! bench; `NMS_BENCH_SMOKE` shrinks iteration counts and skips the
//! Criterion timing loops (the CI smoke gate).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use nms_bench::{bench_scenario, bench_seed, host_cores, record_bench_results, BenchRecord};
use nms_obs::NoopRecorder;
use nms_pricing::{CostModel, NetMeteringTariff, PriceSignal};
use nms_sim::PaperScenario;
use nms_smarthome::{
    Appliance, ApplianceKind, Community, CustomerSchedule, PowerLevels, TaskSpec,
};
use nms_solver::{
    best_response_in, best_response_reference, best_response_slice_in, BatchResponseWorkspace,
    DpScheduler, DpWorkspace, ResponseConfig, ResponseWorkspace,
};
use nms_types::{ApplianceId, Kw, Kwh, TimeSeries};

fn smoke() -> bool {
    std::env::var_os("NMS_BENCH_SMOKE").is_some()
}

/// Mean seconds per iteration of `run` over `iters` measured repetitions,
/// after `warmup` unmeasured ones so caches, branch predictors, and the
/// allocator reach steady state before the clock starts.
fn mean_secs(warmup: usize, iters: usize, mut run: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        run();
    }
    let start = Instant::now();
    for _ in 0..iters {
        run();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn ev_appliance() -> Appliance {
    Appliance::new(
        ApplianceId::new(0),
        ApplianceKind::ElectricVehicle,
        PowerLevels::stepped(Kw::new(3.3), 3).unwrap(),
        TaskSpec::new(Kwh::new(9.0), 0, 23).unwrap(),
    )
}

fn community() -> Community {
    let scenario = bench_scenario();
    let generator = scenario.generator();
    let weather = scenario.weather_factors(1);
    generator.community_for_day(0, weather[0])
}

fn assert_bit_identical(label: &str, a: &CustomerSchedule, b: &CustomerSchedule) {
    for (i, (sa, sb)) in a
        .appliance_schedules()
        .iter()
        .zip(b.appliance_schedules())
        .enumerate()
    {
        for (h, (x, y)) in sa.energy().iter().zip(sb.energy().iter()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: appliance {i} slot {h}");
        }
    }
    for (h, (x, y)) in a.battery().iter().zip(b.battery()).enumerate() {
        assert_eq!(
            x.value().to_bits(),
            y.value().to_bits(),
            "{label}: battery level {h}"
        );
    }
}

fn bench(c: &mut Criterion) {
    let community = community();
    let horizon = community.horizon();
    let prices = PriceSignal::time_of_use(horizon, 0.05, 0.25).unwrap();
    let tariff = NetMeteringTariff::default();
    let config = ResponseConfig::fast();
    // Battery-free config for the community-round pairs: isolates the
    // workspace/representation difference from the CE battery step, which
    // is identical code on both paths (see the module docs).
    let game_config = ResponseConfig {
        use_battery: false,
        ..config
    };
    let scenario = bench_scenario();
    // Jacobi means over 3 iterations were statistically meaningless at
    // community scale; every kernel takes a warmup (a quarter of its
    // measured count, at least one), and battery-free rounds are cheap
    // enough to afford real repetition counts.
    let (dp_iters, response_iters, round_iters) =
        if smoke() { (20, 2, 1) } else { (200, 8, 100) };
    let warmup_of = |iters: usize| (iters / 4).max(1);

    // --- dp_solve: fresh tables vs warm DpWorkspace, same closure. ---
    let appliance = ev_appliance();
    let scheduler = DpScheduler::new(4);
    let slot_cost = |slot: usize, e: f64| (0.05 + 0.01 * (slot % 7) as f64) * e * (1.0 + e);
    let fresh = scheduler.schedule(&appliance, horizon, slot_cost).expect("feasible");
    let mut dp_ws = DpWorkspace::default();
    let warm = scheduler
        .schedule_in(&appliance, horizon, &mut dp_ws, slot_cost)
        .expect("feasible");
    for (h, (x, y)) in fresh.energy().iter().zip(warm.energy().iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "dp_solve slot {h} diverged");
    }
    let dp_before = mean_secs(warmup_of(dp_iters), dp_iters, || {
        scheduler.schedule(&appliance, horizon, slot_cost).expect("feasible");
    });
    let dp_after = mean_secs(warmup_of(dp_iters), dp_iters, || {
        scheduler
            .schedule_in(&appliance, horizon, &mut dp_ws, slot_cost)
            .expect("feasible");
    });

    // --- best_response: reference closure path vs workspace + hoisting. ---
    let customer = community.iter().next().expect("non-empty community");
    let others = TimeSeries::from_fn(horizon, |h| 8.0 + 3.0 * (h as f64 / 5.0).sin());
    let mut ws = ResponseWorkspace::new();
    let reference = best_response_reference(
        customer,
        &others,
        CostModel::new(&prices, tariff),
        &config,
        None,
        &mut ChaCha8Rng::seed_from_u64(17),
        &NoopRecorder,
    )
    .expect("responds");
    let hoisted = best_response_in(
        customer,
        &others,
        CostModel::new(&prices, tariff),
        &config,
        None,
        &mut ChaCha8Rng::seed_from_u64(17),
        &NoopRecorder,
        &mut ws,
    )
    .expect("responds");
    assert_bit_identical("best_response", &reference, &hoisted);
    let response_before = mean_secs(warmup_of(response_iters), response_iters, || {
        best_response_reference(
            customer,
            &others,
            CostModel::new(&prices, tariff),
            &config,
            None,
            &mut ChaCha8Rng::seed_from_u64(17),
            &NoopRecorder,
        )
        .expect("responds");
    });
    let response_after = mean_secs(warmup_of(response_iters), response_iters, || {
        best_response_in(
            customer,
            &others,
            CostModel::new(&prices, tariff),
            &config,
            None,
            &mut ChaCha8Rng::seed_from_u64(17),
            &NoopRecorder,
            &mut ws,
        )
        .expect("responds");
    });

    // --- jacobi_round: one synchronous community round from a cold start
    // (every customer responds to the same zero trading field) through
    // either kernel; the workspace side carries one warm arena across
    // customers, as a parallel worker would.
    let round_once = |use_workspace: bool| -> Vec<CustomerSchedule> {
        let others = TimeSeries::filled(horizon, 0.0);
        let mut ws = ResponseWorkspace::new();
        community
            .iter()
            .enumerate()
            .map(|(index, customer)| {
                let mut rng = ChaCha8Rng::seed_from_u64(1000 + index as u64);
                if use_workspace {
                    best_response_in(
                        customer,
                        &others,
                        CostModel::new(&prices, tariff),
                        &game_config,
                        None,
                        &mut rng,
                        &NoopRecorder,
                        &mut ws,
                    )
                    .expect("responds")
                } else {
                    best_response_reference(
                        customer,
                        &others,
                        CostModel::new(&prices, tariff),
                        &game_config,
                        None,
                        &mut rng,
                        &NoopRecorder,
                    )
                    .expect("responds")
                }
            })
            .collect()
    };
    let round_ref = round_once(false);
    let round_ws = round_once(true);
    for (index, (a, b)) in round_ref.iter().zip(round_ws.iter()).enumerate() {
        assert_bit_identical(&format!("jacobi_round customer {index}"), a, b);
    }
    let round_before = mean_secs(warmup_of(round_iters), round_iters, || {
        round_once(false);
    });
    let round_after = mean_secs(warmup_of(round_iters), round_iters, || {
        round_once(true);
    });

    // --- game_round/n500: one Gauss–Seidel community round at the paper's
    // scale (N = 500), regardless of NMS_BENCH_CUSTOMERS. Before is the
    // TimeSeries-per-customer representation the engine used to run on
    // (fresh `total.sub` / `others.add` allocations around every reference
    // response); after is the flat SoA [`BatchResponseWorkspace`] lanes it
    // runs on now (DESIGN.md §15). Seeds are pre-drawn so both paths give
    // every customer the same randomness, and the two rounds are asserted
    // bit-identical, schedule by schedule, before timing.
    let paper = PaperScenario::paper(bench_seed());
    let paper_community = {
        let generator = paper.generator();
        let weather = paper.weather_factors(1);
        generator.community_for_day(0, weather[0])
    };
    let n500 = paper_community.len();
    let paper_horizon = paper_community.horizon();
    let paper_prices = PriceSignal::time_of_use(paper_horizon, 0.05, 0.25).unwrap();
    let game_seeds: Vec<u64> = {
        use rand::Rng;
        let mut seed_rng = ChaCha8Rng::seed_from_u64(9);
        (0..n500).map(|_| seed_rng.gen()).collect()
    };
    let game_round_series = || -> Vec<CustomerSchedule> {
        let mut total = TimeSeries::filled(paper_horizon, 0.0);
        let mut lanes: Vec<TimeSeries<f64>> = vec![TimeSeries::filled(paper_horizon, 0.0); n500];
        paper_community
            .iter()
            .enumerate()
            .map(|(index, customer)| {
                let others = total.sub(&lanes[index]).expect("same horizon");
                let response = best_response_reference(
                    customer,
                    &others,
                    CostModel::new(&paper_prices, tariff),
                    &game_config,
                    None,
                    &mut ChaCha8Rng::seed_from_u64(game_seeds[index]),
                    &NoopRecorder,
                )
                .expect("responds");
                total = others.add(response.trading()).expect("same horizon");
                lanes[index] = response.trading().clone();
                response
            })
            .collect()
    };
    let game_round_soa = || -> Vec<CustomerSchedule> {
        let mut batch = BatchResponseWorkspace::new();
        batch.begin(n500, paper_horizon.slots());
        let mut ws = ResponseWorkspace::new();
        paper_community
            .iter()
            .enumerate()
            .map(|(index, customer)| {
                batch.fill_others(index);
                let response = best_response_slice_in(
                    customer,
                    batch.others(),
                    CostModel::new(&paper_prices, tariff),
                    &game_config,
                    None,
                    &mut ChaCha8Rng::seed_from_u64(game_seeds[index]),
                    &NoopRecorder,
                    &mut ws,
                )
                .expect("responds");
                batch.commit_gauss_seidel(index, response.trading().as_slice());
                response
            })
            .collect()
    };
    // The identity round doubles as the warmup for both paths.
    let game_ref = game_round_series();
    let game_soa = game_round_soa();
    assert_eq!(game_ref.len(), n500);
    for (index, (a, b)) in game_ref.iter().zip(game_soa.iter()).enumerate() {
        assert_bit_identical(&format!("game_round/n500 customer {index}"), a, b);
        for (h, (x, y)) in a.trading().iter().zip(b.trading().iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "game_round/n500 customer {index} trading slot {h}"
            );
        }
    }
    // Battery-free rounds are cheap (~ms), so the mean can afford real
    // statistics instead of the 3-shot CE-dominated timing this pair
    // started with.
    let game_iters = if smoke() { 1 } else { 100 };
    let game_before = mean_secs(warmup_of(game_iters), game_iters, || {
        game_round_series();
    });
    let game_after = mean_secs(warmup_of(game_iters), game_iters, || {
        game_round_soa();
    });
    if smoke() {
        // The CI smoke gate times exactly one paper-scale round per path;
        // the ceiling is deliberately generous (an order of magnitude over
        // the recording host) and exists to catch pathological regressions,
        // not noise.
        assert!(
            game_before < 120.0 && game_after < 120.0,
            "paper-scale game round blew the smoke wall ceiling: \
             before {game_before:.2}s, after {game_after:.2}s"
        );
    }

    println!("\n=== Solver kernels (before = fresh alloc + closure, after = warm workspace + hoisted table) ===");
    let row = |name: &str, before: f64, after: f64| {
        println!(
            "{name:<14} | before {:>10.6}s | after {:>10.6}s | {:>5.2}x",
            before,
            after,
            before / after.max(1e-12)
        );
    };
    row("dp_solve", dp_before, dp_after);
    row("best_response", response_before, response_after);
    row("jacobi_round", round_before, round_after);
    row("game_round/500", game_before, game_after);

    let record = |target: &str, wall_secs: f64, iters: usize, note: &str| BenchRecord {
        target: target.to_string(),
        wall_secs,
        customers: scenario.customers,
        seed: scenario.seed,
        threads: 1,
        host_cores: host_cores(),
        solver_rounds: 0,
        cache_hits: 0,
        cache_misses: 0,
        note: format!("mean of {iters} iters after warmup; {note}"),
        speedup: 0.0,
    };
    record_bench_results(&[
        record(
            "solver_kernels/dp_solve/before",
            dp_before,
            dp_iters,
            "fresh DP tables per solve (DpScheduler::schedule)",
        ),
        record(
            "solver_kernels/dp_solve/after",
            dp_after,
            dp_iters,
            "warm DpWorkspace (DpScheduler::schedule_in)",
        ),
        record(
            "solver_kernels/best_response/before",
            response_before,
            response_iters,
            "fresh allocations + per-cell slot_cost closure (best_response_reference)",
        ),
        record(
            "solver_kernels/best_response/after",
            response_after,
            response_iters,
            "warm ResponseWorkspace + hoisted cost table (best_response_in)",
        ),
        record(
            "solver_kernels/jacobi_round/before",
            round_before,
            round_iters,
            "one battery-free community round, reference kernel per customer",
        ),
        record(
            "solver_kernels/jacobi_round/after",
            round_after,
            round_iters,
            "one battery-free community round, single warm workspace across customers",
        ),
        BenchRecord {
            customers: n500,
            seed: paper.seed,
            ..record(
                "game_round/n500/before",
                game_before,
                game_iters,
                "one paper-scale Gauss–Seidel round, TimeSeries per customer \
                 + best_response_reference",
            )
        },
        BenchRecord {
            customers: n500,
            seed: paper.seed,
            ..record(
                "game_round/n500/after",
                game_after,
                game_iters,
                "one paper-scale Gauss–Seidel round, SoA BatchResponseWorkspace \
                 lanes + best_response_slice_in",
            )
        },
    ])
    .expect("bench results written");
    println!("recorded to {}", nms_bench::bench_results_path().display());

    if smoke() {
        return;
    }

    let mut group = c.benchmark_group("solver_kernels");
    group.sample_size(10);
    group.bench_function("dp_solve_before", |b| {
        b.iter(|| scheduler.schedule(&appliance, horizon, slot_cost).expect("feasible"))
    });
    group.bench_function("dp_solve_after", |b| {
        b.iter(|| {
            scheduler
                .schedule_in(&appliance, horizon, &mut dp_ws, slot_cost)
                .expect("feasible")
        })
    });
    group.bench_function("best_response_before", |b| {
        b.iter(|| {
            best_response_reference(
                customer,
                &others,
                CostModel::new(&prices, tariff),
                &config,
                None,
                &mut ChaCha8Rng::seed_from_u64(17),
                &NoopRecorder,
            )
            .expect("responds")
        })
    });
    group.bench_function("best_response_after", |b| {
        b.iter(|| {
            best_response_in(
                customer,
                &others,
                CostModel::new(&prices, tariff),
                &config,
                None,
                &mut ChaCha8Rng::seed_from_u64(17),
                &NoopRecorder,
                &mut ws,
            )
            .expect("responds")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
