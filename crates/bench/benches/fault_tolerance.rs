//! Robustness sweep bench: detection accuracy vs telemetry fault rate.
//!
//! Regenerates the fault-tolerance artifact (both detector modes at each
//! corruption level, with degradation tallies) and then times one
//! clean-vs-faulted sweep pair at the smaller timing scale. The interesting
//! question for the timing loop is the *overhead* of the robustness layer:
//! fault injection + sanitization run per realized day, so the faulted
//! sweep should cost only marginally more than the pristine one.

use criterion::{criterion_group, criterion_main, Criterion};

use nms_bench::{bench_scenario, timing_scenario};
use nms_sim::sweeps::sweep_fault_tolerance;
use nms_sim::Parallelism;

fn bench(c: &mut Criterion) {
    let mut scenario = bench_scenario();
    scenario.training_days = scenario.training_days.max(4);
    let rates = [0.0, 0.05, 0.2];
    let points = sweep_fault_tolerance(&scenario, &rates, &Parallelism::SEQUENTIAL).expect("sweep runs");
    println!("\n=== Fault tolerance (accuracy vs telemetry fault rate) ===");
    for p in &points {
        println!(
            "rate {:>5.1}% | aware {:>6.2}% | naive {:>6.2}% | {} faults, {} slots imputed",
            p.fault_rate * 100.0,
            p.aware_accuracy * 100.0,
            p.naive_accuracy * 100.0,
            p.faults_injected,
            p.slots_imputed
        );
    }

    let mut timing = timing_scenario();
    timing.training_days = timing.training_days.max(4);
    let mut group = c.benchmark_group("fault_tolerance");
    group.sample_size(10);
    group.bench_function("sweep_pristine_48h", |b| {
        b.iter(|| sweep_fault_tolerance(&timing, &[0.0], &Parallelism::SEQUENTIAL).expect("sweep runs"))
    });
    group.bench_function("sweep_faulted_48h", |b| {
        b.iter(|| sweep_fault_tolerance(&timing, &[0.1], &Parallelism::SEQUENTIAL).expect("sweep runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
