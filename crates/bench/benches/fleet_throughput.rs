//! Fleet day-close throughput: sequential vs parallel shard driving.
//!
//! Runs the same K-community fleet once with one worker and once with
//! `NMS_BENCH_THREADS` workers, proves every shard's result is
//! bit-identical across the two (the fleet determinism contract), and
//! records both wall times as `fleet/day_close/{seq,par}` in
//! `BENCH_results.json`.
//!
//! Environment: `NMS_BENCH_THREADS` (default 4), `NMS_BENCH_CUSTOMERS`,
//! `NMS_BENCH_SEED`, and `NMS_BENCH_SMOKE` to shrink the fleet and skip
//! the Criterion timing loops (the CI smoke gate).

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use nms_attack::{AttackTimeline, PriceAttack};
use nms_bench::{bench_scenario, host_cores, record_bench_results, BenchRecord};
use nms_fleet::{run_fleet, FleetConfig, FleetOptions, ShardSpec};
use nms_sim::{
    LongTermRunConfig, LongTermRunResult, PaperScenario, Parallelism, SupervisedOptions,
};
use nms_types::SolveBudget;
use nms_vfs::{FaultVfs, IoFaultPlan};

const JOURNAL: &str = "fleet/shard.jsonl";

fn bench_threads() -> usize {
    std::env::var("NMS_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

fn smoke() -> bool {
    std::env::var_os("NMS_BENCH_SMOKE").is_some()
}

fn community_scenario(index: usize) -> PaperScenario {
    let mut scenario = bench_scenario();
    scenario.seed = scenario.seed.wrapping_add(17 + index as u64);
    scenario.training_days = scenario.training_days.clamp(3, 4);
    scenario
}

fn run_config(days: usize) -> LongTermRunConfig {
    LongTermRunConfig {
        detection_days: days,
        detector: None,
        timeline: AttackTimeline::new(
            vec![(4, 2), (20, 2)],
            PriceAttack::zero_window(16.0, 18.0).expect("window"),
        )
        .expect("timeline"),
        buckets: 4,
        bucket_fraction_step: 0.15,
        labor_per_fix: 10.0,
        labor_per_meter: 1.0,
        faults: None,
        sanitize: Default::default(),
        retry: Default::default(),
        budget: SolveBudget::unlimited(),
        quarantine: Default::default(),
        parallelism: Default::default(),
        clearing_iterations: 2,
    }
}

/// The bit-identity comparison form: `Debug` with the process-local
/// storage tally zeroed (observability, not part of the contract).
fn normalized(mut result: LongTermRunResult) -> String {
    result.health.storage = Default::default();
    format!("{result:?}")
}

/// Runs a fresh K-shard fleet (clean in-memory disks, fresh journals) at
/// `threads` workers and returns the per-shard normalized results plus the
/// wall time.
fn fleet_once(shards: usize, days: usize, threads: usize) -> (Vec<String>, f64) {
    let specs: Vec<ShardSpec> = (0..shards)
        .map(|index| {
            ShardSpec::derived(
                format!("community-{index}"),
                community_scenario(index),
                run_config(days),
                23,
                index,
                JOURNAL,
            )
        })
        .collect();
    let config = FleetConfig {
        parallelism: Parallelism::new(threads),
        ..FleetConfig::default()
    };
    let options = FleetOptions {
        shard_options: (0..shards)
            .map(|_| SupervisedOptions {
                vfs: Arc::new(FaultVfs::new(IoFaultPlan::none())),
                ..SupervisedOptions::default()
            })
            .collect(),
        ..FleetOptions::default()
    };
    let start = Instant::now();
    let report = run_fleet(specs, &config, options).expect("healthy fleet runs");
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(report.health.healthy(), shards, "bench fleet must stay healthy");
    let results = report
        .shards
        .into_iter()
        .map(|shard| normalized(shard.result.expect("healthy shard has a result")))
        .collect();
    (results, secs)
}

fn bench(c: &mut Criterion) {
    let threads = bench_threads();
    let (shards, days) = if smoke() { (3, 2) } else { (6, 3) };

    let (seq, seq_secs) = fleet_once(shards, days, 1);
    let (par, par_secs) = fleet_once(shards, days, threads);
    assert_eq!(seq, par, "parallel fleet diverged from sequential");

    println!("\n=== Fleet day-close ({shards} shards × {days} days, bit-identical) ===");
    println!(
        "fleet/day_close | seq {seq_secs:>7.2}s | par {par_secs:>7.2}s ({threads} threads) | {:>5.2}x",
        seq_secs / par_secs.max(1e-9)
    );

    let scenario = bench_scenario();
    let record = |target: &str, wall_secs: f64, threads: usize| BenchRecord {
        target: target.to_string(),
        wall_secs,
        customers: scenario.customers,
        seed: scenario.seed,
        threads,
        host_cores: host_cores(),
        solver_rounds: 0,
        cache_hits: 0,
        cache_misses: 0,
        note: format!("{shards} shards × {days} days, day-lockstep supervisor"),
        speedup: 0.0,
    };
    record_bench_results(&[
        record("fleet/day_close/seq", seq_secs, 1),
        record("fleet/day_close/par", par_secs, threads),
    ])
    .expect("bench results written");
    println!("recorded to {}", nms_bench::bench_results_path().display());

    if smoke() {
        return;
    }

    // A small Criterion trail on the parallel path; the tracked number is
    // the seq/par pair above.
    let mut group = c.benchmark_group("fleet_throughput");
    group.sample_size(10);
    group.bench_function("day_close_par", |b| {
        b.iter(|| fleet_once(2, 1, threads));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
