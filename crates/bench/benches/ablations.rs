//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * cross-entropy vs coordinate-descent battery optimization (solution
//!   quality and runtime);
//! * QMDP vs PBVI long-term policies (detection behavior);
//! * SVR kernel choice for price prediction;
//! * the `W` (net-metering reward) sweep's effect on grid PAR.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use nms_bench::bench_scenario;
use nms_forecast::{
    persistence_forecast, seasonal_mean_forecast, FeatureConfig, Kernel, Svr, SvrParams,
};
use nms_pricing::{CostModel, NetMeteringTariff, PriceSignal};
use nms_sim::Market;
use nms_smarthome::Battery;
use nms_solver::{
    coordinate_descent_battery, nash_gap, optimize_battery, BatteryProblem, CeConfig,
    CrossEntropyOptimizer, GameConfig, GameEngine, PriceAssignment, ResponseConfig,
};
use nms_types::{Horizon, Kwh, TimeSeries};

/// CE vs coordinate descent on the battery arbitrage subproblem.
fn ablation_battery_solver(c: &mut Criterion) {
    let horizon = Horizon::hourly_day();
    let prices = PriceSignal::new(TimeSeries::from_fn(horizon, |h| {
        if (18..22).contains(&h) {
            0.5
        } else if h < 6 {
            0.02
        } else {
            0.1
        }
    }))
    .unwrap();
    let load = TimeSeries::filled(horizon, 1.0);
    let generation = TimeSeries::filled(horizon, 0.0);
    let others = TimeSeries::filled(horizon, 20.0);
    let battery = Battery::new(Kwh::new(5.0), Kwh::ZERO).unwrap();
    let cost_model = CostModel::new(&prices, NetMeteringTariff::default());
    let problem = BatteryProblem::new(&battery, &load, &generation, &others, cost_model);

    // Report solution quality once.
    let ce = CrossEntropyOptimizer::new(CeConfig::default());
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let (_, ce_solution) = optimize_battery(&problem, &ce, None, &mut rng);
    let cd = coordinate_descent_battery(&problem, 3);
    let cd_interior: Vec<f64> = cd[1..].iter().map(|b| b.value()).collect();
    println!(
        "\n=== Ablation: battery solver quality (lower cost is better) ===\n\
         cross-entropy objective: {:.4}\ncoordinate-descent objective: {:.4}\n\
         idle objective: {:.4}",
        ce_solution.objective,
        problem.objective(&cd_interior),
        problem.objective(&problem.idle_interior())
    );

    let mut group = c.benchmark_group("ablation_battery");
    group.bench_function("cross_entropy", |b| {
        b.iter_batched(
            || ChaCha8Rng::seed_from_u64(2),
            |mut rng| optimize_battery(&problem, &ce, None, &mut rng),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("coordinate_descent", |b| {
        b.iter(|| coordinate_descent_battery(&problem, 3))
    });
    group.finish();
}

/// Kernel choice for the price SVR.
fn ablation_svr_kernel(c: &mut Criterion) {
    let scenario = bench_scenario();
    let market = Market::new(&scenario).expect("market");
    let generator = scenario.generator();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let history = market
        .bootstrap_history(&generator, scenario.training_days, &mut rng)
        .expect("history");
    let config = FeatureConfig::net_metering_aware(24);
    let dataset = history.training_set(&config);

    // Non-learning baselines on the last recorded day, to anchor the scale.
    let last_day = &history.prices()[history.len() - 24..];
    let earlier = history.truncated(history.len() - 24);
    if let (Ok(persist), Ok(seasonal)) = (
        persistence_forecast(&earlier, 24),
        seasonal_mean_forecast(&earlier, 24),
    ) {
        println!(
            "\n=== Ablation: non-learning baselines (held-out day RMSE) ===\n\
             persistence: {:.6}\nseasonal-mean: {:.6}",
            nms_forecast::rmse(&persist, last_day),
            nms_forecast::rmse(&seasonal, last_day)
        );
    }

    println!("\n=== Ablation: SVR kernel (training-set RMSE) ===");
    for (label, kernel) in [
        ("linear", Kernel::Linear),
        ("rbf_g0.3", Kernel::Rbf { gamma: 0.3 }),
        (
            "poly_d2",
            Kernel::Polynomial {
                degree: 2,
                coef0: 1.0,
            },
        ),
    ] {
        let params = SvrParams {
            kernel,
            ..SvrParams::default()
        };
        let model = Svr::fit(&dataset.xs, &dataset.ys, &params).expect("trains");
        let preds = model.predict_all(&dataset.xs);
        println!(
            "{label}: rmse {:.6}, support vectors {}",
            nms_forecast::rmse(&preds, &dataset.ys),
            model.support_vector_count()
        );
    }

    let mut group = c.benchmark_group("ablation_svr_kernel");
    group.sample_size(10);
    for (label, kernel) in [
        ("linear", Kernel::Linear),
        ("rbf", Kernel::Rbf { gamma: 0.3 }),
    ] {
        let params = SvrParams {
            kernel,
            ..SvrParams::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| Svr::fit(&dataset.xs, &dataset.ys, &params).expect("trains"))
        });
    }
    group.finish();
}

/// Net-metering reward sweep: how `W` changes the cleared grid PAR.
fn ablation_tariff_sweep(c: &mut Criterion) {
    let base = bench_scenario();
    println!("\n=== Ablation: net-metering reward rate W vs grid PAR ===");
    for w in [1.0, 1.5, 2.0, 3.0] {
        let mut scenario = base.clone();
        scenario.tariff = NetMeteringTariff::new(w).expect("valid W");
        let market = Market::new(&scenario).expect("market");
        let generator = scenario.generator();
        let weather = scenario.weather_factors(1);
        let community = generator.community_for_day(0, weather[0]);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let outcome = market.clear_day(&community, 2, &mut rng).expect("clears");
        println!("W = {w}: PAR {:.4}", outcome.response.par);
    }

    let mut group = c.benchmark_group("ablation_tariff");
    group.sample_size(10);
    group.bench_function("clear_day_w1.5", |b| {
        let market = Market::new(&base).expect("market");
        let generator = base.generator();
        let weather = base.weather_factors(1);
        let community = generator.community_for_day(0, weather[0]);
        b.iter_batched(
            || ChaCha8Rng::seed_from_u64(5),
            |mut rng| market.clear_day(&community, 2, &mut rng).expect("clears"),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Game convergence: Nash gap (largest per-customer cost improvement left
/// on the table) as a function of the best-response round budget.
fn ablation_game_rounds(c: &mut Criterion) {
    let scenario = bench_scenario();
    let generator = scenario.generator();
    let weather = scenario.weather_factors(1);
    let community = generator.community_for_day(0, weather[0]);
    let prices = PriceSignal::time_of_use(community.horizon(), 0.05, 0.2).expect("valid rates");
    let tariff = NetMeteringTariff::default();

    println!("\n=== Ablation: best-response rounds vs Nash gap ===");
    for rounds in [1usize, 2, 4, 8] {
        let mut config = GameConfig::fast();
        config.max_rounds = rounds;
        config.tolerance = 1e-9; // force the full round budget
        let engine =
            GameEngine::new(&community, &prices, tariff, config).expect("valid config");
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let outcome = engine.solve(&mut rng).expect("solves");
        let mut gap_rng = ChaCha8Rng::seed_from_u64(7);
        let gap = nash_gap(
            &community,
            &outcome.schedule,
            PriceAssignment::Uniform(&prices),
            tariff,
            &ResponseConfig::default(),
            &mut gap_rng,
        )
        .expect("gap computes");
        println!(
            "rounds {rounds}: max improvement {:.4}, mean {:.5}",
            gap.max_improvement, gap.mean_improvement
        );
    }

    let mut group = c.benchmark_group("ablation_game_rounds");
    group.sample_size(10);
    group.bench_function("nash_gap_probe", |b| {
        let engine = GameEngine::new(&community, &prices, tariff, GameConfig::fast())
            .expect("valid config");
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let outcome = engine.solve(&mut rng).expect("solves");
        b.iter_batched(
            || ChaCha8Rng::seed_from_u64(9),
            |mut rng| {
                nash_gap(
                    &community,
                    &outcome.schedule,
                    PriceAssignment::Uniform(&prices),
                    tariff,
                    &ResponseConfig::fast(),
                    &mut rng,
                )
                .expect("gap computes")
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_battery_solver,
    ablation_svr_kernel,
    ablation_tariff_sweep,
    ablation_game_rounds
);
criterion_main!(benches);
