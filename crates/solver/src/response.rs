//! A single customer's best response (the inner loop of Algorithm 1,
//! lines 3–6): alternate DP appliance scheduling with cross-entropy battery
//! optimization until the customer's plan stabilizes.

use std::cell::Cell;

use nms_obs::{span, NoopRecorder, Recorder};
use rand::Rng;
use serde::{Deserialize, Serialize};

use nms_pricing::CostModel;
use nms_smarthome::{ApplianceSchedule, Customer, CustomerSchedule};
use nms_types::{TimeSeries, ValidateError};

use crate::workspace::{series_for, ResponseWorkspace};
use crate::{
    coordinate_descent_battery, try_optimize_battery_budgeted_in, BatteryProblem, CeConfig,
    CrossEntropyOptimizer, DpScheduler, SolverError,
};

/// Configuration for [`best_response`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseConfig {
    /// DP quantum resolution (see [`DpScheduler`]).
    pub dp_resolution: usize,
    /// Cross-entropy settings for the battery step.
    pub ce: CeConfig,
    /// Alternations between the DP step and the battery step.
    pub inner_iters: usize,
    /// When `false` the battery is left idle (used by predictors that model
    /// customers without storage).
    pub use_battery: bool,
}

impl ResponseConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] on a zero resolution/iteration count or an
    /// invalid CE configuration.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.dp_resolution == 0 {
            return Err(ValidateError::new("dp resolution must be positive"));
        }
        if self.inner_iters == 0 {
            return Err(ValidateError::new("need at least one inner iteration"));
        }
        self.ce.validate()
    }

    /// A faster preset for large-community simulations.
    pub fn fast() -> Self {
        Self {
            dp_resolution: 2,
            ce: CeConfig::fast(),
            inner_iters: 1,
            use_battery: true,
        }
    }
}

impl Default for ResponseConfig {
    fn default() -> Self {
        Self {
            dp_resolution: 4,
            ce: CeConfig::fast(),
            inner_iters: 2,
            use_battery: true,
        }
    }
}

/// Computes the customer's best response to the other customers' aggregate
/// trading `others_trading` (`Σ_{i≠n} y_i^h`, kWh per slot).
///
/// `previous` warm-starts the appliance allocation and battery trajectory
/// when available.
///
/// # Errors
///
/// Returns [`SolverError`] when an appliance subproblem is infeasible or
/// the assembled schedule fails validation.
pub fn best_response(
    customer: &Customer,
    others_trading: &TimeSeries<f64>,
    cost_model: CostModel<'_>,
    config: &ResponseConfig,
    previous: Option<&CustomerSchedule>,
    rng: &mut impl Rng,
) -> Result<CustomerSchedule, SolverError> {
    best_response_recorded(
        customer,
        others_trading,
        cost_model,
        config,
        previous,
        rng,
        &NoopRecorder,
    )
}

/// [`best_response`] with solver telemetry: tallies DP cost-cell
/// evaluations (`solver_dp_cells`), cross-entropy solves / iterations /
/// convergences (`solver_ce_*`), and the CE variance trajectory
/// (`solver_ce_std` observations) into `rec`. Recording reads only values
/// the solve already produced and draws nothing from `rng`, so the
/// returned schedule is bit-identical to [`best_response`] under the same
/// seed.
///
/// # Errors
///
/// Same as [`best_response`].
#[allow(clippy::too_many_arguments)]
pub fn best_response_recorded(
    customer: &Customer,
    others_trading: &TimeSeries<f64>,
    cost_model: CostModel<'_>,
    config: &ResponseConfig,
    previous: Option<&CustomerSchedule>,
    rng: &mut impl Rng,
    rec: &dyn Recorder,
) -> Result<CustomerSchedule, SolverError> {
    best_response_core(
        customer,
        others_trading.as_slice(),
        cost_model,
        config,
        previous,
        rng,
        rec,
        &mut ResponseWorkspace::default(),
        true,
    )
}

/// [`best_response_recorded`] with a caller-provided scratch arena: all DP
/// tables, CE population buffers, and response-level series live in `ws`
/// and are reused across solves, so a warm workspace makes the steady-state
/// inner loop allocation-free (see DESIGN.md §11). Bit-identical to
/// [`best_response_recorded`] under the same seed.
///
/// # Errors
///
/// Same as [`best_response`].
#[allow(clippy::too_many_arguments)]
pub fn best_response_in(
    customer: &Customer,
    others_trading: &TimeSeries<f64>,
    cost_model: CostModel<'_>,
    config: &ResponseConfig,
    previous: Option<&CustomerSchedule>,
    rng: &mut impl Rng,
    rec: &dyn Recorder,
    ws: &mut ResponseWorkspace,
) -> Result<CustomerSchedule, SolverError> {
    best_response_core(
        customer,
        others_trading.as_slice(),
        cost_model,
        config,
        previous,
        rng,
        rec,
        ws,
        true,
    )
}

/// [`best_response_in`] with the others-trading series supplied as a raw
/// per-slot slice instead of a [`TimeSeries`] — the structure-of-arrays
/// entry point the game engine's batched round kernels use: one Jacobi or
/// Gauss–Seidel round walks flat `f64` lanes and hands each customer's
/// others-lane straight to the solve with no series materialization.
/// Bit-identical to [`best_response_in`] over a series holding the same
/// values (the slice *is* the series' storage).
///
/// # Errors
///
/// Same as [`best_response`].
#[allow(clippy::too_many_arguments)]
pub fn best_response_slice_in(
    customer: &Customer,
    others_trading: &[f64],
    cost_model: CostModel<'_>,
    config: &ResponseConfig,
    previous: Option<&CustomerSchedule>,
    rng: &mut impl Rng,
    rec: &dyn Recorder,
    ws: &mut ResponseWorkspace,
) -> Result<CustomerSchedule, SolverError> {
    best_response_core(
        customer,
        others_trading,
        cost_model,
        config,
        previous,
        rng,
        rec,
        ws,
        true,
    )
}

/// The exact-equality reference path: identical to
/// [`best_response_recorded`] except the DP cost comes from the
/// [`CostModel::slot_cost`] closure per cell instead of the hoisted
/// per-slot table. [`HoistedCostTable`](nms_pricing::HoistedCostTable)
/// replicates that closure operation-for-operation, so the two paths are
/// byte-identical (pinned by `tests/solver_workspace.rs`); this variant
/// stays as the fallback shape for arbitrary cost closures and as the
/// before-side of the `solver_kernels` bench.
///
/// # Errors
///
/// Same as [`best_response`].
#[allow(clippy::too_many_arguments)]
pub fn best_response_reference(
    customer: &Customer,
    others_trading: &TimeSeries<f64>,
    cost_model: CostModel<'_>,
    config: &ResponseConfig,
    previous: Option<&CustomerSchedule>,
    rng: &mut impl Rng,
    rec: &dyn Recorder,
) -> Result<CustomerSchedule, SolverError> {
    best_response_core(
        customer,
        others_trading.as_slice(),
        cost_model,
        config,
        previous,
        rng,
        rec,
        &mut ResponseWorkspace::default(),
        false,
    )
}

/// The shared solve: alternate the DP appliance step with the CE battery
/// step `inner_iters` times inside `ws`. `hoist` selects the dense
/// per-slot cost table (the default) or the per-cell billing closure (the
/// reference path — same arithmetic, evaluated per DP cell).
#[allow(clippy::too_many_arguments)]
fn best_response_core(
    customer: &Customer,
    others_trading: &[f64],
    cost_model: CostModel<'_>,
    config: &ResponseConfig,
    previous: Option<&CustomerSchedule>,
    rng: &mut impl Rng,
    rec: &dyn Recorder,
    ws: &mut ResponseWorkspace,
    hoist: bool,
) -> Result<CustomerSchedule, SolverError> {
    config.validate()?;
    let horizon = customer.horizon();
    let slots = horizon.slots();
    let dp = DpScheduler::new(config.dp_resolution);
    let ce = CrossEntropyOptimizer::new(config.ce);

    let ResponseWorkspace {
        dp: dp_ws,
        ce: ce_ws,
        table,
        base,
        battery_delta,
        generation,
        load,
        energies,
        battery,
        warm_prev,
        swept,
    } = ws;

    // Working state: per-appliance energies and the battery trajectory,
    // rebuilt in place from `previous` (warm start) or zeros.
    let warm = match previous {
        Some(prev) if prev.appliance_schedules().len() == customer.appliances().len() => {
            Some(prev)
        }
        _ => None,
    };
    let appliance_count = customer.appliances().len();
    energies.truncate(appliance_count);
    while energies.len() < appliance_count {
        energies.push(TimeSeries::filled(horizon, 0.0));
    }
    for (index, series) in energies.iter_mut().enumerate() {
        if series.horizon() != horizon {
            *series = TimeSeries::filled(horizon, 0.0);
        }
        match warm {
            Some(prev) => {
                let source = prev.appliance_schedules()[index].energy();
                for (dst, &src) in series.iter_mut().zip(source.iter()) {
                    *dst = src;
                }
            }
            None => {
                for dst in series.iter_mut() {
                    *dst = 0.0;
                }
            }
        }
    }
    battery.clear();
    match previous {
        Some(prev) if config.use_battery => battery.extend_from_slice(prev.battery()),
        _ => battery.resize(slots + 1, customer.battery().initial_charge()),
    }

    let generation = series_for(generation, horizon);
    for (h, value) in generation.iter_mut().enumerate() {
        *value = customer.generation(h).value();
    }

    // The billing terms depend only on the guideline price, the tariff, and
    // the (fixed) aggregate trading of the others — hoist them once per
    // response instead of re-deriving them per DP cell.
    if hoist {
        cost_model.hoist_slice_into(others_trading, table);
    }

    // Tallied locally (the DP cost closure is not `Sync`-friendly to hand
    // the recorder into) and flushed to `rec` once per response.
    let dp_cells = Cell::new(0_u64);

    for _ in 0..config.inner_iters {
        // Battery contribution to own trading, fixed during the DP step.
        battery_delta.clear();
        battery_delta.extend((0..slots).map(|h| battery[h + 1].value() - battery[h].value()));

        // DP step: reschedule each appliance against the others (coordinate
        // descent over appliances).
        let dp_span = span(rec, "dp_appliances");
        for (index, appliance) in customer.appliances().iter().enumerate() {
            base.clear();
            base.extend((0..slots).map(|h| {
                let other_appliances: f64 = energies
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != index)
                    .map(|(_, e)| e[h])
                    .sum();
                customer.base_load()[h] + other_appliances + battery_delta[h] - generation[h]
            }));
            let out = &mut energies[index];
            if hoist {
                dp.schedule_into(appliance, horizon, dp_ws, out, |slot, energy| {
                    dp_cells.set(dp_cells.get() + 1);
                    table.slot_cost(slot, base[slot] + energy)
                })?;
            } else {
                dp.schedule_into(appliance, horizon, dp_ws, out, |slot, energy| {
                    dp_cells.set(dp_cells.get() + 1);
                    cost_model
                        .slot_cost(slot, others_trading[slot], base[slot] + energy)
                        .value()
                })?;
            }
        }
        drop(dp_span);

        // Battery step (cross-entropy optimization of Algorithm 1, line 5).
        if config.use_battery && customer.battery().is_usable() {
            let _ce_span = span(rec, "ce_battery");
            let load = series_for(load, horizon);
            for (h, value) in load.iter_mut().enumerate() {
                *value = customer.base_load()[h] + energies.iter().map(|e| e[h]).sum::<f64>();
            }
            let problem = BatteryProblem::from_slices(
                customer.battery(),
                horizon,
                load.as_slice(),
                generation.as_slice(),
                others_trading,
                cost_model,
            );
            // Warm start: the better of the previous trajectory and one
            // deterministic coordinate-descent sweep — CE then refines.
            warm_prev.clear();
            warm_prev.extend(battery[1..].iter().map(|b| b.value()));
            let full_sweep = coordinate_descent_battery(&problem, 1);
            swept.clear();
            swept.extend(full_sweep[1..].iter().map(|b| b.value()));
            let warm: &[f64] = if problem.objective(swept) < problem.objective(warm_prev) {
                swept
            } else {
                warm_prev
            };
            let (trajectory, solution) =
                try_optimize_battery_budgeted_in(&problem, &ce, Some(warm), rng, None, ce_ws)
                    .unwrap_or_else(|err| panic!("{err}"));
            rec.add("solver_ce_solves", 1);
            rec.add("solver_ce_iterations", solution.iterations as u64);
            if solution.converged {
                rec.add("solver_ce_converged", 1);
            }
            for std in &solution.std_history {
                rec.observe("solver_ce_std", *std);
            }
            battery.clear();
            battery.extend_from_slice(&trajectory);
        }
    }

    rec.add("solver_dp_cells", dp_cells.get());

    let appliance_schedules: Vec<ApplianceSchedule> = customer
        .appliances()
        .iter()
        .zip(energies.iter())
        .map(|(appliance, energy)| ApplianceSchedule::new(appliance, horizon, energy.clone()))
        .collect::<Result<_, _>>()?;
    CustomerSchedule::new(customer, appliance_schedules, battery.clone()).map_err(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nms_pricing::{NetMeteringTariff, PriceSignal};
    use nms_smarthome::{
        clear_sky_profile, Appliance, ApplianceKind, Battery, PowerLevels, PvPanel, TaskSpec,
    };
    use nms_types::{ApplianceId, CustomerId, Horizon, Kw, Kwh};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    fn evening_peak_prices() -> PriceSignal {
        PriceSignal::new(TimeSeries::from_fn(day(), |h| {
            if (17..21).contains(&h) {
                0.4
            } else {
                0.05
            }
        }))
        .unwrap()
    }

    fn customer_with_flexible_load() -> Customer {
        Customer::builder(CustomerId::new(0), day())
            .appliance(Appliance::new(
                ApplianceId::new(0),
                ApplianceKind::WaterHeater,
                PowerLevels::stepped(Kw::new(2.0), 2).unwrap(),
                TaskSpec::new(Kwh::new(4.0), 0, 23).unwrap(),
            ))
            .appliance(Appliance::new(
                ApplianceId::new(1),
                ApplianceKind::Dishwasher,
                PowerLevels::on_off(Kw::new(1.0)).unwrap(),
                TaskSpec::new(Kwh::new(1.0), 17, 23).unwrap(),
            ))
            .battery(Battery::new(Kwh::new(4.0), Kwh::ZERO).unwrap())
            .pv(PvPanel::new(Kw::new(2.0), clear_sky_profile(day(), Kw::new(2.0))).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(ResponseConfig::default().validate().is_ok());
        assert!(ResponseConfig::fast().validate().is_ok());
        assert!(ResponseConfig {
            dp_resolution: 0,
            ..ResponseConfig::default()
        }
        .validate()
        .is_err());
        assert!(ResponseConfig {
            inner_iters: 0,
            ..ResponseConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn response_avoids_peak_prices() {
        let customer = customer_with_flexible_load();
        let prices = evening_peak_prices();
        let cost_model = CostModel::new(&prices, NetMeteringTariff::default());
        let others = TimeSeries::filled(day(), 10.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let schedule = best_response(
            &customer,
            &others,
            cost_model,
            &ResponseConfig::default(),
            None,
            &mut rng,
        )
        .unwrap();
        // The flexible water heater's 4 kWh should avoid 17:00–21:00.
        let peak_load: f64 = (17..21)
            .map(|h| schedule.appliance_schedules()[0].at(h).value())
            .sum();
        assert!(peak_load < 0.5, "peak load {peak_load}");
        // The dishwasher is stuck in the evening window but should prefer
        // the cheap 21:00–23:00 tail.
        let dishwasher_cheap: f64 = (21..24)
            .map(|h| schedule.appliance_schedules()[1].at(h).value())
            .sum();
        assert!((dishwasher_cheap - 1.0).abs() < 1e-6);
    }

    #[test]
    fn response_cost_not_worse_than_idle_battery_plan() {
        let customer = customer_with_flexible_load();
        let prices = evening_peak_prices();
        let cost_model = CostModel::new(&prices, NetMeteringTariff::default());
        let others = TimeSeries::filled(day(), 10.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let with_battery = best_response(
            &customer,
            &others,
            cost_model,
            &ResponseConfig::default(),
            None,
            &mut rng,
        )
        .unwrap();
        let no_battery_config = ResponseConfig {
            use_battery: false,
            ..ResponseConfig::default()
        };
        let mut rng2 = ChaCha8Rng::seed_from_u64(2);
        let without_battery = best_response(
            &customer,
            &others,
            cost_model,
            &no_battery_config,
            None,
            &mut rng2,
        )
        .unwrap();
        let cost = |s: &CustomerSchedule| cost_model.customer_cost(&others, s.trading()).value();
        assert!(cost(&with_battery) <= cost(&without_battery) + 1e-6);
    }

    #[test]
    fn warm_start_preserves_feasibility() {
        let customer = customer_with_flexible_load();
        let prices = evening_peak_prices();
        let cost_model = CostModel::new(&prices, NetMeteringTariff::default());
        let others = TimeSeries::filled(day(), 10.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first = best_response(
            &customer,
            &others,
            cost_model,
            &ResponseConfig::fast(),
            None,
            &mut rng,
        )
        .unwrap();
        let second = best_response(
            &customer,
            &others,
            cost_model,
            &ResponseConfig::fast(),
            Some(&first),
            &mut rng,
        )
        .unwrap();
        // Warm-started responses remain feasible and at least as good.
        let cost = |s: &CustomerSchedule| cost_model.customer_cost(&others, s.trading()).value();
        assert!(cost(&second) <= cost(&first) + 1e-6);
    }

    #[test]
    fn no_battery_config_keeps_soc_flat() {
        let customer = customer_with_flexible_load();
        let prices = evening_peak_prices();
        let cost_model = CostModel::new(&prices, NetMeteringTariff::default());
        let others = TimeSeries::filled(day(), 10.0);
        let config = ResponseConfig {
            use_battery: false,
            ..ResponseConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let schedule =
            best_response(&customer, &others, cost_model, &config, None, &mut rng).unwrap();
        let initial = customer.battery().initial_charge();
        assert!(schedule.battery().iter().all(|&b| b == initial));
    }

    #[test]
    fn pv_reduces_net_purchases() {
        let customer = customer_with_flexible_load();
        let prices = evening_peak_prices();
        let cost_model = CostModel::new(&prices, NetMeteringTariff::default());
        let others = TimeSeries::filled(day(), 10.0);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let schedule = best_response(
            &customer,
            &others,
            cost_model,
            &ResponseConfig::default(),
            None,
            &mut rng,
        )
        .unwrap();
        // Total purchases < total task energy because PV feeds part of it.
        assert!(schedule.total_purchased().value() < customer.total_task_energy().value());
    }
}
