//! Nash-gap (exploitability) measurement for community schedules.
//!
//! The best-response iteration of Algorithm 1 stops on a trading-change
//! tolerance, which says nothing directly about *optimality*. The Nash gap
//! asks the economic question: holding everyone else fixed, how many
//! dollars could each customer still save by re-optimizing? A schedule
//! with (near-)zero gap is a (near-)equilibrium of the scheduling game.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use nms_pricing::{CostModel, NetMeteringTariff, PriceSignal};
use nms_smarthome::{Community, CommunitySchedule};
use nms_types::{Dollars, TimeSeries};

use crate::{best_response, PriceAssignment, ResponseConfig, SolverError};

/// Per-customer and aggregate exploitability of a schedule.
#[derive(Debug, Clone)]
pub struct NashGap {
    /// Largest single-customer cost improvement available.
    pub max_improvement: Dollars,
    /// Mean improvement across customers.
    pub mean_improvement: Dollars,
    /// Improvement available to each customer (≥ 0 up to solver noise).
    pub per_customer: Vec<Dollars>,
}

impl NashGap {
    /// `true` when no customer can improve by more than `epsilon` dollars.
    pub fn is_epsilon_equilibrium(&self, epsilon: f64) -> bool {
        self.max_improvement.value() <= epsilon
    }
}

/// Measures the Nash gap of `schedule` under the given price assignment.
///
/// For each customer, the current cost is compared against the cost of a
/// freshly computed best response to the *other* customers' scheduled
/// trading. The response uses `config` (match the solver configuration the
/// schedule was produced with, or a stronger one to probe harder).
///
/// # Errors
///
/// Returns [`SolverError`] if any best-response subproblem fails.
///
/// # Panics
///
/// Panics if `schedule` does not cover exactly the community's customers.
pub fn nash_gap(
    community: &Community,
    schedule: &CommunitySchedule,
    prices: PriceAssignment<'_>,
    tariff: NetMeteringTariff,
    config: &ResponseConfig,
    rng: &mut impl Rng,
) -> Result<NashGap, SolverError> {
    assert_eq!(
        schedule.customer_schedules().len(),
        community.len(),
        "schedule/community size"
    );
    let horizon = community.horizon();
    let total = TimeSeries::from_fn(horizon, |h| {
        schedule
            .customer_schedules()
            .iter()
            .map(|s| s.trading()[h])
            .sum()
    });

    let mut per_customer = Vec::with_capacity(community.len());
    for (index, customer) in community.iter().enumerate() {
        let own = &schedule.customer_schedules()[index];
        let others = total.sub(own.trading()).expect("aligned horizons");
        let price: &PriceSignal = prices.for_customer(index);
        let cost_model = CostModel::new(price, tariff);
        let current_cost = cost_model.customer_cost(&others, own.trading());

        let mut child = ChaCha8Rng::seed_from_u64(rng.gen());
        let response = best_response(customer, &others, cost_model, config, Some(own), &mut child)?;
        let improved_cost = cost_model.customer_cost(&others, response.trading());
        // The warm-started response can only match or beat the current
        // plan; clamp tiny negative noise.
        let improvement = (current_cost - improved_cost).max(Dollars::ZERO);
        per_customer.push(improvement);
    }

    let max_improvement = per_customer
        .iter()
        .copied()
        .fold(Dollars::ZERO, Dollars::max);
    let mean_improvement = per_customer.iter().copied().sum::<Dollars>() / community.len() as f64;
    Ok(NashGap {
        max_improvement,
        mean_improvement,
        per_customer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GameConfig, GameEngine};
    use nms_smarthome::{Appliance, ApplianceKind, Battery, Customer, PowerLevels, TaskSpec};
    use nms_types::{ApplianceId, CustomerId, Horizon, Kw, Kwh};

    fn day() -> Horizon {
        Horizon::hourly_day()
    }

    fn community(n: usize) -> Community {
        let customers: Vec<Customer> = (0..n)
            .map(|i| {
                Customer::builder(CustomerId::new(i), day())
                    .appliance(Appliance::new(
                        ApplianceId::new(0),
                        ApplianceKind::WaterHeater,
                        PowerLevels::stepped(Kw::new(2.0), 2).unwrap(),
                        TaskSpec::new(Kwh::new(3.0), 0, 23).unwrap(),
                    ))
                    .battery(Battery::new(Kwh::new(2.0), Kwh::ZERO).unwrap())
                    .build()
                    .unwrap()
            })
            .collect();
        Community::new(day(), customers).unwrap()
    }

    #[test]
    fn converged_game_has_small_gap() {
        let community = community(4);
        let prices = PriceSignal::time_of_use(day(), 0.05, 0.25).unwrap();
        let tariff = NetMeteringTariff::default();
        let engine = GameEngine::new(&community, &prices, tariff, GameConfig::default()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let outcome = engine.solve(&mut rng).unwrap();

        let gap = nash_gap(
            &community,
            &outcome.schedule,
            PriceAssignment::Uniform(&prices),
            tariff,
            &ResponseConfig::default(),
            &mut rng,
        )
        .unwrap();
        // Costs here are a few dollars per customer; the converged game
        // should leave only pocket change on the table.
        let total_cost_scale = 1.0;
        assert!(
            gap.max_improvement.value() < 0.25 * total_cost_scale,
            "max improvement {}",
            gap.max_improvement
        );
        assert!(gap.mean_improvement.value() <= gap.max_improvement.value());
        assert_eq!(gap.per_customer.len(), 4);
    }

    #[test]
    fn perturbed_schedule_has_larger_gap_than_equilibrium() {
        let community = community(3);
        let prices = PriceSignal::time_of_use(day(), 0.05, 0.3).unwrap();
        let tariff = NetMeteringTariff::default();
        let mut rng = ChaCha8Rng::seed_from_u64(2);

        // Deliberately bad plan: schedule everything with a single round so
        // nobody reacted to anyone.
        let mut weak = GameConfig::fast();
        weak.max_rounds = 1;
        let weak_outcome = GameEngine::new(&community, &prices, tariff, weak)
            .unwrap()
            .solve(&mut rng)
            .unwrap();
        // Strong equilibrium for comparison.
        let strong_outcome = GameEngine::new(&community, &prices, tariff, GameConfig::default())
            .unwrap()
            .solve(&mut rng)
            .unwrap();

        let probe = ResponseConfig::default();
        let mut rng_gap = ChaCha8Rng::seed_from_u64(3);
        let weak_gap = nash_gap(
            &community,
            &weak_outcome.schedule,
            PriceAssignment::Uniform(&prices),
            tariff,
            &probe,
            &mut rng_gap,
        )
        .unwrap();
        let mut rng_gap = ChaCha8Rng::seed_from_u64(3);
        let strong_gap = nash_gap(
            &community,
            &strong_outcome.schedule,
            PriceAssignment::Uniform(&prices),
            tariff,
            &probe,
            &mut rng_gap,
        )
        .unwrap();
        assert!(
            strong_gap.max_improvement.value() <= weak_gap.max_improvement.value() + 1e-9,
            "strong {} vs weak {}",
            strong_gap.max_improvement,
            weak_gap.max_improvement
        );
    }

    #[test]
    fn epsilon_equilibrium_predicate() {
        let gap = NashGap {
            max_improvement: Dollars::new(0.05),
            mean_improvement: Dollars::new(0.01),
            per_customer: vec![Dollars::new(0.05)],
        };
        assert!(gap.is_epsilon_equilibrium(0.1));
        assert!(!gap.is_epsilon_equilibrium(0.01));
    }
}
